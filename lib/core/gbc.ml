(** Public façade of the guardians library.

    The runtime substrate (heap, collector, guardians, weak pairs) is
    re-exported alongside the applications built on the mechanism.  A
    typical session:

    {[
      open Gbc
      let h = Heap.create ()
      let g = Guardian.make h
      let gc = Handle.create h g
      (* ... register objects, drop them ... *)
      let _ = Collector.collect h ~gen:0
      let saved = Guardian.retrieve h (Handle.get gc)
    ]} *)

module Word = Gbc_runtime.Word
module Space = Gbc_runtime.Space
module Config = Gbc_runtime.Config
module Stats = Gbc_runtime.Stats
module Heap = Gbc_runtime.Heap
module Obj = Gbc_runtime.Obj
module Tconc = Gbc_runtime.Tconc
module Collector = Gbc_runtime.Collector
module Guardian = Gbc_runtime.Guardian
module Weak_pair = Gbc_runtime.Weak_pair
module Ephemeron = Gbc_runtime.Ephemeron
module Verify = Gbc_runtime.Verify
module Telemetry = Gbc_runtime.Telemetry
module Census = Gbc_runtime.Census
module Runtime = Gbc_runtime.Runtime
module Handle = Gbc_runtime.Handle
module Symtab = Gbc_runtime.Symtab

module Vfs = Gbc_vfs.Vfs
module Ctx = Ctx
module Port = Port
module Guarded_port = Guarded_port
module Guarded_table = Guarded_table
module Eq_table = Eq_table
module Transport_guardian = Transport_guardian
module Free_pool = Free_pool
module Weak_eq_table = Weak_eq_table
module Will_executor = Will_executor
