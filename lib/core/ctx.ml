(** Execution context: a simulated heap plus the virtual filesystem ports
    are backed by. *)

open Gbc_runtime

type t = {
  heap : Heap.t;
  vfs : Gbc_vfs.Vfs.t;
}

let create ?config ?(fd_limit = 64) () =
  { heap = Heap.create ?config (); vfs = Gbc_vfs.Vfs.create ~fd_limit () }

(* Adopt an existing heap (e.g. one rebuilt from a heap image) with a
   fresh filesystem: open ports are host state and do not survive an
   image, so the VFS starts empty. *)
let of_heap ?(fd_limit = 64) heap = { heap; vfs = Gbc_vfs.Vfs.create ~fd_limit () }

let heap t = t.heap
let vfs t = t.vfs
