(** Execution context: a simulated heap plus the virtual filesystem ports
    are backed by. *)

open Gbc_runtime

type t = {
  heap : Heap.t;
  vfs : Gbc_vfs.Vfs.t;
}

val create : ?config:Config.t -> ?fd_limit:int -> unit -> t

(** Adopt an existing heap (e.g. one rebuilt from a heap image) with a
    fresh, empty filesystem — open ports are host state and do not
    survive an image. *)
val of_heap : ?fd_limit:int -> Heap.t -> t
val heap : t -> Heap.t
val vfs : t -> Gbc_vfs.Vfs.t
