(** Guardians: the paper's primary contribution.

    A guardian is created empty; objects are registered with it for
    preservation; once a registered object has been {e proven} inaccessible
    (except through the guardian mechanism itself) by a collection, the
    collector saves it from destruction and appends it to the guardian's
    queue, from which the mutator retrieves objects one at a time with
    {!retrieve} — the full program, allocation included, is available while
    handling them, and the objects themselves have no special status: they
    may be stored away, re-registered, or simply dropped again.

    At the user level Scheme represents guardians as procedures; here a
    guardian is a typed heap object wrapping the tconc queue plus a stable
    telemetry id (the heap word itself moves under copying collections, so
    the id — not the address — keys the per-guardian lifecycle metrics in
    {!Telemetry}).  The Scheme layer wraps it back into a procedure,
    recovering the paper's exact interface. *)

let tconc_field = 0
let id_field = 1

(** [make h] creates a new guardian with an empty registered group. *)
let make h =
  let tc = Tconc.make h in
  let gid = Telemetry.new_guardian (Heap.telemetry h) in
  let g = Obj.make_typed h ~code:Obj.code_guardian ~len:2 ~init:Word.nil () in
  Obj.set_field h g tconc_field tc;
  Obj.set_field h g id_field (Word.of_fixnum gid);
  g

let is_guardian h w = Obj.has_code h w Obj.code_guardian

let tconc h g =
  assert (is_guardian h g);
  Obj.field h g tconc_field

(** The guardian's stable telemetry id. *)
let id h g =
  assert (is_guardian h g);
  Word.to_fixnum (Obj.field h g id_field)

(** Lifecycle metrics of guardian [g]: registrations, resurrections,
    drops, polls, hits, poll latency. *)
let stats h g = Telemetry.guardian_stats (Heap.telemetry h) (id h g)

(** Register [obj] with guardian [g].  An object may be registered with more
    than one guardian, or several times with the same guardian (it is then
    retrievable once per registration). *)
let register h g obj =
  let tc = tconc h g in
  Heap.protected_add h ~gid:(id h g) ~obj ~rep:obj ~tconc:tc

(** Generalized interface (paper Section 5): when [obj] becomes
    inaccessible the guardian yields [rep] instead of the object itself.
    [rep] is kept alive by the registration; [obj] is {e not} saved, so
    something smaller than the object can stand in for it during clean-up.
    [register] is the special case [rep = obj]. *)
let register_with_rep h g ~obj ~rep =
  let tc = tconc h g in
  Heap.protected_add h ~gid:(id h g) ~obj ~rep ~tconc:tc

(** Retrieve one object proven inaccessible, or [None].  Never blocks, never
    triggers a collection: overhead is paid only per clean-up actually
    performed. *)
let retrieve h g =
  let stats' = Heap.stats h in
  stats'.guardian_polls <- stats'.guardian_polls + 1;
  let result = Tconc.dequeue h (tconc h g) in
  let hit = result <> None in
  if hit then stats'.guardian_hits <- stats'.guardian_hits + 1;
  Telemetry.record_poll (Heap.telemetry h) ~gid:(id h g) ~hit
    ~epoch:(Heap.gc_epoch h);
  result

(** Objects currently waiting in the guardian's inaccessible group. *)
let pending_count h g = Tconc.length h (tconc h g)

let pending_list h g = Tconc.to_list h (tconc h g)
