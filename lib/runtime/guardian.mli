(** Guardians: the paper's primary contribution.

    A guardian is created empty; objects are registered with it for
    preservation; once a registered object has been {e proven} inaccessible
    (except through the guardian mechanism itself) by a collection, the
    collector saves it from destruction and appends it to the guardian's
    queue, from which the mutator retrieves objects one at a time with
    {!retrieve}.  Retrieved objects have no special status: they may be
    stored away, re-registered, or dropped again. *)

val make : Heap.t -> Word.t
(** Create a guardian (a typed heap object wrapping a tconc).  Root it
    with a {!Handle.t} if it must survive collections on the OCaml side. *)

val is_guardian : Heap.t -> Word.t -> bool

val tconc : Heap.t -> Word.t -> Word.t
(** The guardian's underlying tconc (exposed for tests and tooling). *)

val id : Heap.t -> Word.t -> int
(** The guardian's stable telemetry id (stored in the guardian object, so
    it survives copying collections). *)

val stats : Heap.t -> Word.t -> Telemetry.guardian_stats
(** Lifecycle metrics of this guardian: registrations, resurrections,
    drops, polls, hits, and poll latency (collections between an entry's
    resurrection and its retrieval). *)

val register : Heap.t -> Word.t -> Word.t -> unit
(** [register h g obj]: an object may be registered with more than one
    guardian, or several times with the same guardian (it is then
    retrievable once per registration).  Registering an immediate is
    allowed but moot — immediates never become inaccessible. *)

val register_with_rep : Heap.t -> Word.t -> obj:Word.t -> rep:Word.t -> unit
(** Generalized interface (paper Section 5): when [obj] becomes
    inaccessible the guardian yields [rep] instead.  [rep] is kept alive by
    the registration; [obj] is {e not} saved.  [register] is the special
    case [rep = obj]. *)

val retrieve : Heap.t -> Word.t -> Word.t option
(** One object proven inaccessible, or [None].  Never blocks, never
    collects: overhead is paid only per clean-up actually performed. *)

val pending_count : Heap.t -> Word.t -> int
(** Objects currently waiting in the guardian's inaccessible group. *)

val pending_list : Heap.t -> Word.t -> Word.t list
