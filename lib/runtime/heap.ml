(** The simulated segmented heap.

    A heap instance owns:
    - the {e store}: an array of segments, each an [int array] of tagged
      words (see {!Word});
    - the {e segment information table} mapping each segment to its space,
      generation and dirty status (the paper's Chez Scheme substrate);
    - per-space allocation cursors for the mutator (generation 0) and for
      the collector (the target generation during a collection);
    - the {e root} registry (global cells plus arbitrary scanners);
    - the per-generation {e protected lists} of guardian registrations;
    - work counters ({!Stats}).

    Mutator allocation never runs the collector: collections happen only at
    explicit safepoints (see {!Runtime.safepoint}), so OCaml code is free to
    hold raw words between its own safepoints.  Anything that must survive a
    collection has to be reachable from a root. *)

exception Allocation_forbidden
(** Raised by mutator allocation while a collector-invoked finalization
    thunk is running (the Dickey baseline's restriction, see
    {!Baselines.Finalize}). *)

exception Out_of_memory
(** Raised by mutator allocation once the configured [max_heap_words]
    ceiling would be exceeded.  Collections are exempt (copying transiently
    needs both spaces). *)

let stride_bits = 20
let max_segment_words = 1 lsl stride_bits

type seg_info = {
  mutable space : Space.t;
  mutable generation : int;
  mutable used : int;  (** words allocated so far *)
  mutable size : int;  (** capacity in words *)
  mutable min_ref_gen : int;
      (** youngest generation this segment may hold a pointer into; equal to
          [generation] when clean.  The remembered set. *)
  mutable live : bool;
  mutable condemned : bool;  (** part of from-space of the current GC *)
  mutable scan : int;  (** collector scan cursor (words) *)
  mutable on_dirty_list : bool;
  mutable large : bool;  (** oversized single-object segment *)
  mutable mark_epoch : int;  (** dedup marker for segment-list compaction *)
  mutable cards : Bytes.t;
      (** byte-per-card remembered set: card [c] holds the youngest
          generation any slot in card [c] may reference, or {!card_clean}
          (255) when no slot references a younger generation.  Invariant:
          [min_ref_gen = min generation (min over card bytes)]. *)
  mutable crossing : int array;
      (** card crossing map: [crossing.(c)] is the offset of the object
          covering the first word of card [c], so a card of a typed-space
          segment can be scanned from an object header.  Maintained by
          {!bump} for every allocation. *)
}

type cursor = { mutable seg : int }  (** -1 when no current segment *)

type protected = {
  (* Parallel vectors: one guardian registration per index.  [rep] is the
     word enqueued when [obj] proves inaccessible; it equals [obj] for plain
     registrations and is a distinct "agent" for the generalized interface
     of the paper's Section 5.  [gid] is the owning guardian's telemetry id
     (stable across copying collections, unlike the tconc word). *)
  p_objs : Vec.Int.t;
  p_reps : Vec.Int.t;
  p_tconcs : Vec.Int.t;
  p_gids : Vec.Int.t;
}

type faults = {
  (* Fault-injection state for the torture harness (lib/torture).  Seeded
     from the corresponding Config fields; re-armable at runtime. *)
  mutable fail_segment_alloc_at : int;
      (** mutator segment acquisitions remaining before a one-shot
          {!Out_of_memory}; 0 = disarmed *)
  mutable corrupt_forward_period : int;
      (** corrupt every [n]th forwarded pointer; 0 = off *)
  mutable forwards_seen : int;  (** forwards counted while the bug is armed *)
  mutable injected : int;  (** faults actually fired so far *)
}

type t = {
  config : Config.t;
  stats : Stats.t;
  telemetry : Telemetry.t;
  card_shift : int;  (** log2 of the effective card size in words *)
  mutable segs : int array array;
  mutable infos : seg_info array;
  mutable nsegs : int;
  mutable free_std : int list;  (** free segments whose array is retained *)
  mutable free_ids : int list;  (** free segment ids whose array was dropped *)
  mutator_cursors : cursor array;  (** per space: generation-0 allocation *)
  gc_cursors : cursor array;  (** per space: target-generation allocation *)
  gen_segs : Vec.Int.t array;  (** per generation: seg ids (may be stale) *)
  gc_new_segs : Vec.Int.t;  (** segments acquired during the current GC *)
  gc_ephemerons : Vec.Int.t;
      (** key-slot addresses of ephemerons discovered but not yet resolved
          during the current GC *)
  gc_forward_log : Vec.Int.t;
      (** from-space addresses of objects forwarded while
          [gc_log_forwards] — the guardian fixpoint's worklist feed *)
  mutable gc_log_forwards : bool;
  dirty : Vec.Int.t;  (** seg ids with [min_ref_gen < generation] *)
  mutable epoch_counter : int;
  protected : protected array;  (** per generation *)
  mutable global_cells : int array;
  mutable global_cells_len : int;
  mutable global_free : int list;
  mutable scanners : (int * ((Word.t -> Word.t) -> unit)) list;
  mutable weak_scanners : (int * ((Word.t -> Word.t option) -> unit)) list;
  mutable next_scanner_id : int;
  mutable in_collection : bool;
  mutable alloc_forbidden : bool;
  mutable segment_words_live : int;  (** capacity of all live segments *)
  mutable gc_epoch : int;  (** bumped at the end of every collection *)
  mutable collect_count : int;  (** collect requests served (schedule input) *)
  mutable last_gc_generation : int;  (** oldest generation of the last GC *)
  mutable collect_request_handler : (t -> unit) option;
  mutable post_gc_hooks : (int * (t -> unit)) list;
  faults : faults;
}

let fresh_info () =
  {
    space = Space.Pair;
    generation = 0;
    used = 0;
    size = 0;
    min_ref_gen = 0;
    live = false;
    condemned = false;
    scan = 0;
    on_dirty_list = false;
    large = false;
    mark_epoch = 0;
    cards = Bytes.empty;
    crossing = [||];
  }

(* A card byte of 255 means "clean"; Config.v keeps max_generation <= 254
   so every real generation fits below it. *)
let card_clean = 255

(* Effective card size: the next power of two >= card_words, capped at the
   segment stride so a card never exceeds the largest segment. *)
let card_shift_of_words words =
  let s = ref 3 in
  while !s < stride_bits && 1 lsl !s < words do
    incr s
  done;
  !s

let create ?(config = Config.default) () =
  {
    config;
    stats = Stats.create ();
    telemetry = Telemetry.create ();
    card_shift = card_shift_of_words config.card_words;
    segs = Array.make 16 [||];
    infos = Array.init 16 (fun _ -> fresh_info ());
    nsegs = 0;
    free_std = [];
    free_ids = [];
    mutator_cursors = Array.init Space.count (fun _ -> { seg = -1 });
    gc_cursors = Array.init Space.count (fun _ -> { seg = -1 });
    gen_segs = Array.init (config.max_generation + 1) (fun _ -> Vec.Int.create ());
    gc_new_segs = Vec.Int.create ();
    gc_ephemerons = Vec.Int.create ();
    gc_forward_log = Vec.Int.create ();
    gc_log_forwards = false;
    dirty = Vec.Int.create ();
    epoch_counter = 0;
    protected =
      Array.init (config.max_generation + 1) (fun _ ->
          {
            p_objs = Vec.Int.create ();
            p_reps = Vec.Int.create ();
            p_tconcs = Vec.Int.create ();
            p_gids = Vec.Int.create ();
          });
    global_cells = Array.make 64 Word.nil;
    global_cells_len = 0;
    global_free = [];
    scanners = [];
    weak_scanners = [];
    next_scanner_id = 0;
    in_collection = false;
    alloc_forbidden = false;
    segment_words_live = 0;
    gc_epoch = 0;
    collect_count = 0;
    last_gc_generation = -1;
    collect_request_handler = None;
    post_gc_hooks = [];
    faults =
      {
        fail_segment_alloc_at = config.Config.fail_segment_alloc_at;
        corrupt_forward_period = config.Config.corrupt_forward_period;
        forwards_seen = 0;
        injected = 0;
      };
  }

let config t = t.config
let faults t = t.faults
let stats t = t.stats
let telemetry t = t.telemetry
let gc_epoch t = t.gc_epoch
let max_generation t = t.config.max_generation
let card_shift t = t.card_shift
let card_words t = 1 lsl t.card_shift

(* Number of cards covering [words] words of a segment. *)
let cards_for t words = if words <= 0 then 0 else ((words - 1) lsr t.card_shift) + 1

(* ------------------------------------------------------------------ *)
(* Store access                                                        *)

let seg_of_addr addr = addr lsr stride_bits
let off_of_addr addr = addr land (max_segment_words - 1)
let addr_of ~seg ~off = (seg lsl stride_bits) lor off

let load t addr = t.segs.(seg_of_addr addr).(off_of_addr addr)
let store t addr w = t.segs.(seg_of_addr addr).(off_of_addr addr) <- w

let info t seg = t.infos.(seg)
let info_of_addr t addr = t.infos.(seg_of_addr addr)
let info_of_word t w = t.infos.(seg_of_addr (Word.addr w))

(** Generation an arbitrary word "lives in": immediates and fixnums are
    ageless and report [max_int] (they never need remembering). *)
let generation_of_word t w =
  if Word.is_pointer w then (info_of_word t w).generation else max_int

let space_of_word t w =
  assert (Word.is_pointer w);
  (info_of_word t w).space

(* ------------------------------------------------------------------ *)
(* Segment management                                                  *)

let grow_tables t needed =
  if needed > Array.length t.segs then begin
    let cap = ref (Array.length t.segs) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let segs = Array.make !cap [||] in
    Array.blit t.segs 0 segs 0 t.nsegs;
    t.segs <- segs;
    let infos = Array.init !cap (fun i -> if i < t.nsegs then t.infos.(i) else fresh_info ()) in
    t.infos <- infos
  end

let fresh_seg_id t =
  match t.free_ids with
  | id :: rest ->
      t.free_ids <- rest;
      id
  | [] ->
      grow_tables t (t.nsegs + 1);
      let id = t.nsegs in
      t.nsegs <- t.nsegs + 1;
      id

(** Acquire a segment for [space] in [generation], of at least [min_words]
    (a standard segment unless the object is oversized). *)
let acquire_segment t ~space ~generation ~min_words =
  if min_words > max_segment_words then
    invalid_arg "object larger than the maximum segment size";
  let std = t.config.segment_words in
  (* Enforce the heap ceiling for the mutator; a running collection is
     exempt (stop-and-copy transiently needs from- and to-space). *)
  if
    (not t.in_collection)
    && t.segment_words_live + max min_words std > t.config.max_heap_words
  then raise Out_of_memory;
  (* Fault injection: a one-shot mutator segment-acquisition failure,
     counted down per acquisition.  Collections stay exempt so a fault
     never strands a half-copied heap. *)
  if (not t.in_collection) && t.faults.fail_segment_alloc_at > 0 then begin
    t.faults.fail_segment_alloc_at <- t.faults.fail_segment_alloc_at - 1;
    if t.faults.fail_segment_alloc_at = 0 then begin
      t.faults.injected <- t.faults.injected + 1;
      raise Out_of_memory
    end
  end;
  let seg =
    if min_words <= std then
      match t.free_std with
      | id :: rest ->
          t.free_std <- rest;
          id
      | [] ->
          let id = fresh_seg_id t in
          t.segs.(id) <- Array.make std 0;
          id
    else begin
      let id = fresh_seg_id t in
      t.segs.(id) <- Array.make min_words 0;
      id
    end
  in
  let si = t.infos.(seg) in
  si.space <- space;
  si.generation <- generation;
  si.used <- 0;
  si.size <- Array.length t.segs.(seg);
  si.min_ref_gen <- generation;
  si.live <- true;
  si.condemned <- false;
  si.scan <- 0;
  si.on_dirty_list <- false;
  si.large <- min_words > std;
  let ncards = cards_for t si.size in
  if Bytes.length si.cards < ncards then si.cards <- Bytes.make ncards '\xff'
  else Bytes.fill si.cards 0 ncards '\xff';
  if Array.length si.crossing < ncards then si.crossing <- Array.make ncards 0;
  t.segment_words_live <- t.segment_words_live + si.size;
  Vec.Int.push t.gen_segs.(generation) seg;
  if t.in_collection then Vec.Int.push t.gc_new_segs seg;
  t.stats.last.segments_allocated <- t.stats.last.segments_allocated + 1;
  seg

let release_segment t seg =
  let si = t.infos.(seg) in
  t.segment_words_live <- t.segment_words_live - si.size;
  si.live <- false;
  si.condemned <- false;
  si.used <- 0;
  si.on_dirty_list <- false;
  t.stats.last.segments_freed <- t.stats.last.segments_freed + 1;
  if si.large then begin
    t.segs.(seg) <- [||];
    si.large <- false;
    si.size <- 0;
    si.cards <- Bytes.empty;
    si.crossing <- [||];
    t.free_ids <- seg :: t.free_ids
  end
  else t.free_std <- seg :: t.free_std

(** Live segments currently assigned to [generation].  The per-generation
    lists may contain stale ids (segments freed or re-assigned) and
    duplicates (segments re-acquired for the same generation); both are
    filtered out by compacting the list in place — no allocation — and the
    compacted list itself is returned, keeping enumeration proportional to
    the size of the generation, not of the heap.  The result aliases the
    heap's own list: it is valid until the next allocation into
    [generation] appends to it. *)
let live_segments_of_gen t generation =
  t.epoch_counter <- t.epoch_counter + 1;
  let epoch = t.epoch_counter in
  let v = t.gen_segs.(generation) in
  let n = Vec.Int.length v in
  let w = ref 0 in
  for i = 0 to n - 1 do
    let seg = Vec.Int.get v i in
    let si = t.infos.(seg) in
    if si.live && si.generation = generation && si.mark_epoch <> epoch then begin
      si.mark_epoch <- epoch;
      Vec.Int.set v !w seg;
      incr w
    end
  done;
  Vec.Int.truncate v !w;
  v

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let bump t ~cursors ~space ~generation nwords =
  let idx = Space.to_index space in
  let cur = cursors.(idx) in
  let seg =
    if cur.seg >= 0 then begin
      let si = t.infos.(cur.seg) in
      if
        si.live && (not si.condemned) && si.generation = generation
        && si.space = space
        && si.used + nwords <= si.size
      then cur.seg
      else begin
        let s = acquire_segment t ~space ~generation ~min_words:nwords in
        if not t.infos.(s).large then cur.seg <- s;
        s
      end
    end
    else begin
      let s = acquire_segment t ~space ~generation ~min_words:nwords in
      if not t.infos.(s).large then cur.seg <- s;
      s
    end
  in
  let si = t.infos.(seg) in
  let off = si.used in
  si.used <- si.used + nwords;
  (* Crossing map: every card whose first word falls inside this object
     starts mid-object; record the object's offset so a card scan can find
     the covering header.  The loop body runs only when the allocation
     crosses a card boundary, so it is O(1) amortized. *)
  let first_c = (off + (1 lsl t.card_shift) - 1) lsr t.card_shift in
  let last_c = (off + nwords - 1) lsr t.card_shift in
  for c = first_c to last_c do
    si.crossing.(c) <- off
  done;
  addr_of ~seg ~off

(** Mutator allocation: raw words in generation 0.  The caller initializes
    the words; until then they read as fixnum 0. *)
let alloc t ~space nwords =
  if t.alloc_forbidden then raise Allocation_forbidden;
  t.stats.words_allocated <- t.stats.words_allocated + nwords;
  t.stats.words_allocated_since_gc <- t.stats.words_allocated_since_gc + nwords;
  bump t ~cursors:t.mutator_cursors ~space ~generation:0 nwords

(** Collector allocation into the target generation during a collection. *)
let gc_alloc t ~space ~generation nwords =
  assert t.in_collection;
  bump t ~cursors:t.gc_cursors ~space ~generation nwords

let reset_cursors cursors = Array.iter (fun c -> c.seg <- -1) cursors

(* ------------------------------------------------------------------ *)
(* Remembered set (card-marked dirty segments)                         *)

(* Lower the card byte covering [addr] to [gen] and remember the segment.
   [gen < si.generation] must already hold. *)
let mark_card t si ~addr ~gen =
  let c = off_of_addr addr lsr t.card_shift in
  let cur = Bytes.get_uint8 si.cards c in
  let g = if gen > card_clean - 1 then card_clean - 1 else gen in
  if g < cur then begin
    if cur = card_clean then t.stats.cards_dirtied <- t.stats.cards_dirtied + 1;
    Bytes.set_uint8 si.cards c g
  end;
  if gen < si.min_ref_gen then si.min_ref_gen <- gen;
  if not si.on_dirty_list then begin
    si.on_dirty_list <- true;
    Vec.Int.push t.dirty (seg_of_addr addr)
  end

(** Record (collector-side) that the slot at [addr] references generation
    [gen]: marks the covering card and keeps the segment summary in sync.
    The slot's own write must be done by the caller. *)
let note_ref t ~addr ~gen =
  let si = t.infos.(seg_of_addr addr) in
  if gen < si.generation then mark_card t si ~addr ~gen

(** Record that [value] was stored into the object at [addr] — the mutator
    write barrier.  Cheap on the fast paths: non-pointer stores and stores
    into generation-0 segments exit after one or two compares; only an
    old-to-young store (a "hit") touches the card table. *)
let note_mutation t ~addr ~value =
  let st = t.stats in
  st.barrier_calls <- st.barrier_calls + 1;
  if Word.is_pointer value then begin
    let si = t.infos.(seg_of_addr addr) in
    if si.generation > 0 then begin
      let vgen = (t.infos.(seg_of_addr (Word.addr value))).generation in
      if vgen < si.generation then begin
        st.barrier_hits <- st.barrier_hits + 1;
        mark_card t si ~addr ~gen:vgen
      end
    end
  end

(** Recompute [min_ref_gen] from the card bytes (the cards are ground
    truth after a card-granular scan) and re-remember the segment if some
    card still reaches into a younger generation. *)
let refresh_remembered t seg =
  let si = t.infos.(seg) in
  let m = ref si.generation in
  let ncards = cards_for t si.used in
  for c = 0 to ncards - 1 do
    let b = Bytes.get_uint8 si.cards c in
    if b < !m then m := b
  done;
  si.min_ref_gen <- !m;
  if si.min_ref_gen < si.generation && not si.on_dirty_list then begin
    si.on_dirty_list <- true;
    Vec.Int.push t.dirty seg
  end

(** {2 Card introspection} (tests, {!Verify}) *)

let card_min_gen t ~seg ~card = Bytes.get_uint8 (t.infos.(seg)).cards card
let card_of_off t off = off lsr t.card_shift
let cards_in_use t seg = cards_for t (t.infos.(seg)).used
let card_object_start t ~seg ~card = (t.infos.(seg)).crossing.(card)

(* ------------------------------------------------------------------ *)
(* Roots                                                               *)

(** Allocate a global root cell; its content is scanned (and updated) by
    every collection. *)
let new_cell t init =
  match t.global_free with
  | i :: rest ->
      t.global_free <- rest;
      t.global_cells.(i) <- init;
      i
  | [] ->
      if t.global_cells_len = Array.length t.global_cells then begin
        let cells = Array.make (2 * Array.length t.global_cells) Word.nil in
        Array.blit t.global_cells 0 cells 0 t.global_cells_len;
        t.global_cells <- cells
      end;
      let i = t.global_cells_len in
      t.global_cells_len <- t.global_cells_len + 1;
      t.global_cells.(i) <- init;
      i

let read_cell t i = t.global_cells.(i)
let write_cell t i w = t.global_cells.(i) <- w

let free_cell t i =
  t.global_cells.(i) <- Word.nil;
  t.global_free <- i :: t.global_free

(** Register a root scanner.  During a collection it is called with the
    forwarding function and must apply it to every root word it owns,
    storing back the results.  Returns an id for {!remove_scanner}. *)
let add_scanner t scan =
  let id = t.next_scanner_id in
  t.next_scanner_id <- id + 1;
  t.scanners <- (id, scan) :: t.scanners;
  id

let remove_scanner t id = t.scanners <- List.filter (fun (i, _) -> i <> id) t.scanners

(** Register a weak scanner: called after each collection's weak pass with a
    [lookup] function mapping an old word to its new location, or [None] if
    the object was reclaimed.  Weak scanners do not keep objects alive. *)
let add_weak_scanner t scan =
  let id = t.next_scanner_id in
  t.next_scanner_id <- id + 1;
  t.weak_scanners <- (id, scan) :: t.weak_scanners;
  id

let remove_weak_scanner t id =
  t.weak_scanners <- List.filter (fun (i, _) -> i <> id) t.weak_scanners

let iter_scanners t ~f =
  (* Built-in roots: the global cells. *)
  f (fun rewrite ->
      for i = 0 to t.global_cells_len - 1 do
        t.global_cells.(i) <- rewrite t.global_cells.(i)
      done);
  List.iter (fun (_, scan) -> f scan) t.scanners

let iter_weak_scanners t ~f = List.iter (fun (_, scan) -> f scan) t.weak_scanners

(** Run [f] with a temporary root cell holding [w]; returns [f cell_id].
    Convenient for library code that must keep a value alive across a
    potential safepoint. *)
let with_cell t w f =
  let c = new_cell t w in
  Fun.protect ~finally:(fun () -> free_cell t c) (fun () -> f c)

(* ------------------------------------------------------------------ *)
(* Protected lists (guardian registrations)                            *)

(** Register [obj] with the guardian whose tconc is [tconc]: a new entry is
    added to the protected list for generation 0, exactly as in the paper.
    [rep] is what the collector will enqueue when [obj] proves
    inaccessible. *)
let protected_add t ~gid ~obj ~rep ~tconc =
  let p = t.protected.(0) in
  Vec.Int.push p.p_objs obj;
  Vec.Int.push p.p_reps rep;
  Vec.Int.push p.p_tconcs tconc;
  Vec.Int.push p.p_gids gid;
  t.stats.registrations <- t.stats.registrations + 1;
  Telemetry.record_registration t.telemetry ~gid

let protected_add_gen t ~generation ~gid ~obj ~rep ~tconc =
  let p = t.protected.(generation) in
  Vec.Int.push p.p_objs obj;
  Vec.Int.push p.p_reps rep;
  Vec.Int.push p.p_tconcs tconc;
  Vec.Int.push p.p_gids gid

let protected_length t generation =
  Vec.Int.length t.protected.(generation).p_objs

let protected_total t =
  Array.fold_left (fun acc p -> acc + Vec.Int.length p.p_objs) 0 t.protected

(* ------------------------------------------------------------------ *)
(* Post-GC hooks                                                       *)

let add_post_gc_hook t hook =
  let id = t.next_scanner_id in
  t.next_scanner_id <- id + 1;
  t.post_gc_hooks <- (id, hook) :: t.post_gc_hooks;
  id

let remove_post_gc_hook t id =
  t.post_gc_hooks <- List.filter (fun (i, _) -> i <> id) t.post_gc_hooks

let run_post_gc_hooks t = List.iter (fun (_, h) -> h t) t.post_gc_hooks

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let live_words t =
  let total = ref 0 in
  for seg = 0 to t.nsegs - 1 do
    let si = t.infos.(seg) in
    if si.live then total := !total + si.used
  done;
  !total

let live_segments t =
  let total = ref 0 in
  for seg = 0 to t.nsegs - 1 do
    if t.infos.(seg).live then incr total
  done;
  !total
