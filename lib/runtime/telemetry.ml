(** GC telemetry: a structured event stream with pluggable sinks.

    See the interface for the overview.  Design constraints:

    - {e zero cost when disabled}: every collector-side entry point
      checks [t.on] before taking a timestamp or building an event;
    - no dependency on {!Heap} (the heap owns a [Telemetry.t]), only on
      {!Stats} and {!Unix_time};
    - sinks are plain [event -> unit] closures, registered with ids so
      they can be detached independently. *)

(* ------------------------------------------------------------------ *)
(* Phases                                                              *)

type phase =
  | Root_scan
  | Dirty_scan
  | Cheney_copy
  | Guardian_pass
  | Ephemeron_fixpoint
  | Weak_pass
  | Segment_reclaim
  | Image_save
  | Image_load

let phase_count = 9

let all_phases =
  [
    Root_scan;
    Dirty_scan;
    Cheney_copy;
    Guardian_pass;
    Ephemeron_fixpoint;
    Weak_pass;
    Segment_reclaim;
    Image_save;
    Image_load;
  ]

let collection_phases =
  [
    Root_scan;
    Dirty_scan;
    Cheney_copy;
    Guardian_pass;
    Ephemeron_fixpoint;
    Weak_pass;
    Segment_reclaim;
  ]

let phase_index = function
  | Root_scan -> 0
  | Dirty_scan -> 1
  | Cheney_copy -> 2
  | Guardian_pass -> 3
  | Ephemeron_fixpoint -> 4
  | Weak_pass -> 5
  | Segment_reclaim -> 6
  | Image_save -> 7
  | Image_load -> 8

let phase_name = function
  | Root_scan -> "root-scan"
  | Dirty_scan -> "dirty-scan"
  | Cheney_copy -> "cheney-copy"
  | Guardian_pass -> "guardian-pass"
  | Ephemeron_fixpoint -> "ephemeron-fixpoint"
  | Weak_pass -> "weak-pass"
  | Segment_reclaim -> "segment-reclaim"
  | Image_save -> "image-save"
  | Image_load -> "image-load"

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

type event =
  | Collection_begin of {
      ordinal : int;
      generation : int;
      target : int;
      at_ns : float;
    }
  | Phase_begin of { ordinal : int; phase : phase; at_ns : float }
  | Phase_end of {
      ordinal : int;
      phase : phase;
      at_ns : float;
      duration_ns : float;
      work : int;
    }
  | Collection_end of {
      ordinal : int;
      generation : int;
      target : int;
      at_ns : float;
      duration_ns : float;
      counters : Stats.counters;
      live_words : int;
      barrier_calls : int;
          (** lifetime write-barrier invocations (session counter) *)
      barrier_hits : int;  (** lifetime old-to-young stores *)
      cards_dirtied : int;  (** lifetime clean-to-dirty card transitions *)
    }

type sink = event -> unit

(* ------------------------------------------------------------------ *)
(* Pause-time histogram                                                *)

module Histogram = struct
  (* Bucket i counts durations d with 2^i <= d < 2^(i+1) ns; bucket 0
     also absorbs sub-nanosecond durations.  63 buckets cover every
     representable duration (2^62 ns is ~146 years). *)
  let nbuckets = 63

  type t = {
    counts : int array;
    mutable n : int;
    mutable max_ns : float;
    mutable total_ns : float;
  }

  let create () =
    { counts = Array.make nbuckets 0; n = 0; max_ns = 0.; total_ns = 0. }

  let bucket_of_ns ns =
    let d = int_of_float ns in
    if d < 2 then 0
    else begin
      let rec lg v acc = if v < 2 then acc else lg (v lsr 1) (acc + 1) in
      min (nbuckets - 1) (lg d 0)
    end

  let lower i = if i = 0 then 0. else Float.pow 2. (float_of_int i)
  let upper i = Float.pow 2. (float_of_int (i + 1))

  let add t ns =
    let ns = Float.max ns 0. in
    t.counts.(bucket_of_ns ns) <- t.counts.(bucket_of_ns ns) + 1;
    t.n <- t.n + 1;
    if ns > t.max_ns then t.max_ns <- ns;
    t.total_ns <- t.total_ns +. ns

  let count t = t.n
  let max_ns t = t.max_ns
  let total_ns t = t.total_ns

  let percentile t p =
    if t.n = 0 then 0.
    else begin
      let rank = Float.max 1. (Float.round (p /. 100. *. float_of_int t.n)) in
      let cum = ref 0 and result = ref t.max_ns and found = ref false in
      for i = 0 to nbuckets - 1 do
        if not !found then begin
          cum := !cum + t.counts.(i);
          if float_of_int !cum >= rank then begin
            found := true;
            result := Float.min (upper i) t.max_ns
          end
        end
      done;
      !result
    end

  let buckets t = Array.init nbuckets (fun i -> (lower i, upper i, t.counts.(i)))

  let nonempty_buckets t =
    Array.to_list (buckets t) |> List.filter (fun (_, _, c) -> c > 0)
end

(* ------------------------------------------------------------------ *)
(* Per-guardian metrics                                                *)

type guardian_stats = {
  gid : int;
  mutable g_registrations : int;
  mutable g_resurrections : int;
  mutable g_drops : int;
  mutable g_polls : int;
  mutable g_hits : int;
  mutable g_latency_sum : int;
  mutable g_latency_max : int;
  g_pending_epochs : int Queue.t;
}

(* ------------------------------------------------------------------ *)
(* The hub                                                             *)

type t = {
  mutable on : bool;
  mutable sinks : (int * sink) list;
  mutable next_sink_id : int;
  (* In-flight collection state.  The collector brackets one collection at
     a time (collections never nest), so scalar state suffices. *)
  mutable cur_ordinal : int;
  mutable cur_generation : int;
  mutable cur_target : int;
  mutable cur_begin_ns : float;
  phase_begin_ns : float array;
  phase_last_ns : float array;
  phase_last_work : int array;
  phase_total_ns : float array;
  phase_total_work : int array;
  mutable collections_seen : int;
  pauses : Histogram.t;
  mutable guardians : guardian_stats array;  (** indexed by gid *)
  mutable nguardians : int;
  (* Heap-image I/O counters: plain bumps, always on (like the guardian
     metrics), so an image round-trip is visible even when phase timing
     is disabled. *)
  mutable img_saves : int;
  mutable img_loads : int;
  mutable img_bytes_written : int;
  mutable img_bytes_read : int;
  mutable img_words_written : int;
  mutable img_words_read : int;
}

type telemetry = t

let create () =
  {
    on = false;
    sinks = [];
    next_sink_id = 0;
    cur_ordinal = 0;
    cur_generation = 0;
    cur_target = 0;
    cur_begin_ns = 0.;
    phase_begin_ns = Array.make phase_count 0.;
    phase_last_ns = Array.make phase_count 0.;
    phase_last_work = Array.make phase_count 0;
    phase_total_ns = Array.make phase_count 0.;
    phase_total_work = Array.make phase_count 0;
    collections_seen = 0;
    pauses = Histogram.create ();
    guardians = [||];
    nguardians = 0;
    img_saves = 0;
    img_loads = 0;
    img_bytes_written = 0;
    img_bytes_read = 0;
    img_words_written = 0;
    img_words_read = 0;
  }

let set_enabled t b = t.on <- b
let enabled t = t.on

let add_sink t sink =
  let id = t.next_sink_id in
  t.next_sink_id <- id + 1;
  t.sinks <- t.sinks @ [ (id, sink) ];
  id

let remove_sink t id = t.sinks <- List.filter (fun (i, _) -> i <> id) t.sinks

let emit t ev = List.iter (fun (_, sink) -> sink ev) t.sinks

let collection_begin t ~ordinal ~generation ~target =
  if t.on then begin
    let now = Unix_time.now_ns () in
    t.cur_ordinal <- ordinal;
    t.cur_generation <- generation;
    t.cur_target <- target;
    t.cur_begin_ns <- now;
    Array.fill t.phase_last_ns 0 phase_count 0.;
    Array.fill t.phase_last_work 0 phase_count 0;
    emit t (Collection_begin { ordinal; generation; target; at_ns = now })
  end

let phase_begin t phase =
  if t.on then begin
    let now = Unix_time.now_ns () in
    t.phase_begin_ns.(phase_index phase) <- now;
    emit t (Phase_begin { ordinal = t.cur_ordinal; phase; at_ns = now })
  end

let phase_end t phase ~work =
  if t.on then begin
    let now = Unix_time.now_ns () in
    let i = phase_index phase in
    let duration_ns = Float.max 0. (now -. t.phase_begin_ns.(i)) in
    t.phase_last_ns.(i) <- duration_ns;
    t.phase_last_work.(i) <- work;
    t.phase_total_ns.(i) <- t.phase_total_ns.(i) +. duration_ns;
    t.phase_total_work.(i) <- t.phase_total_work.(i) + work;
    emit t
      (Phase_end { ordinal = t.cur_ordinal; phase; at_ns = now; duration_ns; work })
  end

let collection_end t ~counters ~live_words ?(barrier_calls = 0)
    ?(barrier_hits = 0) ?(cards_dirtied = 0) () =
  if t.on then begin
    let now = Unix_time.now_ns () in
    let duration_ns = Float.max 0. (now -. t.cur_begin_ns) in
    t.collections_seen <- t.collections_seen + 1;
    Histogram.add t.pauses duration_ns;
    emit t
      (Collection_end
         {
           ordinal = t.cur_ordinal;
           generation = t.cur_generation;
           target = t.cur_target;
           at_ns = now;
           duration_ns;
           counters;
           live_words;
           barrier_calls;
           barrier_hits;
           cards_dirtied;
         })
  end

let collections_seen t = t.collections_seen
let phase_ns_last t phase = t.phase_last_ns.(phase_index phase)
let phase_work_last t phase = t.phase_last_work.(phase_index phase)
let phase_ns_total t phase = t.phase_total_ns.(phase_index phase)
let phase_work_total t phase = t.phase_total_work.(phase_index phase)
let pause_histogram t = t.pauses

(* ------------------------------------------------------------------ *)
(* Per-guardian metrics                                                *)

let new_guardian t =
  let gid = t.nguardians in
  if gid = Array.length t.guardians then begin
    let cap = max 8 (2 * Array.length t.guardians) in
    let dummy =
      {
        gid = -1;
        g_registrations = 0;
        g_resurrections = 0;
        g_drops = 0;
        g_polls = 0;
        g_hits = 0;
        g_latency_sum = 0;
        g_latency_max = 0;
        g_pending_epochs = Queue.create ();
      }
    in
    let gs = Array.make cap dummy in
    Array.blit t.guardians 0 gs 0 t.nguardians;
    t.guardians <- gs
  end;
  t.guardians.(gid) <-
    {
      gid;
      g_registrations = 0;
      g_resurrections = 0;
      g_drops = 0;
      g_polls = 0;
      g_hits = 0;
      g_latency_sum = 0;
      g_latency_max = 0;
      g_pending_epochs = Queue.create ();
    };
  t.nguardians <- gid + 1;
  gid

let guardian_count t = t.nguardians

let guardian_stats t gid =
  if gid < 0 || gid >= t.nguardians then
    invalid_arg "Telemetry.guardian_stats: unknown guardian id";
  t.guardians.(gid)

let record_registration t ~gid =
  let g = guardian_stats t gid in
  g.g_registrations <- g.g_registrations + 1

let record_resurrection t ~gid ~epoch =
  let g = guardian_stats t gid in
  g.g_resurrections <- g.g_resurrections + 1;
  (* The tconc is FIFO and only the guardian's retrieve dequeues it, so a
     plain queue of resurrection epochs stays aligned with the queued
     objects. *)
  Queue.push epoch g.g_pending_epochs

let record_drop t ~gid =
  let g = guardian_stats t gid in
  g.g_drops <- g.g_drops + 1

let record_poll t ~gid ~hit ~epoch =
  let g = guardian_stats t gid in
  g.g_polls <- g.g_polls + 1;
  if hit then begin
    g.g_hits <- g.g_hits + 1;
    if not (Queue.is_empty g.g_pending_epochs) then begin
      let resurrected_at = Queue.pop g.g_pending_epochs in
      let latency = max 0 (epoch - resurrected_at) in
      g.g_latency_sum <- g.g_latency_sum + latency;
      if latency > g.g_latency_max then g.g_latency_max <- latency
    end
  end

(* ------------------------------------------------------------------ *)
(* Heap-image I/O counters                                             *)

type image_counters = {
  saves : int;
  loads : int;
  bytes_written : int;
  bytes_read : int;
  words_written : int;
  words_read : int;
}

let record_image_save t ~bytes ~words =
  t.img_saves <- t.img_saves + 1;
  t.img_bytes_written <- t.img_bytes_written + bytes;
  t.img_words_written <- t.img_words_written + words

let record_image_load t ~bytes ~words =
  t.img_loads <- t.img_loads + 1;
  t.img_bytes_read <- t.img_bytes_read + bytes;
  t.img_words_read <- t.img_words_read + words

let image_counters t =
  {
    saves = t.img_saves;
    loads = t.img_loads;
    bytes_written = t.img_bytes_written;
    bytes_read = t.img_bytes_read;
    words_written = t.img_words_written;
    words_read = t.img_words_read;
  }

let restore_guardian_count t n =
  (* Re-create the id space of a restored heap image: guardian objects in
     the image carry gids in [0 .. n); each must resolve in
     [guardian_stats] before any post-restore registration. *)
  while t.nguardians < n do
    ignore (new_guardian t)
  done

(* ------------------------------------------------------------------ *)
(* Ring sink                                                           *)

module Ring = struct
  type record = {
    ordinal : int;
    generation : int;
    target : int;
    duration_ns : float;
    phase_ns : float array;
    phase_work : int array;
    counters : Stats.counters;
    live_words_after : int;
  }

  type t = {
    tel : telemetry;
    ring : record option array;
    mutable next : int;
    mutable total : int;
    sink_id : int;
  }

  let attach ?(capacity = 64) tel =
    if capacity <= 0 then invalid_arg "Telemetry.Ring.attach: capacity";
    let r_ref = ref None in
    let sink_id =
      add_sink tel (function
        | Collection_end { ordinal; generation; target; duration_ns; counters; live_words; _ }
          -> (
            match !r_ref with
            | None -> ()
            | Some r ->
                let rec_ =
                  {
                    ordinal;
                    generation;
                    target;
                    duration_ns;
                    phase_ns = Array.copy tel.phase_last_ns;
                    phase_work = Array.copy tel.phase_last_work;
                    counters;
                    live_words_after = live_words;
                  }
                in
                r.ring.(r.next) <- Some rec_;
                r.next <- (r.next + 1) mod Array.length r.ring;
                r.total <- r.total + 1)
        | _ -> ())
    in
    let r =
      { tel; ring = Array.make capacity None; next = 0; total = 0; sink_id }
    in
    r_ref := Some r;
    r

  let detach r = remove_sink r.tel r.sink_id

  let records r =
    let n = Array.length r.ring in
    let out = ref [] in
    (* Slot [next + i] holds the (i+1)-th oldest retained record; walking i
       downward and prepending yields oldest-first. *)
    for i = n - 1 downto 0 do
      match r.ring.((r.next + i) mod n) with
      | Some rc -> out := rc :: !out
      | None -> ()
    done;
    !out

  let total_recorded r = r.total

  let pp_record ppf r =
    Format.fprintf ppf
      "#%d: gen %d->%d %.1fus, copied %d words (%d objects), guardian \
       entries %d, resurrected %d, weak broken %d, ephemerons broken %d, \
       live %d"
      r.ordinal r.generation r.target (r.duration_ns /. 1e3)
      r.counters.Stats.words_copied r.counters.Stats.objects_copied
      r.counters.Stats.protected_entries_visited
      r.counters.Stats.guardian_resurrections
      r.counters.Stats.weak_pointers_broken r.counters.Stats.ephemerons_broken
      r.live_words_after
end

(* ------------------------------------------------------------------ *)
(* Human log sink                                                      *)

module Log = struct
  let attach tel ppf =
    add_sink tel (function
      | Collection_end
          {
            ordinal;
            generation;
            target;
            duration_ns;
            counters;
            live_words;
            barrier_calls;
            barrier_hits;
            _;
          } ->
          Format.fprintf ppf "[gc #%d] gen %d->%d %.1fus |" ordinal generation
            target (duration_ns /. 1e3);
          List.iter
            (fun ph ->
              Format.fprintf ppf " %s %.1fus/%dw" (phase_name ph)
                (phase_ns_last tel ph /. 1e3)
                (phase_work_last tel ph))
            all_phases;
          Format.fprintf ppf
            " | cards %d/%dsegs barrier %d/%d (%.1f%%) | copied %dw/%do \
             resurrected %d live %dw@."
            counters.Stats.cards_scanned counters.Stats.dirty_segments_scanned
            barrier_hits barrier_calls
            (100.0 *. float_of_int barrier_hits
            /. float_of_int (max 1 barrier_calls))
            counters.Stats.words_copied counters.Stats.objects_copied
            counters.Stats.guardian_resurrections live_words
      | _ -> ())
end

(* ------------------------------------------------------------------ *)
(* Chrome trace_event sink                                             *)

module Chrome = struct
  type t = {
    tel : telemetry;
    oc : out_channel;
    mutable first : bool;
    mutable t0_ns : float;  (** nan until the first event fixes the origin *)
    mutable sink_id : int;
    mutable closed : bool;
  }

  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* One trace_event object.  [args] values must already be JSON
     fragments (numbers here). *)
  let write_event w ~name ~ph ~at_ns args =
    if Float.is_nan w.t0_ns then w.t0_ns <- at_ns;
    let ts_us = (at_ns -. w.t0_ns) /. 1e3 in
    if w.first then w.first <- false else output_string w.oc ",\n";
    Printf.fprintf w.oc
      "{\"name\":\"%s\",\"cat\":\"gc\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":1"
      (escape name) ph ts_us;
    (match args with
    | [] -> ()
    | args ->
        output_string w.oc ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then output_string w.oc ",";
            Printf.fprintf w.oc "\"%s\":%s" (escape k) v)
          args;
        output_string w.oc "}");
    output_string w.oc "}"

  let attach tel oc =
    let w =
      { tel; oc; first = true; t0_ns = Float.nan; sink_id = -1; closed = false }
    in
    output_string oc "[\n";
    let sink = function
      | Collection_begin { ordinal; generation; target; at_ns } ->
          write_event w ~name:"collection" ~ph:"B" ~at_ns
            [
              ("ordinal", string_of_int ordinal);
              ("generation", string_of_int generation);
              ("target", string_of_int target);
            ]
      | Phase_begin { phase; at_ns; _ } ->
          write_event w ~name:(phase_name phase) ~ph:"B" ~at_ns []
      | Phase_end { phase; at_ns; work; _ } ->
          write_event w ~name:(phase_name phase) ~ph:"E" ~at_ns
            [ ("work", string_of_int work) ]
      | Collection_end { at_ns; counters; live_words; _ } ->
          write_event w ~name:"collection" ~ph:"E" ~at_ns
            [
              ("words_copied", string_of_int counters.Stats.words_copied);
              ("objects_copied", string_of_int counters.Stats.objects_copied);
              ( "entries_visited",
                string_of_int counters.Stats.protected_entries_visited );
              ( "resurrections",
                string_of_int counters.Stats.guardian_resurrections );
              ("weak_broken", string_of_int counters.Stats.weak_pointers_broken);
              ("cards_scanned", string_of_int counters.Stats.cards_scanned);
              ( "card_words_swept",
                string_of_int counters.Stats.card_words_swept );
              ("live_words", string_of_int live_words);
            ]
    in
    w.sink_id <- add_sink tel sink;
    w

  let close w =
    if not w.closed then begin
      w.closed <- true;
      remove_sink w.tel w.sink_id;
      output_string w.oc "\n]\n";
      flush w.oc
    end
end
