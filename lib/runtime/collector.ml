(** The generation-based stop-and-copy collector, with the paper's guardian
    and weak-pair passes.

    A collection of generation [g] collects generations [0..g] (younger
    generations are always collected along with older ones) into the target
    generation chosen by the promotion policy.  Phases:

    + condemn the segments of generations [0..g];
    + forward the roots (global cells + registered scanners) and sweep the
      dirty segments of older generations (the remembered set);
    + Cheney-sweep to-space to a fixpoint ([kleene-sweep] in the paper);
    + the {b guardian pass} (paper Section 4): partition the protected
      entries of the collected generations into [pend-hold-list]
      (object still accessible) and [pend-final-list] (object proven
      inaccessible), then repeatedly move entries whose tconc is accessible
      from [pend-final-list] into their guardian's queue — forwarding, i.e.
      {e saving}, the object — and re-sweep, until no progress: this handles
      guardians registered with guardians; finally promote surviving
      [pend-hold-list] entries to the target generation's protected list and
      drop entries whose guardian itself died;
    + the {b weak pass}: mend or break the car fields of weak pairs — after
      the guardian pass, so a weak pointer to an object saved by a guardian
      is {e not} broken;
    + run registered weak scanners (support for baseline mechanisms);
    + free the condemned segments.

    The collector does no allocation except copies and the fresh tconc cells
    it appends (which go straight to the target generation). *)

open Heap

type outcome = {
  generation : int;  (** oldest generation collected *)
  target : int;
  duration_ns : float;
}

(* ------------------------------------------------------------------ *)
(* Forwarding                                                          *)

(* A copied object's first word is overwritten with the forwarding marker
   and its second word with the (tagged) new pointer word.  The smallest
   object is a pair (two words), so the two slots always exist. *)

let forwarded t w =
  (not (Word.is_pointer w))
  || (not (info_of_word t w).condemned)
  || Word.equal (load t (Word.addr w)) Word.forward_marker

(** Forwarding address of [w], or [w] itself if it was never copied (older
    generation, immediate).  Only meaningful when [forwarded t w]. *)
let forward_address t w =
  if (not (Word.is_pointer w)) || not (info_of_word t w).condemned then w
  else begin
    assert (Word.equal (load t (Word.addr w)) Word.forward_marker);
    load t (Word.addr w + 1)
  end

(** Copy [w] to the target generation if it is a pointer into from-space not
    yet copied; returns the new word. *)
let copy t ~target w =
  if not (Word.is_pointer w) then w
  else begin
    let si = info_of_word t w in
    if not si.condemned then w
    else begin
      let addr = Word.addr w in
      let first = load t addr in
      if Word.equal first Word.forward_marker then load t (addr + 1)
      else begin
        let stats = (Heap.stats t).last in
        let new_word =
          if Word.is_pair_ptr w then begin
            let new_addr = gc_alloc t ~space:si.space ~generation:target 2 in
            store t new_addr first;
            store t (new_addr + 1) (load t (addr + 1));
            stats.words_copied <- stats.words_copied + 2;
            Word.pair_ptr new_addr
          end
          else begin
            let size = 1 + Obj.header_len first in
            (* Zero-field objects are padded to two words so the forwarding
               marker and address always fit (see Obj.code_pad). *)
            let alloc_size = max size 2 in
            let new_addr = gc_alloc t ~space:si.space ~generation:target alloc_size in
            for i = 0 to size - 1 do
              store t (new_addr + i) (load t (addr + i))
            done;
            if alloc_size > size then
              store t (new_addr + size) (Obj.header ~len:0 ~code:Obj.code_pad);
            stats.words_copied <- stats.words_copied + size;
            Word.typed_ptr new_addr
          end
        in
        stats.objects_copied <- stats.objects_copied + 1;
        (* Seeded debug bug (Config.corrupt_forward_period): corrupt every
           nth forwarding address to an interior pointer.  The torture
           harness must detect the damage via Verify or the oracle. *)
        let new_word =
          let f = t.faults in
          if f.corrupt_forward_period = 0 then new_word
          else begin
            f.forwards_seen <- f.forwards_seen + 1;
            if f.forwards_seen mod f.corrupt_forward_period = 0 then begin
              f.injected <- f.injected + 1;
              Word.with_addr new_word (Word.addr new_word + 1)
            end
            else new_word
          end
        in
        store t addr Word.forward_marker;
        store t (addr + 1) new_word;
        (* Guardian-fixpoint worklist feed: each object forwards once, so
           the log sees each from-space address at most once. *)
        if t.gc_log_forwards then Vec.Int.push t.gc_forward_log addr;
        new_word
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Sweeping                                                            *)

(* Generation of a word for remembered-set recomputation. *)
let ref_gen t w = if Word.is_pointer w then (info_of_word t w).generation else max_int

let push_dirty t seg =
  let si = info t seg in
  if si.min_ref_gen < si.generation && not si.on_dirty_list then begin
    si.on_dirty_list <- true;
    Vec.Int.push t.dirty seg
  end

(* Sweep the words of [seg] in [from, to_) as strong references: rewrite
   each traced slot through [copy] and note the referenced generations in
   the card table (which keeps min_ref_gen in sync).  Weak-space segments
   trace only cdr fields. *)
let sweep_range t ~target seg ~from ~upto =
  let si = info t seg in
  let stats = (Heap.stats t).last in
  let fwd addr =
    let w = copy t ~target (load t addr) in
    store t addr w;
    note_ref t ~addr ~gen:(ref_gen t w)
  in
  (match si.space with
  | Space.Pair ->
      let off = ref from in
      while !off < upto do
        fwd (addr_of ~seg ~off:!off);
        fwd (addr_of ~seg ~off:(!off + 1));
        off := !off + 2
      done
  | Space.Weak ->
      let off = ref from in
      while !off < upto do
        (* car is weak: left alone here, handled by the weak pass. *)
        fwd (addr_of ~seg ~off:(!off + 1));
        off := !off + 2
      done
  | Space.Ephemeron ->
      (* Neither field is traced eagerly: the value may only be traced once
         the key proves reachable.  Queue the cell for the ephemeron
         fixpoint. *)
      let off = ref from in
      while !off < upto do
        Vec.Int.push t.gc_ephemerons (addr_of ~seg ~off:!off);
        off := !off + 2
      done
  | Space.Typed ->
      let off = ref from in
      while !off < upto do
        let hdr = load t (addr_of ~seg ~off:!off) in
        let len = Obj.header_len hdr in
        for i = 1 to len do
          fwd (addr_of ~seg ~off:(!off + i))
        done;
        off := !off + 1 + len
      done
  | Space.Data -> ());
  stats.words_swept <- stats.words_swept + (upto - from)

(* One round of the ephemeron fixpoint: resolve every queued ephemeron
   whose key has proven reachable, tracing its value; keep the rest queued.
   Returns whether anything was resolved. *)
let process_ephemerons t ~target =
  let pending = t.gc_ephemerons in
  let n = Vec.Int.length pending in
  let stats = (Heap.stats t).last in
  let write = ref 0 in
  let progress = ref false in
  for i = 0 to n - 1 do
    let addr = Vec.Int.get pending i in
    let key = load t addr in
    let resolved_key =
      if not (Word.is_pointer key) then Some key
      else begin
        let ksi = info_of_word t key in
        if not ksi.condemned then Some key
        else if Word.equal (load t (Word.addr key)) Word.forward_marker then
          Some (load t (Word.addr key + 1))
        else None
      end
    in
    match resolved_key with
    | Some key' ->
        progress := true;
        stats.ephemerons_scanned <- stats.ephemerons_scanned + 1;
        store t addr key';
        (* The key is reachable: the value is strong after all. *)
        let v = copy t ~target (load t (addr + 1)) in
        store t (addr + 1) v;
        note_ref t ~addr ~gen:(ref_gen t key');
        note_ref t ~addr:(addr + 1) ~gen:(ref_gen t v)
    | None ->
        Vec.Int.set pending !write addr;
        incr write
  done;
  Vec.Int.truncate pending !write;
  !progress

(* Break the ephemerons whose keys never proved reachable: key and value
   both become #f.  Runs after the guardian pass (a guardian-saved key is a
   reachable key). *)
let break_ephemerons t =
  let stats = (Heap.stats t).last in
  Vec.Int.iter t.gc_ephemerons ~f:(fun addr ->
      stats.ephemerons_scanned <- stats.ephemerons_scanned + 1;
      stats.ephemerons_broken <- stats.ephemerons_broken + 1;
      store t addr Word.false_;
      store t (addr + 1) Word.false_);
  Vec.Int.clear t.gc_ephemerons

(* Cheney scan to a fixpoint: process every to-space segment's unscanned
   suffix until no segment has one, interleaved with the ephemeron
   fixpoint (a value traced because its key proved reachable can itself
   reveal further reachable keys).  Copies performed while sweeping extend
   [used] (possibly of other segments), hence the outer loop. *)
let kleene_sweep t ~target =
  let progress = ref true in
  while !progress do
    progress := false;
    (* gc_new_segs can grow while we iterate: index-based loop. *)
    let i = ref 0 in
    while !i < Vec.Int.length t.gc_new_segs do
      let seg = Vec.Int.get t.gc_new_segs !i in
      let si = info t seg in
      while si.live && si.scan < si.used do
        progress := true;
        let upto = si.used in
        sweep_range t ~target seg ~from:si.scan ~upto;
        si.scan <- upto
      done;
      incr i
    done;
    if process_ephemerons t ~target then progress := true
  done

(* ------------------------------------------------------------------ *)
(* Guardian pass                                                       *)

type pend = { obj : Word.t; mutable rep : Word.t; tconc : Word.t; gid : int }

let guardian_pass t ~g ~target =
  let stats = (Heap.stats t).last in
  let pend_hold = ref [] and pend_final = ref [] in
  (* First block: separate accessible from inaccessible registered objects.
     The protected lists themselves are collector metadata and are not
     forwarded.  For held entries the rep (agent) is kept alive here. *)
  for i = 0 to g do
    let p = t.protected.(i) in
    let n = Vec.Int.length p.p_objs in
    for j = 0 to n - 1 do
      stats.protected_entries_visited <- stats.protected_entries_visited + 1;
      let entry =
        {
          obj = Vec.Int.get p.p_objs j;
          rep = Vec.Int.get p.p_reps j;
          tconc = Vec.Int.get p.p_tconcs j;
          gid = Vec.Int.get p.p_gids j;
        }
      in
      if forwarded t entry.obj then begin
        entry.rep <- copy t ~target entry.rep;
        pend_hold := entry :: !pend_hold
      end
      else pend_final := entry :: !pend_final
    done;
    Vec.Int.clear p.p_objs;
    Vec.Int.clear p.p_reps;
    Vec.Int.clear p.p_tconcs;
    Vec.Int.clear p.p_gids
  done;
  kleene_sweep t ~target;
  (* Second block: queue inaccessible objects whose guardian is
     accessible.  Forwarding the saved representatives can make further
     guardians accessible (a guardian registered with a guardian), so
     instead of repeatedly re-partitioning pend-final-list, entries whose
     tconc is still in from-space wait in a table keyed by the tconc's
     address, and every object forwarded while the fixpoint runs is
     logged ([gc_forward_log]); draining the log wakes exactly the
     waiters of the addresses that forwarded.  Each entry is checked at
     most twice — at partition and when its tconc forwards — so the
     fixpoint costs O(1) amortized per entry, proportional to the
     entries actually saved. *)
  let waiters : (int, pend list ref) Hashtbl.t = Hashtbl.create 16 in
  let work = Queue.create () in
  List.iter
    (fun e ->
      stats.guardian_pend_checks <- stats.guardian_pend_checks + 1;
      if forwarded t e.tconc then Queue.add e work
      else begin
        let key = Word.addr e.tconc in
        match Hashtbl.find_opt waiters key with
        | Some r -> r := e :: !r
        | None -> Hashtbl.add waiters key (ref [ e ])
      end)
    !pend_final;
  pend_final := [];
  t.gc_log_forwards <- true;
  Vec.Int.clear t.gc_forward_log;
  Fun.protect
    ~finally:(fun () ->
      t.gc_log_forwards <- false;
      Vec.Int.clear t.gc_forward_log)
    (fun () ->
      while not (Queue.is_empty work) do
        while not (Queue.is_empty work) do
          let e = Queue.pop work in
          let rep = copy t ~target e.rep in
          let tc = forward_address t e.tconc in
          Tconc.enqueue_with t
            ~alloc_pair:(fun a d ->
              let addr = gc_alloc t ~space:Space.Pair ~generation:target 2 in
              store t addr a;
              store t (addr + 1) d;
              Word.pair_ptr addr)
            tc rep;
          stats.guardian_resurrections <- stats.guardian_resurrections + 1;
          (* Latency bookkeeping: the entry becomes retrievable at the
             epoch following this collection. *)
          Telemetry.record_resurrection t.telemetry ~gid:e.gid
            ~epoch:(t.gc_epoch + 1)
        done;
        kleene_sweep t ~target;
        (* Tconcs forwarded by the saves above release their waiters. *)
        Vec.Int.iter t.gc_forward_log ~f:(fun addr ->
            match Hashtbl.find_opt waiters addr with
            | Some r ->
                Hashtbl.remove waiters addr;
                List.iter
                  (fun e ->
                    stats.guardian_pend_checks <- stats.guardian_pend_checks + 1;
                    Queue.add e work)
                  (List.rev !r)
            | None -> ());
        Vec.Int.clear t.gc_forward_log
      done);
  (* Entries still waiting: their guardian itself died. *)
  Hashtbl.iter
    (fun _ r ->
      List.iter
        (fun e ->
          stats.guardian_entries_dropped <- stats.guardian_entries_dropped + 1;
          Telemetry.record_drop t.telemetry ~gid:e.gid)
        !r)
    waiters;
  (* Third block: entries whose object is still accessible survive into the
     target generation's protected list — provided their guardian does. *)
  let entry_generation =
    (* D1 ablation: a non-generation-friendly collector keeps every entry
       on generation 0's protected list, forcing every minor collection to
       visit all of them. *)
    if (Heap.config t).Config.generation_friendly_guardians then target else 0
  in
  List.iter
    (fun e ->
      if forwarded t e.tconc then begin
        protected_add_gen t ~generation:entry_generation ~gid:e.gid
          ~obj:(forward_address t e.obj)
          ~rep:(forward_address t e.rep)
          ~tconc:(forward_address t e.tconc);
        stats.guardian_entries_promoted <- stats.guardian_entries_promoted + 1
      end
      else begin
        stats.guardian_entries_dropped <- stats.guardian_entries_dropped + 1;
        Telemetry.record_drop t.telemetry ~gid:e.gid
      end)
    !pend_hold

(* ------------------------------------------------------------------ *)
(* Weak pass                                                           *)

(* Mend or break the car of the weak pair at [addr] (car slot).  Runs after
   the guardian pass, so guarded-saved objects have forwarding addresses and
   their weak pointers survive. *)
let process_weak_car t addr =
  let stats = (Heap.stats t).last in
  stats.weak_pairs_scanned <- stats.weak_pairs_scanned + 1;
  let w = load t addr in
  if Word.is_pointer w then begin
    let wsi = info_of_word t w in
    if wsi.condemned then begin
      if Word.equal (load t (Word.addr w)) Word.forward_marker then begin
        let w' = load t (Word.addr w + 1) in
        store t addr w';
        note_ref t ~addr ~gen:(ref_gen t w')
      end
      else begin
        store t addr Word.false_;
        stats.weak_pointers_broken <- stats.weak_pointers_broken + 1
      end
    end
    else note_ref t ~addr ~gen:(ref_gen t w)
  end

let weak_pass t ~dirty_weak_cards =
  let scan_range seg ~from ~upto =
    let off = ref from in
    while !off < upto do
      process_weak_car t (addr_of ~seg ~off:!off);
      off := !off + 2
    done;
    refresh_remembered t seg
  in
  (* Weak pairs copied during this collection... *)
  Vec.Int.iter t.gc_new_segs ~f:(fun seg ->
      let si = info t seg in
      if si.live && si.space = Space.Weak then scan_range seg ~from:0 ~upto:si.used);
  (* ...and weak pairs in the dirty cards of older weak segments: their
     cdrs were swept by the dirty scan, which reset the card bytes; the
     cars are mended or broken here and their targets re-noted. *)
  List.iter (fun (seg, from, upto) -> scan_range seg ~from ~upto) dirty_weak_cards

(* ------------------------------------------------------------------ *)
(* Dirty (remembered-set) scan                                         *)

(* Sweep one dirty card of a remembered segment: the words of [seg] in
   [from, upto) — clamped to the slots that actually belong to the card —
   as strong references.  Typed-space objects can straddle card
   boundaries, so the scan starts from the object covering the card's
   first word (the crossing map) and clamps the traced fields to the
   card. *)
let sweep_card t ~target seg ~from ~upto =
  let si = info t seg in
  let stats = (Heap.stats t).last in
  let fwd addr =
    let w = copy t ~target (load t addr) in
    store t addr w;
    note_ref t ~addr ~gen:(ref_gen t w)
  in
  (match si.space with
  | Space.Pair ->
      (* Cards are >= 8 words and a power of two: cells never straddle. *)
      let off = ref from in
      while !off < upto do
        fwd (addr_of ~seg ~off:!off);
        fwd (addr_of ~seg ~off:(!off + 1));
        off := !off + 2
      done
  | Space.Weak ->
      let off = ref from in
      while !off < upto do
        (* car is weak: left alone here, handled by the weak pass. *)
        fwd (addr_of ~seg ~off:(!off + 1));
        off := !off + 2
      done
  | Space.Ephemeron ->
      let off = ref from in
      while !off < upto do
        Vec.Int.push t.gc_ephemerons (addr_of ~seg ~off:!off);
        off := !off + 2
      done
  | Space.Typed ->
      let off = ref (card_object_start t ~seg ~card:(card_of_off t from)) in
      while !off < upto do
        let hdr = load t (addr_of ~seg ~off:!off) in
        let len = Obj.header_len hdr in
        let lo = max (!off + 1) from in
        let hi = min (!off + len) (upto - 1) in
        for i = lo to hi do
          fwd (addr_of ~seg ~off:i)
        done;
        off := !off + 1 + len
      done
  | Space.Data -> ());
  stats.card_words_swept <- stats.card_words_swept + (upto - from);
  stats.words_swept <- stats.words_swept + (upto - from)

(* Sweep the remembered segments of generations older than [g] as roots —
   card-granularly: only cards recorded as possibly reaching into the
   condemned generations are visited; each is reset and its references
   re-noted from scratch by the sweep.  Returns the dirty weak-space card
   ranges, whose car fields still need the weak pass.  Rebuilds the dirty
   list. *)
let dirty_scan t ~g ~target =
  let stats = (Heap.stats t).last in
  let old_dirty = Vec.Int.to_list t.dirty in
  Vec.Int.clear t.dirty;
  let weak_cards = ref [] in
  let cw = 1 lsl t.card_shift in
  List.iter
    (fun seg ->
      let si = info t seg in
      si.on_dirty_list <- false;
      if si.live && not si.condemned then begin
        if si.min_ref_gen <= g then begin
          stats.dirty_segments_scanned <- stats.dirty_segments_scanned + 1;
          stats.dirty_candidate_words <- stats.dirty_candidate_words + si.used;
          let ncards = cards_in_use t seg in
          for c = 0 to ncards - 1 do
            if Bytes.get_uint8 si.cards c <= g then begin
              stats.cards_scanned <- stats.cards_scanned + 1;
              Bytes.set_uint8 si.cards c card_clean;
              let from = c * cw in
              let upto = min si.used (from + cw) in
              sweep_card t ~target seg ~from ~upto;
              if si.space = Space.Weak then
                weak_cards := (seg, from, upto) :: !weak_cards
            end
          done;
          (* Cards dirty only towards uncollected generations survive the
             reset above and keep the segment remembered. *)
          refresh_remembered t seg
        end
        else
          (* Still dirty, but only with respect to generations not being
             collected: keep it remembered, no scanning needed — this is the
             "no additional overhead for older objects" property. *)
          push_dirty t seg
      end)
    old_dirty;
  !weak_cards

(* ------------------------------------------------------------------ *)
(* Root scan                                                           *)

let root_scan t ~target =
  let stats = (Heap.stats t).last in
  iter_scanners t ~f:(fun scan ->
      scan (fun w ->
          stats.root_words <- stats.root_words + 1;
          copy t ~target w))

let weak_root_scan t =
  let lookup w =
    if not (Word.is_pointer w) then Some w
    else begin
      let si = info_of_word t w in
      if not si.condemned then Some w
      else if Word.equal (load t (Word.addr w)) Word.forward_marker then
        Some (load t (Word.addr w + 1))
      else None
    end
  in
  iter_weak_scanners t ~f:(fun scan -> scan lookup)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let collect ?weak_pass_first t ~gen:g =
  if t.in_collection then invalid_arg "Collector.collect: already collecting";
  let cfg = Heap.config t in
  if g < 0 || g > cfg.max_generation then invalid_arg "Collector.collect: bad generation";
  let t0 = Unix_time.now_ns () in
  t.in_collection <- true;
  Stats.begin_collection (Heap.stats t);
  let tel = t.telemetry in
  let stats = (Heap.stats t).last in
  let target = cfg.promote ~gen:g ~max_generation:cfg.max_generation in
  Telemetry.collection_begin tel
    ~ordinal:((Heap.stats t).total.Stats.collections + 1)
    ~generation:g ~target;
  (* Each phase reports the delta of its work counter, so the attribution
     is exact even for counters several phases bump (e.g. words_swept). *)
  let phase ph work_counter body =
    let before = work_counter () in
    Telemetry.phase_begin tel ph;
    let r = body () in
    Telemetry.phase_end tel ph ~work:(work_counter () - before);
    r
  in
  Vec.Int.clear t.gc_new_segs;
  Vec.Int.clear t.gc_ephemerons;
  (* Condemn from-space: all segments of generations 0..g. *)
  let condemned = Vec.Int.create () in
  for i = 0 to g do
    Vec.Int.iter (live_segments_of_gen t i) ~f:(fun seg ->
        (info t seg).condemned <- true;
        Vec.Int.push condemned seg)
  done;
  (* Only segments acquired during this collection are Cheney-swept (fresh
     segments start with scan = 0); pre-existing target segments keep their
     contents and are reached, if at all, through the remembered set. *)
  reset_cursors t.gc_cursors;
  (* Roots, remembered set, transitive copy. *)
  phase Telemetry.Root_scan
    (fun () -> stats.root_words)
    (fun () -> root_scan t ~target);
  let dirty_weak_cards =
    phase Telemetry.Dirty_scan
      (fun () -> stats.card_words_swept)
      (fun () -> dirty_scan t ~g ~target)
  in
  phase Telemetry.Cheney_copy
    (fun () -> stats.words_swept)
    (fun () -> kleene_sweep t ~target);
  let guardian_phase () =
    phase Telemetry.Guardian_pass
      (fun () -> stats.protected_entries_visited)
      (fun () -> guardian_pass t ~g ~target)
  in
  let ephemeron_phase () =
    phase Telemetry.Ephemeron_fixpoint
      (fun () -> stats.ephemerons_scanned)
      (fun () -> break_ephemerons t)
  in
  let weak_phase () =
    phase Telemetry.Weak_pass
      (fun () -> stats.weak_pairs_scanned)
      (fun () -> weak_pass t ~dirty_weak_cards)
  in
  (* Guardian pass, then weak pass — in that order, so that weak pointers to
     objects saved by guardians survive (paper Section 4).  The switchable
     order exists only to demonstrate the breakage in tests (DESIGN.md D2). *)
  (match weak_pass_first with
  | Some true ->
      weak_phase ();
      guardian_phase ();
      ephemeron_phase ()
  | _ ->
      guardian_phase ();
      ephemeron_phase ();
      weak_phase ());
  phase Telemetry.Segment_reclaim
    (fun () -> stats.segments_freed)
    (fun () ->
      (* Baseline support: weak scanners observe forwarding before from-space
         is reclaimed. *)
      weak_root_scan t;
      (* Remember any to-space segment left pointing at a younger generation
         (possible under non-default promotion policies). *)
      Vec.Int.iter t.gc_new_segs ~f:(fun seg ->
          if (info t seg).live then push_dirty t seg);
      (* Reclaim from-space. *)
      Vec.Int.iter condemned ~f:(fun seg -> release_segment t seg);
      reset_cursors t.mutator_cursors);
  t.stats.words_allocated_since_gc <- 0;
  t.gc_epoch <- t.gc_epoch + 1;
  t.last_gc_generation <- g;
  Stats.end_collection (Heap.stats t);
  t.in_collection <- false;
  (* The counter snapshot and live-word census are only paid for when
     someone is listening. *)
  if Telemetry.enabled tel then begin
    let s = Heap.stats t in
    Telemetry.collection_end tel ~counters:(Stats.copy stats)
      ~live_words:(live_words t) ~barrier_calls:s.Stats.barrier_calls
      ~barrier_hits:s.Stats.barrier_hits ~cards_dirtied:s.Stats.cards_dirtied ()
  end;
  run_post_gc_hooks t;
  { generation = g; target; duration_ns = Unix_time.now_ns () -. t0 }
