(** Static configuration of a simulated heap instance. *)

type t = {
  segment_words : int;
      (** Standard segment size in words.  The paper's Chez Scheme uses
          4 KiB segments; with 8-byte words that is 512 words, our
          default. *)
  max_generation : int;
      (** Generations are numbered [0 .. max_generation] (0 = youngest). *)
  gen0_trigger_words : int;
      (** A collect request fires once this many words have been allocated
          in generation 0 since the last collection (checked at
          safepoints). *)
  collect_radix : int;
      (** Generation [g] is collected every [collect_radix ** g] collect
          requests. *)
  promote : gen:int -> max_generation:int -> int;
      (** Target generation for a collection of generations [0..gen]. *)
  generation_friendly_guardians : bool;
      (** The paper's design: protected-list entries are promoted to the
          target generation along with their objects.  [false] keeps every
          entry on generation 0's list — the D1 ablation. *)
  card_words : int;
      (** Card size of the remembered set, in words (power of two, >= 8;
          default 512).  A value >= [segment_words] degenerates to one
          card per segment. *)
  max_heap_words : int;
      (** Hard ceiling on allocated words; {!Heap.Out_of_memory} once it
          would be exceeded (default: effectively unlimited). *)
  fail_segment_alloc_at : int;
      (** Fault injection (torture harness): the [n]th mutator segment
          acquisition raises {!Heap.Out_of_memory}, once; 0 disables (the
          default).  Collections are exempt.  See {!Heap.faults}. *)
  corrupt_forward_period : int;
      (** Debug bug (torture harness): every [n]th forwarded pointer is
          deliberately corrupted to an interior address — a seeded defect
          that {!Verify} and the torture oracle must detect; 0 disables
          (the default). *)
  image_verify_on_load : bool;
      (** Run the {!Verify} invariant checker over a heap rebuilt from a
          [gbc-image/1] file before handing it back (default [true]).
          A full O(live) sweep; may be disabled for large trusted images
          on a startup-latency budget — the image CRC still guards
          against corruption. *)
}

val default_promote : gen:int -> max_generation:int -> int
(** The paper's simple strategy: [min (gen + 1) max_generation]. *)

val default : t

val v :
  ?segment_words:int ->
  ?max_generation:int ->
  ?gen0_trigger_words:int ->
  ?collect_radix:int ->
  ?promote:(gen:int -> max_generation:int -> int) ->
  ?generation_friendly_guardians:bool ->
  ?card_words:int ->
  ?max_heap_words:int ->
  ?fail_segment_alloc_at:int ->
  ?corrupt_forward_period:int ->
  ?image_verify_on_load:bool ->
  unit ->
  t
(** Build a configuration, validating the parameters.
    @raise Invalid_argument on nonsensical values. *)
