(** Symbol interning with a weakly-held oblist.

    [intern] returns the same symbol object for the same name while that
    symbol is otherwise reachable; but the table itself holds its symbols
    weakly, so symbols no longer referenced anywhere else are reclaimed and
    their entries dropped — the Friedman–Wise oblist-entry elimination the
    paper mentions Chez Scheme implements. *)

type entry = { mutable word : Word.t }

type t = {
  heap : Heap.t;
  table : (string, entry) Hashtbl.t;
  scanner_id : int;
}

let create heap =
  let table = Hashtbl.create 64 in
  let scanner_id =
    Heap.add_weak_scanner heap (fun lookup ->
        let dead = ref [] in
        Hashtbl.iter
          (fun name e ->
            match lookup e.word with
            | Some w -> e.word <- w
            | None -> dead := name :: !dead)
          table;
        List.iter (Hashtbl.remove table) !dead)
  in
  { heap; table; scanner_id }

let dispose t = Heap.remove_weak_scanner t.heap t.scanner_id

(** Intern [name]: return the existing symbol or create one. *)
let intern t name =
  match Hashtbl.find_opt t.table name with
  | Some e -> e.word
  | None ->
      let s = Obj.string_of_ocaml t.heap name in
      let sym = Obj.make_symbol t.heap ~name:s in
      Hashtbl.add t.table name { word = sym };
      sym

let mem t name = Hashtbl.mem t.table name
let count t = Hashtbl.length t.table

(** All interned symbols as [(name, word)], sorted by name so the listing
    is canonical (hash-table iteration order is not). *)
let entries t =
  Hashtbl.fold (fun name e acc -> (name, e.word) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Adopt [(name, word)] pairs restored from a heap image.  [word] must be
    the symbol's address in [t]'s own heap (i.e. already relocated).
    Existing entries for the same name are overwritten — restore into a
    fresh machine before interning anything. *)
let restore t pairs =
  List.iter (fun (name, word) -> Hashtbl.replace t.table name { word }) pairs
