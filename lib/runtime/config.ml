(** Static configuration of a simulated heap instance. *)

type t = {
  segment_words : int;
      (** Standard segment size in words.  The paper's Chez Scheme uses 4 KiB
          segments; with 8-byte words that is 512 words, our default. *)
  max_generation : int;
      (** Generations are numbered [0 .. max_generation] (0 = youngest). *)
  gen0_trigger_words : int;
      (** A collect request fires once this many words have been allocated
          in generation 0 since the last collection (checked at
          safepoints). *)
  collect_radix : int;
      (** Generation [g] is collected every [collect_radix ** g] collect
          requests: generation 0 every time, older generations
          exponentially less often — the paper's promotion schedule. *)
  promote : gen:int -> max_generation:int -> int;
      (** Target generation for a collection of generations [0..gen].  The
          paper's simple strategy is [min (gen + 1) max_generation]. *)
  generation_friendly_guardians : bool;
      (** The paper's design: protected-list entries are promoted to the
          target generation along with their objects, so collections only
          visit entries of the generations actually being collected.
          [false] keeps every entry on generation 0's list — the ablation
          measured by bench E1b (DESIGN.md D1). *)
  card_words : int;
      (** Card size of the remembered set, in words (power of two, >= 8).
          The write barrier records old-to-young stores per card, and the
          dirty scan visits only dirty cards of remembered segments.  A
          value >= [segment_words] degenerates to one card per segment,
          i.e. the segment-granular remembered set. *)
  max_heap_words : int;
      (** Hard ceiling on allocated words across all segments;
          {!Heap.Out_of_memory} is raised once it would be exceeded
          (default: effectively unlimited). *)
  fail_segment_alloc_at : int;
      (** Fault injection (torture harness): the [n]th mutator segment
          acquisition raises {!Heap.Out_of_memory}, once; 0 disables
          (the default).  Collections are exempt.  The armed counter lives
          in {!Heap.faults} and can be re-armed at runtime. *)
  corrupt_forward_period : int;
      (** Debug bug (torture harness): every [n]th forwarded pointer is
          deliberately corrupted to an interior address, so {!Verify} and
          the differential oracle must catch it; 0 disables (the
          default). *)
  image_verify_on_load : bool;
      (** Run the {!Verify} invariant checker over a heap rebuilt from a
          [gbc-image/1] file before handing it back (default [true]).
          The check is a full O(live) sweep; embedders restoring large
          trusted images on a startup-latency budget may turn it off —
          the CRC still guards against corruption either way. *)
}

let default_promote ~gen ~max_generation = min (gen + 1) max_generation

let default =
  {
    segment_words = 512;
    max_generation = 4;
    gen0_trigger_words = 64 * 1024;
    collect_radix = 4;
    promote = default_promote;
    generation_friendly_guardians = true;
    card_words = 512;
    max_heap_words = max_int;
    fail_segment_alloc_at = 0;
    corrupt_forward_period = 0;
    image_verify_on_load = true;
  }

let v ?(segment_words = default.segment_words)
    ?(max_generation = default.max_generation)
    ?(gen0_trigger_words = default.gen0_trigger_words)
    ?(collect_radix = default.collect_radix) ?(promote = default_promote)
    ?(generation_friendly_guardians = true) ?(card_words = default.card_words)
    ?(max_heap_words = max_int) ?(fail_segment_alloc_at = 0)
    ?(corrupt_forward_period = 0) ?(image_verify_on_load = true) () =
  if segment_words < 8 then invalid_arg "Config.v: segment_words too small";
  if max_generation < 0 then invalid_arg "Config.v: negative max_generation";
  if max_generation > 254 then
    (* Card bytes store generations; 255 is reserved for "clean". *)
    invalid_arg "Config.v: max_generation must be <= 254";
  if collect_radix < 2 then invalid_arg "Config.v: collect_radix must be >= 2";
  if card_words < 8 then invalid_arg "Config.v: card_words too small";
  if card_words land (card_words - 1) <> 0 then
    invalid_arg "Config.v: card_words must be a power of two";
  if max_heap_words < segment_words then invalid_arg "Config.v: max_heap_words too small";
  if fail_segment_alloc_at < 0 then
    invalid_arg "Config.v: fail_segment_alloc_at must be >= 0";
  if corrupt_forward_period < 0 then
    invalid_arg "Config.v: corrupt_forward_period must be >= 0";
  {
    segment_words;
    max_generation;
    gen0_trigger_words;
    collect_radix;
    promote;
    generation_friendly_guardians;
    card_words;
    max_heap_words;
    fail_segment_alloc_at;
    corrupt_forward_period;
    image_verify_on_load;
  }
