(** GC telemetry: a structured event stream with pluggable sinks.

    The collector emits typed begin/end events for every phase of a
    collection, each stamped with monotonic wall-clock time
    ({!Unix_time.now_ns}) and the work counter the phase is responsible
    for.  Sinks subscribe to the stream; three are provided here: an
    in-memory ring of per-collection records ({!Ring}, superseding the old
    [Trace] module), a human one-line-per-collection pretty-printer
    ({!Log}), and a Chrome [trace_event]-format JSON writer ({!Chrome})
    that [about://tracing] / Perfetto can open directly.

    The stream is {e zero cost when disabled}: every instrumentation entry
    point checks a single boolean before taking any timestamp or touching
    any sink.  Per-guardian lifecycle metrics (registrations,
    resurrections, poll latency, drops) are plain counter bumps and are
    always on. *)

(** {1 Phases} *)

(** The phases of one collection, in the order the collector runs them
    (the guardian/weak order swaps under the D2 ablation). *)
type phase =
  | Root_scan  (** forwarding the registered roots *)
  | Dirty_scan  (** sweeping the remembered set *)
  | Cheney_copy  (** the first kleene sweep to a fixpoint *)
  | Guardian_pass
      (** the pend-hold / pend-final partition and kleene re-sweeps *)
  | Ephemeron_fixpoint  (** breaking ephemerons with unreachable keys *)
  | Weak_pass  (** mending or breaking weak-pair cars *)
  | Segment_reclaim
      (** weak-scanner notification, dirty-list rebuild, freeing from-space *)
  | Image_save  (** serializing the heap to a [gbc-image/1] byte string *)
  | Image_load
      (** rebuilding a heap from an image: copy, relocate, re-verify *)

val phase_count : int
val all_phases : phase list

val collection_phases : phase list
(** The phases every collection runs, in order — {!all_phases} without
    the image phases, which fire only on explicit checkpoint/restore. *)

val phase_index : phase -> int
val phase_name : phase -> string

(** {1 Events} *)

type event =
  | Collection_begin of {
      ordinal : int;  (** 1-based lifetime collection number *)
      generation : int;  (** oldest generation collected *)
      target : int;
      at_ns : float;
    }
  | Phase_begin of { ordinal : int; phase : phase; at_ns : float }
  | Phase_end of {
      ordinal : int;
      phase : phase;
      at_ns : float;
      duration_ns : float;
      work : int;  (** phase-specific work counter delta *)
    }
  | Collection_end of {
      ordinal : int;
      generation : int;
      target : int;
      at_ns : float;
      duration_ns : float;
      counters : Stats.counters;  (** snapshot of the collection's counters *)
      live_words : int;
      barrier_calls : int;
          (** lifetime write-barrier invocations (session counter) *)
      barrier_hits : int;  (** lifetime old-to-young stores *)
      cards_dirtied : int;  (** lifetime clean-to-dirty card transitions *)
    }

type sink = event -> unit

(** {1 Pause-time histogram} *)

module Histogram : sig
  (** Log2-scaled pause-time histogram: bucket [i] counts durations in
      [\[2{^i}, 2{^i+1}) ns] (bucket 0 also absorbs sub-nanosecond
      durations). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val max_ns : t -> float
  val total_ns : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [0..100]: an upper-bound estimate (the
      top of the bucket holding the p-th percentile, clamped to the
      observed maximum).  0 when empty. *)

  val buckets : t -> (float * float * int) array
  (** All buckets as [(lo, hi, count)], lo inclusive, hi exclusive,
      in increasing order. *)

  val nonempty_buckets : t -> (float * float * int) list
end

(** {1 The telemetry hub} *)

type t

type telemetry = t
(** Alias so submodules below can name the hub type. *)

val create : unit -> t
(** Created disabled: instrumentation entry points are no-ops until
    {!set_enabled}. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val add_sink : t -> sink -> int
(** Returns an id for {!remove_sink}.  Sinks only see events while the
    hub is enabled. *)

val remove_sink : t -> int -> unit

(** {2 Collector-side instrumentation}

    All no-ops while disabled.  One collection is bracketed by
    {!collection_begin} / {!collection_end}; each phase by
    {!phase_begin} / {!phase_end}, strictly nested and non-overlapping. *)

val collection_begin : t -> ordinal:int -> generation:int -> target:int -> unit
val phase_begin : t -> phase -> unit
val phase_end : t -> phase -> work:int -> unit

val collection_end :
  t ->
  counters:Stats.counters ->
  live_words:int ->
  ?barrier_calls:int ->
  ?barrier_hits:int ->
  ?cards_dirtied:int ->
  unit ->
  unit
(** [counters] must be a private snapshot (see {!Stats.copy}): sinks may
    retain it.  The barrier arguments are the session-lifetime
    write-barrier counters at the end of this collection (default 0). *)

(** {2 Accumulated results} *)

val collections_seen : t -> int
val phase_ns_last : t -> phase -> float
val phase_work_last : t -> phase -> int
val phase_ns_total : t -> phase -> float
val phase_work_total : t -> phase -> int

val pause_histogram : t -> Histogram.t
(** Full-collection pause times, accumulated while enabled. *)

(** {1 Per-guardian lifecycle metrics}

    Always on (plain counter bumps).  Guardians are identified by a small
    integer id allocated by {!new_guardian} and stored inside the guardian
    heap object itself, so the id survives copying collections. *)

type guardian_stats = {
  gid : int;
  mutable g_registrations : int;
  mutable g_resurrections : int;  (** entries saved and queued *)
  mutable g_drops : int;  (** entries dropped because the guardian died *)
  mutable g_polls : int;  (** mutator retrieve calls *)
  mutable g_hits : int;  (** polls that returned an object *)
  mutable g_latency_sum : int;
      (** total collections elapsed between each hit's resurrection and
          its retrieval — the finalization-lag metric *)
  mutable g_latency_max : int;
  g_pending_epochs : int Queue.t;
      (** resurrection epochs of queued-but-not-yet-retrieved entries;
          FIFO, mirroring the guardian's tconc *)
}

val new_guardian : t -> int
val guardian_count : t -> int

val guardian_stats : t -> int -> guardian_stats
(** @raise Invalid_argument on an id never returned by {!new_guardian}. *)

val record_registration : t -> gid:int -> unit

val record_resurrection : t -> gid:int -> epoch:int -> unit
(** [epoch] is the heap's gc-epoch {e after} the resurrecting collection,
    so an immediate retrieval reads as latency 0. *)

val record_drop : t -> gid:int -> unit
val record_poll : t -> gid:int -> hit:bool -> epoch:int -> unit

val restore_guardian_count : t -> int -> unit
(** [restore_guardian_count t n] re-creates the guardian-id space of a
    restored heap image: after it, ids [0 .. n-1] resolve in
    {!guardian_stats} (existing ids keep their metrics).  A no-op when
    [n <= guardian_count t]. *)

(** {1 Heap-image I/O counters}

    Always on (plain counter bumps), accumulated by {e every}
    image save/load against this hub.  The wall-clock side of image I/O
    uses the {!Image_save}/{!Image_load} phases and is gated on the
    enable flag like any other phase. *)

type image_counters = {
  saves : int;
  loads : int;
  bytes_written : int;  (** total on-disk bytes produced by saves *)
  bytes_read : int;  (** total image bytes consumed by loads *)
  words_written : int;  (** live heap words serialized *)
  words_read : int;  (** heap words rebuilt by loads *)
}

val record_image_save : t -> bytes:int -> words:int -> unit
val record_image_load : t -> bytes:int -> words:int -> unit
val image_counters : t -> image_counters

(** {1 Sinks} *)

module Ring : sig
  (** Bounded ring of per-collection records (most recent [capacity]). *)

  type record = {
    ordinal : int;
    generation : int;
    target : int;
    duration_ns : float;
    phase_ns : float array;  (** indexed by {!phase_index} *)
    phase_work : int array;
    counters : Stats.counters;
    live_words_after : int;
  }

  type t

  val attach : ?capacity:int -> telemetry -> t
  (** Default capacity 64.  The ring fills only while the hub is
      enabled. *)

  val detach : t -> unit
  val records : t -> record list  (** oldest first *)

  val total_recorded : t -> int
  val pp_record : Format.formatter -> record -> unit
end

module Log : sig
  val attach : telemetry -> Format.formatter -> int
  (** One human-readable line per collection on the given formatter;
      returns the sink id (detach with {!remove_sink}). *)
end

module Chrome : sig
  (** Chrome [trace_event] JSON writer: a top-level array of [B]/[E]
      event objects with microsecond timestamps, suitable for
      [about://tracing] and Perfetto.  Hand-rolled JSON, no
      dependencies. *)

  type t

  val attach : telemetry -> out_channel -> t
  (** Writes the opening bracket immediately; events stream as they
      happen.  Timestamps are relative to the first event seen. *)

  val close : t -> unit
  (** Removes the sink, writes the closing bracket and flushes.  The
      channel itself is left open for the caller to close. *)
end
