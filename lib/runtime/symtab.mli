(** Symbol interning with a weakly-held oblist.

    [intern] returns the same symbol object for the same name while that
    symbol is otherwise reachable; the table itself holds its symbols
    weakly, so unreferenced symbols are reclaimed and their entries
    dropped — the Friedman–Wise oblist-entry elimination the paper mentions
    Chez Scheme implements. *)

type t

val create : Heap.t -> t
val dispose : t -> unit
val intern : t -> string -> Word.t
val mem : t -> string -> bool
val count : t -> int

val entries : t -> (string * Word.t) list
(** All interned symbols as [(name, word)], sorted by name (canonical
    order, for heap-image serialization). *)

val restore : t -> (string * Word.t) list -> unit
(** Adopt [(name, word)] pairs restored from a heap image; [word] must
    already live in this table's heap.  Existing entries for the same
    name are overwritten. *)
