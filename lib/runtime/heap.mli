(** The simulated segmented heap.

    A heap instance owns the store (segments of tagged words), the segment
    information table, per-space allocation cursors, the root registry, the
    per-generation protected lists of guardian registrations, and work
    counters.

    Mutator allocation never runs the collector: collections happen only at
    explicit safepoints ({!Runtime.safepoint}) or explicit
    {!Collector.collect} calls, so OCaml code may hold raw words between
    its own safepoints.  Anything that must survive a collection has to be
    reachable from a root. *)

exception Allocation_forbidden
(** Raised by mutator allocation while a collector-invoked finalization
    thunk runs (the Dickey baseline's restriction). *)

exception Out_of_memory
(** Raised by mutator allocation once [Config.max_heap_words] would be
    exceeded.  Collections are exempt. *)

val stride_bits : int
val max_segment_words : int

type seg_info = {
  mutable space : Space.t;
  mutable generation : int;
  mutable used : int;  (** words allocated so far *)
  mutable size : int;  (** capacity in words *)
  mutable min_ref_gen : int;
      (** youngest generation this segment may hold a pointer into; equal
          to [generation] when clean.  The remembered set. *)
  mutable live : bool;
  mutable condemned : bool;  (** part of from-space of the current GC *)
  mutable scan : int;  (** collector scan cursor (words) *)
  mutable on_dirty_list : bool;
  mutable large : bool;  (** oversized single-object segment *)
  mutable mark_epoch : int;
}

type cursor = { mutable seg : int }

type protected = {
  p_objs : Vec.Int.t;
  p_reps : Vec.Int.t;
  p_tconcs : Vec.Int.t;
  p_gids : Vec.Int.t;
}
(** Parallel vectors: one guardian registration per index.  [rep] is the
    word enqueued when [obj] proves inaccessible (equal to [obj] for plain
    registrations; a distinct agent for the paper's Section 5 interface).
    [gid] is the owning guardian's telemetry id. *)

type t = {
  config : Config.t;
  stats : Stats.t;
  telemetry : Telemetry.t;
  mutable segs : int array array;
  mutable infos : seg_info array;
  mutable nsegs : int;
  mutable free_std : int list;
  mutable free_ids : int list;
  mutator_cursors : cursor array;
  gc_cursors : cursor array;
  gen_segs : Vec.Int.t array;
  gc_new_segs : Vec.Int.t;  (** segments acquired during the current GC *)
  gc_ephemerons : Vec.Int.t;
      (** key-slot addresses of ephemerons discovered but not yet resolved
          during the current GC *)
  dirty : Vec.Int.t;
  mutable epoch_counter : int;
  protected : protected array;  (** per generation *)
  mutable global_cells : int array;
  mutable global_cells_len : int;
  mutable global_free : int list;
  mutable scanners : (int * ((Word.t -> Word.t) -> unit)) list;
  mutable weak_scanners : (int * ((Word.t -> Word.t option) -> unit)) list;
  mutable next_scanner_id : int;
  mutable in_collection : bool;
  mutable alloc_forbidden : bool;
  mutable segment_words_live : int;  (** capacity of all live segments *)
  mutable gc_epoch : int;
  mutable collect_count : int;
  mutable last_gc_generation : int;  (** oldest generation of the last GC *)
  mutable collect_request_handler : (t -> unit) option;
  mutable post_gc_hooks : (int * (t -> unit)) list;
}

val create : ?config:Config.t -> unit -> t
val config : t -> Config.t
val stats : t -> Stats.t

val telemetry : t -> Telemetry.t
(** The heap's telemetry hub (created disabled; see {!Telemetry}). *)

val gc_epoch : t -> int
(** Bumped at the end of every collection; lets caches (e.g. address-hash
    tables) detect that objects may have moved. *)

val max_generation : t -> int

(** {1 Store access} *)

val seg_of_addr : int -> int
val off_of_addr : int -> int
val addr_of : seg:int -> off:int -> int
val load : t -> int -> Word.t
val store : t -> int -> Word.t -> unit
val info : t -> int -> seg_info
val info_of_addr : t -> int -> seg_info
val info_of_word : t -> Word.t -> seg_info

val generation_of_word : t -> Word.t -> int
(** Generation a word lives in; immediates report [max_int]. *)

val space_of_word : t -> Word.t -> Space.t

(** {1 Segments} *)

val acquire_segment : t -> space:Space.t -> generation:int -> min_words:int -> int
val release_segment : t -> int -> unit

val live_segments_of_gen : t -> int -> Vec.Int.t
(** Live segments of a generation, deduplicated and compacted; cost is
    proportional to the generation, not the heap. *)

(** {1 Allocation} *)

val alloc : t -> space:Space.t -> int -> int
(** Mutator allocation: raw words in generation 0, zero-initialized as
    fixnum 0 until the caller fills them.  Never collects.
    @raise Allocation_forbidden inside finalization thunks. *)

val gc_alloc : t -> space:Space.t -> generation:int -> int -> int
(** Collector allocation into the target generation during a collection. *)

val reset_cursors : cursor array -> unit

(** {1 Remembered set} *)

val note_mutation : t -> addr:int -> value:Word.t -> unit
(** Record that [value] was stored at [addr]; remembers the segment if this
    creates an old-to-young pointer.  Called by every pointer-field mutator
    in {!Obj}. *)

(** {1 Roots} *)

val new_cell : t -> Word.t -> int
(** Allocate a global root cell: scanned (and updated) by every
    collection. *)

val read_cell : t -> int -> Word.t
val write_cell : t -> int -> Word.t -> unit
val free_cell : t -> int -> unit

val add_scanner : t -> ((Word.t -> Word.t) -> unit) -> int
(** Register a root scanner: during a collection it is called with the
    forwarding function and must apply it to every root word it owns,
    storing back the results.  Returns an id for {!remove_scanner}. *)

val remove_scanner : t -> int -> unit

val add_weak_scanner : t -> ((Word.t -> Word.t option) -> unit) -> int
(** Register a weak scanner: called after each collection's weak pass with
    a lookup mapping an old word to its new location ([None] if reclaimed).
    Weak scanners do not keep objects alive. *)

val remove_weak_scanner : t -> int -> unit
val iter_scanners : t -> f:(((Word.t -> Word.t) -> unit) -> unit) -> unit
val iter_weak_scanners : t -> f:(((Word.t -> Word.t option) -> unit) -> unit) -> unit

val with_cell : t -> Word.t -> (int -> 'a) -> 'a
(** Scoped temporary root cell. *)

(** {1 Protected lists (guardian registrations)} *)

val protected_add :
  t -> gid:int -> obj:Word.t -> rep:Word.t -> tconc:Word.t -> unit
(** Add an entry to generation 0's protected list, as in the paper.
    [gid] is the registering guardian's telemetry id ({!Guardian.id}). *)

val protected_add_gen :
  t -> generation:int -> gid:int -> obj:Word.t -> rep:Word.t -> tconc:Word.t -> unit

val protected_length : t -> int -> int
val protected_total : t -> int

(** {1 Post-GC hooks} *)

val add_post_gc_hook : t -> (t -> unit) -> int
val remove_post_gc_hook : t -> int -> unit
val run_post_gc_hooks : t -> unit

(** {1 Introspection} *)

val live_words : t -> int
val live_segments : t -> int
