(** The simulated segmented heap.

    A heap instance owns the store (segments of tagged words), the segment
    information table, per-space allocation cursors, the root registry, the
    per-generation protected lists of guardian registrations, and work
    counters.

    Mutator allocation never runs the collector: collections happen only at
    explicit safepoints ({!Runtime.safepoint}) or explicit
    {!Collector.collect} calls, so OCaml code may hold raw words between
    its own safepoints.  Anything that must survive a collection has to be
    reachable from a root. *)

exception Allocation_forbidden
(** Raised by mutator allocation while a collector-invoked finalization
    thunk runs (the Dickey baseline's restriction). *)

exception Out_of_memory
(** Raised by mutator allocation once [Config.max_heap_words] would be
    exceeded.  Collections are exempt. *)

val stride_bits : int
val max_segment_words : int

type seg_info = {
  mutable space : Space.t;
  mutable generation : int;
  mutable used : int;  (** words allocated so far *)
  mutable size : int;  (** capacity in words *)
  mutable min_ref_gen : int;
      (** youngest generation this segment may hold a pointer into; equal
          to [generation] when clean.  The remembered set. *)
  mutable live : bool;
  mutable condemned : bool;  (** part of from-space of the current GC *)
  mutable scan : int;  (** collector scan cursor (words) *)
  mutable on_dirty_list : bool;
  mutable large : bool;  (** oversized single-object segment *)
  mutable mark_epoch : int;
  mutable cards : Bytes.t;
      (** byte-per-card remembered set: card [c] holds the youngest
          generation any slot in card [c] may reference, or {!card_clean}
          when clean.  Invariant:
          [min_ref_gen = min generation (min over card bytes)]. *)
  mutable crossing : int array;
      (** card crossing map: offset of the object covering each card's
          first word (maintained by the allocator). *)
}

type cursor = { mutable seg : int }

type faults = {
  mutable fail_segment_alloc_at : int;
      (** mutator segment acquisitions remaining before a one-shot
          {!Out_of_memory} (counted down per acquisition); 0 = disarmed *)
  mutable corrupt_forward_period : int;
      (** debug bug: corrupt every [n]th forwarded pointer to an interior
          address during collections; 0 = off *)
  mutable forwards_seen : int;
  mutable injected : int;  (** faults actually fired so far *)
}
(** Fault-injection state for the torture harness ({!Gbc_torture}).
    Seeded from {!Config.t}'s [fail_segment_alloc_at] /
    [corrupt_forward_period]; the fields may be re-armed at runtime. *)

type protected = {
  p_objs : Vec.Int.t;
  p_reps : Vec.Int.t;
  p_tconcs : Vec.Int.t;
  p_gids : Vec.Int.t;
}
(** Parallel vectors: one guardian registration per index.  [rep] is the
    word enqueued when [obj] proves inaccessible (equal to [obj] for plain
    registrations; a distinct agent for the paper's Section 5 interface).
    [gid] is the owning guardian's telemetry id. *)

type t = {
  config : Config.t;
  stats : Stats.t;
  telemetry : Telemetry.t;
  card_shift : int;  (** log2 of the effective card size in words *)
  mutable segs : int array array;
  mutable infos : seg_info array;
  mutable nsegs : int;
  mutable free_std : int list;
  mutable free_ids : int list;
  mutator_cursors : cursor array;
  gc_cursors : cursor array;
  gen_segs : Vec.Int.t array;
  gc_new_segs : Vec.Int.t;  (** segments acquired during the current GC *)
  gc_ephemerons : Vec.Int.t;
      (** key-slot addresses of ephemerons discovered but not yet resolved
          during the current GC *)
  gc_forward_log : Vec.Int.t;
      (** from-space addresses of objects forwarded while
          [gc_log_forwards] — the guardian fixpoint's worklist feed *)
  mutable gc_log_forwards : bool;
  dirty : Vec.Int.t;
  mutable epoch_counter : int;
  protected : protected array;  (** per generation *)
  mutable global_cells : int array;
  mutable global_cells_len : int;
  mutable global_free : int list;
  mutable scanners : (int * ((Word.t -> Word.t) -> unit)) list;
  mutable weak_scanners : (int * ((Word.t -> Word.t option) -> unit)) list;
  mutable next_scanner_id : int;
  mutable in_collection : bool;
  mutable alloc_forbidden : bool;
  mutable segment_words_live : int;  (** capacity of all live segments *)
  mutable gc_epoch : int;
  mutable collect_count : int;
  mutable last_gc_generation : int;  (** oldest generation of the last GC *)
  mutable collect_request_handler : (t -> unit) option;
  mutable post_gc_hooks : (int * (t -> unit)) list;
  faults : faults;
}

val create : ?config:Config.t -> unit -> t
val config : t -> Config.t
val stats : t -> Stats.t

val faults : t -> faults
(** The heap's fault-injection state (all zeroes unless armed). *)

val telemetry : t -> Telemetry.t
(** The heap's telemetry hub (created disabled; see {!Telemetry}). *)

val gc_epoch : t -> int
(** Bumped at the end of every collection; lets caches (e.g. address-hash
    tables) detect that objects may have moved. *)

val max_generation : t -> int

(** {1 Store access} *)

val seg_of_addr : int -> int
val off_of_addr : int -> int
val addr_of : seg:int -> off:int -> int
val load : t -> int -> Word.t
val store : t -> int -> Word.t -> unit
val info : t -> int -> seg_info
val info_of_addr : t -> int -> seg_info
val info_of_word : t -> Word.t -> seg_info

val generation_of_word : t -> Word.t -> int
(** Generation a word lives in; immediates report [max_int]. *)

val space_of_word : t -> Word.t -> Space.t

(** {1 Segments} *)

val acquire_segment : t -> space:Space.t -> generation:int -> min_words:int -> int
val release_segment : t -> int -> unit

val live_segments_of_gen : t -> int -> Vec.Int.t
(** Live segments of a generation, deduplicated and compacted in place
    (no allocation); cost is proportional to the generation, not the
    heap.  The result aliases the heap's own per-generation list and is
    valid until the next allocation into that generation. *)

(** {1 Allocation} *)

val alloc : t -> space:Space.t -> int -> int
(** Mutator allocation: raw words in generation 0, zero-initialized as
    fixnum 0 until the caller fills them.  Never collects.
    @raise Allocation_forbidden inside finalization thunks. *)

val gc_alloc : t -> space:Space.t -> generation:int -> int -> int
(** Collector allocation into the target generation during a collection. *)

val reset_cursors : cursor array -> unit

(** {1 Remembered set (card marking)} *)

val note_mutation : t -> addr:int -> value:Word.t -> unit
(** The mutator write barrier: record that [value] was stored at [addr].
    An old-to-young store marks the card covering [addr] and remembers
    the segment; everything else falls out after one or two compares.
    Called by every pointer-field mutator in {!Obj}. *)

val note_ref : t -> addr:int -> gen:int -> unit
(** Collector-side barrier: record that the slot at [addr] references
    generation [gen], marking the covering card and keeping the segment
    summary in sync.  The slot's own write is the caller's. *)

val refresh_remembered : t -> int -> unit
(** Recompute a segment's [min_ref_gen] from its card bytes and put it
    back on the dirty list if some card still reaches into a younger
    generation.  Used after a card-granular scan. *)

val card_clean : int
(** The card byte meaning "no younger-generation references" (255). *)

val card_shift : t -> int
val card_words : t -> int
(** Effective card size in words: the next power of two >=
    [Config.card_words], capped at {!max_segment_words}. *)

val card_of_off : t -> int -> int
(** Card index covering a word offset. *)

val cards_in_use : t -> int -> int
(** Number of cards covering a segment's used words. *)

val card_min_gen : t -> seg:int -> card:int -> int
(** The card byte: youngest generation the card may reference, or
    {!card_clean}. *)

val card_object_start : t -> seg:int -> card:int -> int
(** Offset of the object covering the card's first word (crossing map). *)

(** {1 Roots} *)

val new_cell : t -> Word.t -> int
(** Allocate a global root cell: scanned (and updated) by every
    collection. *)

val read_cell : t -> int -> Word.t
val write_cell : t -> int -> Word.t -> unit
val free_cell : t -> int -> unit

val add_scanner : t -> ((Word.t -> Word.t) -> unit) -> int
(** Register a root scanner: during a collection it is called with the
    forwarding function and must apply it to every root word it owns,
    storing back the results.  Returns an id for {!remove_scanner}. *)

val remove_scanner : t -> int -> unit

val add_weak_scanner : t -> ((Word.t -> Word.t option) -> unit) -> int
(** Register a weak scanner: called after each collection's weak pass with
    a lookup mapping an old word to its new location ([None] if reclaimed).
    Weak scanners do not keep objects alive. *)

val remove_weak_scanner : t -> int -> unit
val iter_scanners : t -> f:(((Word.t -> Word.t) -> unit) -> unit) -> unit
val iter_weak_scanners : t -> f:(((Word.t -> Word.t option) -> unit) -> unit) -> unit

val with_cell : t -> Word.t -> (int -> 'a) -> 'a
(** Scoped temporary root cell. *)

(** {1 Protected lists (guardian registrations)} *)

val protected_add :
  t -> gid:int -> obj:Word.t -> rep:Word.t -> tconc:Word.t -> unit
(** Add an entry to generation 0's protected list, as in the paper.
    [gid] is the registering guardian's telemetry id ({!Guardian.id}). *)

val protected_add_gen :
  t -> generation:int -> gid:int -> obj:Word.t -> rep:Word.t -> tconc:Word.t -> unit

val protected_length : t -> int -> int
val protected_total : t -> int

(** {1 Post-GC hooks} *)

val add_post_gc_hook : t -> (t -> unit) -> int
val remove_post_gc_hook : t -> int -> unit
val run_post_gc_hooks : t -> unit

(** {1 Introspection} *)

val live_words : t -> int
val live_segments : t -> int
