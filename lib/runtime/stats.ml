(** Work counters.

    The paper's claims are complexity claims ("overhead proportional to the
    work already done", "proportional to the number of clean-up actions
    actually performed"), so the collector and the guardian machinery count
    the work they do.  [per_gc] counters are reset at the start of each
    collection; [totals] accumulate over the heap's lifetime. *)

type counters = {
  mutable collections : int;
  mutable objects_copied : int;
  mutable words_copied : int;
  mutable words_swept : int;  (** words examined during Cheney scans *)
  mutable root_words : int;
  mutable dirty_segments_scanned : int;
  mutable cards_scanned : int;
      (** dirty cards visited by the card-granular dirty scan *)
  mutable card_words_swept : int;
      (** words examined inside dirty cards — the actual dirty-scan work *)
  mutable dirty_candidate_words : int;
      (** used words of the dirty segments scanned — what a
          segment-granular scan would have examined; the
          [card_words_swept / dirty_candidate_words] ratio is the card
          table's win *)
  mutable guardian_pend_checks : int;
      (** tconc accessibility checks performed by the guardian fixpoint;
          O(1) amortized per pend-final entry with the worklist *)
  mutable protected_entries_visited : int;
      (** entries of protected lists of the collected generations — the
          guardian-specific collector overhead claimed to be proportional
          to work already done *)
  mutable guardian_resurrections : int;
      (** inaccessible registered objects saved and queued *)
  mutable guardian_entries_promoted : int;
  mutable guardian_entries_dropped : int;  (** entries whose guardian died *)
  mutable weak_pairs_scanned : int;
  mutable weak_pointers_broken : int;
  mutable ephemerons_scanned : int;
  mutable ephemerons_broken : int;
  mutable segments_freed : int;
  mutable segments_allocated : int;
}

let zero () =
  {
    collections = 0;
    objects_copied = 0;
    words_copied = 0;
    words_swept = 0;
    root_words = 0;
    dirty_segments_scanned = 0;
    cards_scanned = 0;
    card_words_swept = 0;
    dirty_candidate_words = 0;
    guardian_pend_checks = 0;
    protected_entries_visited = 0;
    guardian_resurrections = 0;
    guardian_entries_promoted = 0;
    guardian_entries_dropped = 0;
    weak_pairs_scanned = 0;
    weak_pointers_broken = 0;
    ephemerons_scanned = 0;
    ephemerons_broken = 0;
    segments_freed = 0;
    segments_allocated = 0;
  }

let copy c = { c with collections = c.collections }

type t = {
  last : counters;  (** counters of the most recent collection *)
  total : counters;  (** lifetime totals *)
  mutable words_allocated : int;  (** mutator allocation, lifetime *)
  mutable words_allocated_since_gc : int;
  mutable guardian_polls : int;  (** mutator guardian invocations *)
  mutable guardian_hits : int;  (** polls that returned an object *)
  mutable registrations : int;
  mutable tconc_enqueues : int;  (** cells appended (collector and mutator) *)
  mutable tconc_dequeues : int;  (** mutator removals that yielded an element *)
  (* Write-barrier counters live on the session, not on [last]: they count
     mutator activity between collections, which [begin_collection] would
     otherwise zero. *)
  mutable barrier_calls : int;  (** {!Heap.note_mutation} invocations *)
  mutable barrier_hits : int;  (** calls that stored an old-to-young pointer *)
  mutable cards_dirtied : int;  (** cards taken from clean to dirty *)
}

let create () =
  {
    last = zero ();
    total = zero ();
    words_allocated = 0;
    words_allocated_since_gc = 0;
    guardian_polls = 0;
    guardian_hits = 0;
    registrations = 0;
    tconc_enqueues = 0;
    tconc_dequeues = 0;
    barrier_calls = 0;
    barrier_hits = 0;
    cards_dirtied = 0;
  }

let begin_collection t =
  let l = t.last in
  l.collections <- 1;
  l.objects_copied <- 0;
  l.words_copied <- 0;
  l.words_swept <- 0;
  l.root_words <- 0;
  l.dirty_segments_scanned <- 0;
  l.cards_scanned <- 0;
  l.card_words_swept <- 0;
  l.dirty_candidate_words <- 0;
  l.guardian_pend_checks <- 0;
  l.protected_entries_visited <- 0;
  l.guardian_resurrections <- 0;
  l.guardian_entries_promoted <- 0;
  l.guardian_entries_dropped <- 0;
  l.weak_pairs_scanned <- 0;
  l.weak_pointers_broken <- 0;
  l.ephemerons_scanned <- 0;
  l.ephemerons_broken <- 0;
  l.segments_freed <- 0;
  l.segments_allocated <- 0

let end_collection t =
  let l = t.last and g = t.total in
  g.collections <- g.collections + l.collections;
  g.objects_copied <- g.objects_copied + l.objects_copied;
  g.words_copied <- g.words_copied + l.words_copied;
  g.words_swept <- g.words_swept + l.words_swept;
  g.root_words <- g.root_words + l.root_words;
  g.dirty_segments_scanned <- g.dirty_segments_scanned + l.dirty_segments_scanned;
  g.cards_scanned <- g.cards_scanned + l.cards_scanned;
  g.card_words_swept <- g.card_words_swept + l.card_words_swept;
  g.dirty_candidate_words <- g.dirty_candidate_words + l.dirty_candidate_words;
  g.guardian_pend_checks <- g.guardian_pend_checks + l.guardian_pend_checks;
  g.protected_entries_visited <-
    g.protected_entries_visited + l.protected_entries_visited;
  g.guardian_resurrections <- g.guardian_resurrections + l.guardian_resurrections;
  g.guardian_entries_promoted <-
    g.guardian_entries_promoted + l.guardian_entries_promoted;
  g.guardian_entries_dropped <-
    g.guardian_entries_dropped + l.guardian_entries_dropped;
  g.weak_pairs_scanned <- g.weak_pairs_scanned + l.weak_pairs_scanned;
  g.weak_pointers_broken <- g.weak_pointers_broken + l.weak_pointers_broken;
  g.ephemerons_scanned <- g.ephemerons_scanned + l.ephemerons_scanned;
  g.ephemerons_broken <- g.ephemerons_broken + l.ephemerons_broken;
  g.segments_freed <- g.segments_freed + l.segments_freed;
  g.segments_allocated <- g.segments_allocated + l.segments_allocated

let pp_counters ppf c =
  Format.fprintf ppf
    "@[<v>collections %d@ objects copied %d@ words copied %d@ words swept %d@ \
     root words %d@ dirty segments %d@ cards scanned %d@ card words swept %d@ \
     dirty candidate words %d@ guardian pend checks %d@ protected entries \
     visited %d@ resurrections %d@ entries promoted %d@ entries dropped %d@ \
     weak pairs scanned %d@ weak pointers broken %d@ ephemerons scanned %d@ \
     ephemerons broken %d@ segments freed %d@ segments allocated %d@]"
    c.collections c.objects_copied c.words_copied c.words_swept c.root_words
    c.dirty_segments_scanned c.cards_scanned c.card_words_swept
    c.dirty_candidate_words c.guardian_pend_checks c.protected_entries_visited
    c.guardian_resurrections c.guardian_entries_promoted
    c.guardian_entries_dropped c.weak_pairs_scanned c.weak_pointers_broken
    c.ephemerons_scanned c.ephemerons_broken c.segments_freed
    c.segments_allocated
