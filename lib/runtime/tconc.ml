(** Tconcs: the queue representation behind guardians (paper Figures 2–4).

    A tconc is a list plus a header pair whose car points at the first cell
    of the list and whose cdr points at the last cell.  The list always ends
    with one spare cell whose fields are don't-care values; the queue is
    empty when the header's car and cdr point at the same cell.

    The protocols are designed so that no critical sections are needed:

    - the {e collector} appends by (1) storing the element into the old last
      cell's car, (2) linking the old last cell's cdr to a fresh cell, and
      (3) {e only then} publishing the new last cell in the header's cdr —
      the mutator cannot observe a half-installed element;
    - the {e mutator} removes from the front by moving the header's car to
      the second cell; it never touches the header's cdr.

    The step-decomposed mutator dequeue ({!Dequeue}) lets tests interleave a
    full (atomic) collector append between any two mutator steps and check
    linearizability — the paper's lock-freedom argument, mechanized. *)

let make h =
  let z = Obj.cons h Word.false_ Word.nil in
  Obj.cons h z z

let is_empty h tc = Word.equal (Obj.car h tc) (Obj.cdr h tc)

(** Number of elements currently in the queue. *)
let length h tc =
  let last = Obj.cdr h tc in
  let rec loop cell n =
    if Word.equal cell last then n else loop (Obj.cdr h cell) (n + 1)
  in
  loop (Obj.car h tc) 0

(** Elements currently in the queue, front first. *)
let to_list h tc =
  let last = Obj.cdr h tc in
  let rec loop cell acc =
    if Word.equal cell last then List.rev acc
    else loop (Obj.cdr h cell) (Obj.car h cell :: acc)
  in
  loop (Obj.car h tc) []

(** Collector-side append (Figure 3).  [alloc_pair] abstracts where the
    fresh last cell comes from: the real collector allocates it in the
    target generation via {!Heap.gc_alloc}; tests and the mutator-side
    variant use ordinary allocation. *)
let enqueue_with h ~alloc_pair tc obj =
  let stats = Heap.stats h in
  stats.Stats.tconc_enqueues <- stats.Stats.tconc_enqueues + 1;
  let old_last = Obj.cdr h tc in
  let new_last = alloc_pair Word.false_ Word.nil in
  Obj.set_car h old_last obj;
  Obj.set_cdr h old_last new_last;
  (* Final update: publish.  Until this store the mutator still sees the old
     last cell as the end marker and ignores the new element. *)
  Obj.set_cdr h tc new_last

(** Step-decomposed collector append, for the interleaving checker.

    The paper designs the protocols so that {e neither} side needs a
    critical section: the mutator-interrupts-collector direction (relevant
    to future incremental collectors, as the paper notes) requires the
    element store and the cell link to happen {e before} the header's cdr is
    published.  [`Published_first] is the broken ordering that publishes the
    header's cdr first; the checker demonstrates it lets a concurrent
    dequeue observe the half-installed cell (DESIGN.md D3). *)
module Enqueue = struct
  type order = [ `Publish_last | `Publish_first ]

  type t = {
    tc : Word.t;
    obj : Word.t;
    order : order;
    mutable old_last : Word.t;
    mutable new_last : Word.t;
    mutable stage : int;
  }

  let start h ~order tc obj =
    (* Reading the old last cell and allocating the fresh one involve no
       store visible to the mutator; they form the preparation stage. *)
    let old_last = Obj.cdr h tc in
    let new_last = Obj.cons h Word.false_ Word.nil in
    { tc; obj; order; old_last; new_last; stage = 0 }

  let total_steps = 3

  let step h t =
    let install_element () = Obj.set_car h t.old_last t.obj in
    let link_cell () = Obj.set_cdr h t.old_last t.new_last in
    let publish () = Obj.set_cdr h t.tc t.new_last in
    let actions =
      match t.order with
      | `Publish_last -> [| install_element; link_cell; publish |]
      | `Publish_first -> [| publish; install_element; link_cell |]
    in
    if t.stage >= total_steps then invalid_arg "Tconc.Enqueue.step: finished";
    actions.(t.stage) ();
    t.stage <- t.stage + 1;
    t.stage >= total_steps
end

(** Mutator-side append using ordinary generation-0 allocation. *)
let mutator_enqueue h tc obj =
  enqueue_with h ~alloc_pair:(fun a d -> Obj.cons h a d) tc obj

(** Mutator-side removal (Figure 4), atomic version. *)
let dequeue h tc =
  if is_empty h tc then None
  else begin
    let stats = Heap.stats h in
    stats.Stats.tconc_dequeues <- stats.Stats.tconc_dequeues + 1;
    let x = Obj.car h tc in
    let v = Obj.car h x in
    Obj.set_car h tc (Obj.cdr h x);
    (* Clear the abandoned cell: it may live in an older generation than the
       values it points at, and keeping the pointers would retain storage
       needlessly (paper, Section 4). *)
    Obj.set_car h x Word.false_;
    Obj.set_cdr h x Word.false_;
    Some v
  end

(* ------------------------------------------------------------------ *)
(* Step-decomposed mutator dequeue for interleaving tests.             *)

module Dequeue = struct
  type t = {
    tc : Word.t;
    mutable stage : int;
    mutable x : Word.t;
    mutable v : Word.t;
  }

  let start tc = { tc; stage = 0; x = Word.false_; v = Word.false_ }

  (** Execute one primitive mutator step.  Returns [`Done r] after the last
      step.  A collector append may be interposed before any step. *)
  let step h t =
    match t.stage with
    | 0 ->
        if is_empty h t.tc then `Done None
        else begin
          t.stage <- 1;
          `More
        end
    | 1 ->
        t.x <- Obj.car h t.tc;
        t.stage <- 2;
        `More
    | 2 ->
        t.v <- Obj.car h t.x;
        t.stage <- 3;
        `More
    | 3 ->
        Obj.set_car h t.tc (Obj.cdr h t.x);
        t.stage <- 4;
        `More
    | 4 ->
        Obj.set_car h t.x Word.false_;
        t.stage <- 5;
        `More
    | 5 ->
        Obj.set_cdr h t.x Word.false_;
        t.stage <- 6;
        `Done (Some t.v)
    | _ -> invalid_arg "Tconc.Dequeue.step: already finished"

  let total_steps = 6
end
