(** Work counters.

    The paper's claims are complexity claims ("overhead proportional to the
    work already done", "proportional to the number of clean-up actions
    actually performed"), so the collector and the guardian machinery count
    the work they do. *)

type counters = {
  mutable collections : int;
  mutable objects_copied : int;
  mutable words_copied : int;
  mutable words_swept : int;  (** words examined during Cheney scans *)
  mutable root_words : int;
  mutable dirty_segments_scanned : int;
  mutable cards_scanned : int;
      (** dirty cards visited by the card-granular dirty scan *)
  mutable card_words_swept : int;
      (** words examined inside dirty cards — the actual dirty-scan work *)
  mutable dirty_candidate_words : int;
      (** used words of the dirty segments scanned — what a
          segment-granular scan would have examined *)
  mutable guardian_pend_checks : int;
      (** tconc accessibility checks performed by the guardian fixpoint *)
  mutable protected_entries_visited : int;
      (** entries of protected lists of the collected generations — the
          guardian-specific collector overhead *)
  mutable guardian_resurrections : int;
      (** inaccessible registered objects saved and queued *)
  mutable guardian_entries_promoted : int;
  mutable guardian_entries_dropped : int;  (** entries whose guardian died *)
  mutable weak_pairs_scanned : int;
  mutable weak_pointers_broken : int;
  mutable ephemerons_scanned : int;
  mutable ephemerons_broken : int;
  mutable segments_freed : int;
  mutable segments_allocated : int;
}

val zero : unit -> counters

val copy : counters -> counters
(** A private snapshot (counters are mutable records). *)

type t = {
  last : counters;  (** counters of the most recent collection *)
  total : counters;  (** lifetime totals *)
  mutable words_allocated : int;
  mutable words_allocated_since_gc : int;
  mutable guardian_polls : int;  (** mutator guardian invocations *)
  mutable guardian_hits : int;  (** polls that returned an object *)
  mutable registrations : int;
  mutable tconc_enqueues : int;  (** cells appended (collector and mutator) *)
  mutable tconc_dequeues : int;  (** mutator removals that yielded an element *)
  mutable barrier_calls : int;
      (** {!Heap.note_mutation} invocations; session-level because they
          count mutator activity between collections *)
  mutable barrier_hits : int;  (** calls that stored an old-to-young pointer *)
  mutable cards_dirtied : int;  (** cards taken from clean to dirty *)
}

val create : unit -> t

val begin_collection : t -> unit
(** Reset [last] at the start of a collection. *)

val end_collection : t -> unit
(** Fold [last] into [total] at the end of a collection. *)

val pp_counters : Format.formatter -> counters -> unit
