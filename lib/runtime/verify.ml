(** Heap invariant verifier: a debugging walk over the whole heap that
    checks structural invariants the collector relies on.  Used by the test
    suites after collections; cheap enough to run in anger when debugging.

    Checked invariants:
    - segment table: live segments have sane sizes, generations and used
      counts; pair/weak segments hold whole two-word cells;
    - object parse: typed/data segments parse as a sequence of well-formed
      headers covering exactly [used] words;
    - pointers: every pointer field points into a live segment, at a valid
      object start, and never at a forwarding marker outside a collection;
    - spaces: weak pairs live only in weak space; headers only in
      typed/data space;
    - remembered set: a pointer from an older into a younger generation is
      covered by the segment's [min_ref_gen] AND by the byte of the card
      holding the pointer slot (card-granular precision);
    - protected lists: entries of generation [i]'s list reference objects
      and tconcs in generations [>= i] (or immediates). *)

type error = { what : string; where : string }

let errf errors what fmt =
  Format.kasprintf (fun where -> errors := { what; where } :: !errors) fmt

(* Valid object-start offsets per segment, per the header/pair layout. *)
let object_starts h seg =
  let si = Heap.info h seg in
  let starts = Hashtbl.create 16 in
  (match si.Heap.space with
  | Space.Pair | Space.Weak | Space.Ephemeron ->
      let off = ref 0 in
      while !off < si.Heap.used do
        Hashtbl.replace starts !off ();
        off := !off + 2
      done
  | Space.Typed | Space.Data ->
      let off = ref 0 in
      while !off < si.Heap.used do
        Hashtbl.replace starts !off ();
        let hdr = Heap.load h (Heap.addr_of ~seg ~off:!off) in
        let len = if Word.is_fixnum hdr then Obj.header_len hdr else -1 in
        if len < 0 then off := si.Heap.used (* malformed; reported elsewhere *)
        else off := !off + 1 + len
      done);
  starts

let verify h =
  let errors = ref [] in
  let starts_cache = Hashtbl.create 16 in
  let starts_of seg =
    match Hashtbl.find_opt starts_cache seg with
    | Some s -> s
    | None ->
        let s = object_starts h seg in
        Hashtbl.add starts_cache seg s;
        s
  in
  let max_gen = Heap.max_generation h in
  let check_pointer ~from_seg ~from_off ~slot w =
    if Word.is_pointer w then begin
      let addr = Word.addr w in
      let seg = Heap.seg_of_addr addr in
      let off = Heap.off_of_addr addr in
      if seg < 0 || seg >= h.Heap.nsegs then
        errf errors "pointer to unknown segment" "%s -> seg %d" slot seg
      else begin
        let ti = Heap.info h seg in
        if not ti.Heap.live then errf errors "pointer into freed segment" "%s" slot
        else if off >= ti.Heap.used then
          errf errors "pointer past used area" "%s -> seg %d off %d used %d" slot seg off
            ti.Heap.used
        else if not (Hashtbl.mem (starts_of seg) off) then
          errf errors "pointer to object interior" "%s -> seg %d off %d" slot seg off
        else begin
          (match (Word.is_pair_ptr w, ti.Heap.space) with
          | true, (Space.Pair | Space.Weak | Space.Ephemeron) -> ()
          | true, _ -> errf errors "pair pointer into non-pair space" "%s" slot
          | false, (Space.Typed | Space.Data) -> ()
          | false, _ -> errf errors "typed pointer into pair space" "%s" slot);
          if Word.equal (Heap.load h addr) Word.forward_marker then
            errf errors "pointer at forwarding marker outside collection" "%s" slot;
          (* Remembered-set invariant, at both granularities. *)
          let fi = Heap.info h from_seg in
          if ti.Heap.generation < fi.Heap.generation then begin
            if ti.Heap.generation < fi.Heap.min_ref_gen then
              errf errors "old-to-young pointer not remembered"
                "%s: seg %d gen %d min_ref %d -> gen %d" slot from_seg fi.Heap.generation
                fi.Heap.min_ref_gen ti.Heap.generation;
            let card = Heap.card_of_off h from_off in
            let cg = Heap.card_min_gen h ~seg:from_seg ~card in
            if ti.Heap.generation < cg then
              errf errors "old-to-young pointer's card not marked"
                "%s: seg %d card %d byte %d -> gen %d" slot from_seg card cg
                ti.Heap.generation
          end
        end
      end
    end
    else if Word.equal w Word.forward_marker then
      errf errors "forwarding marker stored as a value" "%s" slot
  in
  for seg = 0 to h.Heap.nsegs - 1 do
    let si = Heap.info h seg in
    if si.Heap.live then begin
      if si.Heap.generation < 0 || si.Heap.generation > max_gen then
        errf errors "segment generation out of range" "seg %d gen %d" seg si.Heap.generation;
      if si.Heap.used > si.Heap.size then
        errf errors "segment overfull" "seg %d used %d size %d" seg si.Heap.used si.Heap.size;
      if si.Heap.condemned then errf errors "condemned segment outside collection" "seg %d" seg;
      match si.Heap.space with
      | Space.Pair | Space.Weak | Space.Ephemeron ->
          if si.Heap.used mod 2 <> 0 then
            errf errors "odd used count in pair segment" "seg %d used %d" seg si.Heap.used;
          let off = ref 0 in
          while !off < si.Heap.used do
            let addr = Heap.addr_of ~seg ~off:!off in
            (* The car of a weak pair is weak but must still be a valid
               word; broken cars are #f. *)
            check_pointer ~from_seg:seg ~from_off:!off
              ~slot:(Printf.sprintf "seg %d off %d car" seg !off)
              (Heap.load h addr);
            check_pointer ~from_seg:seg ~from_off:(!off + 1)
              ~slot:(Printf.sprintf "seg %d off %d cdr" seg !off)
              (Heap.load h (addr + 1));
            off := !off + 2
          done
      | Space.Typed | Space.Data ->
          let off = ref 0 in
          while !off < si.Heap.used do
            let addr = Heap.addr_of ~seg ~off:!off in
            let hdr = Heap.load h addr in
            if not (Word.is_fixnum hdr) then begin
              errf errors "malformed header" "seg %d off %d" seg !off;
              off := si.Heap.used
            end
            else begin
              let len = Obj.header_len hdr and code = Obj.header_code hdr in
              if !off + 1 + len > si.Heap.used then begin
                errf errors "object overruns segment" "seg %d off %d len %d" seg !off len;
                off := si.Heap.used
              end
              else begin
                if code > Obj.code_pad then
                  errf errors "unknown type code" "seg %d off %d code %d" seg !off code;
                (if si.Heap.space = Space.Typed && code <> Obj.code_pad then
                   for i = 1 to len do
                     check_pointer ~from_seg:seg ~from_off:(!off + i)
                       ~slot:(Printf.sprintf "seg %d off %d field %d" seg !off (i - 1))
                       (Heap.load h (addr + i))
                   done);
                off := !off + 1 + len
              end
            end
          done
    end
  done;
  (* Protected lists. *)
  for gen = 0 to max_gen do
    let p = h.Heap.protected.(gen) in
    for j = 0 to Vec.Int.length p.Heap.p_objs - 1 do
      List.iter
        (fun (what, w) ->
          if Word.is_pointer w then begin
            let ti = Heap.info_of_word h w in
            if not ti.Heap.live then
              errf errors "protected entry into freed segment" "gen %d entry %d %s" gen j what
            else if ti.Heap.generation < gen then
              errf errors "protected entry younger than its list"
                "gen %d entry %d %s (obj gen %d)" gen j what ti.Heap.generation
          end)
        [
          ("obj", Vec.Int.get p.Heap.p_objs j);
          ("rep", Vec.Int.get p.Heap.p_reps j);
          ("tconc", Vec.Int.get p.Heap.p_tconcs j);
        ]
    done
  done;
  List.rev !errors

(** Run {!verify} and raise on any violation (test helper). *)
let check_exn h =
  match verify h with
  | [] -> ()
  | errs ->
      let msg =
        String.concat "; "
          (List.map (fun e -> Printf.sprintf "%s (%s)" e.what e.where) errs)
      in
      failwith ("heap verification failed: " ^ msg)
