(** Versioned heap images: checkpoint/restore for the whole runtime.

    The [gbc-image/1] format is a CRC-checked binary snapshot of one
    {!Heap.t}: every live segment (contents verbatim, pointers relocated
    to a canonical image addressing), the segment table, the mutator
    allocation cursors, the global root cells, the per-generation
    guardian protected lists, plus caller-supplied named sections — the
    symbol table of a Scheme system, compiled code, whatever rides along.
    Loading rebuilds a {e fresh} heap in two passes (copy, then pointer
    fix-up through an image-segment → new-segment table), replays the
    card crossing map, reconstructs the remembered set exactly, and
    re-runs the {!Verify} invariant checker before handing the heap back
    (see [Config.image_verify_on_load]).

    {2 What round-trips}

    Everything that lives {e in} the heap survives bit-for-bit: pairs,
    typed objects, weak pairs and ephemerons (their targets relocated
    like any other slot), guardian objects with their tconc queues
    mid-drain (queue order is plain pair structure), the protected
    lists, generation assignment, and the collection schedule state
    ([collect_count], [gc_epoch], allocation-trigger progress).  Host
    state — OCaml closures such as root scanners, weak scanners, wills'
    finalization procedures, the collect-request handler, open port file
    descriptors — is the embedder's to re-establish after a load (see
    doc/EMBEDDING.md).

    {2 Canonical form}

    A save is a pure function of heap contents: live segments are
    renumbered [0..n-1] in ascending id order and every pointer is
    rewritten into that numbering, so two heaps with equal contents
    produce equal bytes.  A load acquires the segments of a fresh heap
    in image order — ids [0..n-1] again — so save → load → save is
    byte-identical, which CI and the torture harness's [checkpoint] op
    both assert. *)

open Gbc_runtime

exception Error of string
(** Every failure of {!save_string}/{!load_string} and the file variants:
    bad magic, unsupported version, truncation, CRC mismatch,
    inconsistent tables, config mismatch, post-load verification.  The
    message is a complete one-line diagnostic prefixed ["gbc-image:"].
    File I/O itself raises [Sys_error] as usual. *)

type extra = {
  xwords : Word.t array;
      (** heap words; relocated by the writer and the reader like any
          heap slot, so they come back pointing into the restored heap *)
  xbytes : string;  (** opaque payload, stored verbatim *)
}
(** A named section a client layers on top of the heap image (the Scheme
    machine stores its symbol-interning table, compiled code and literal
    pool this way). *)

type loaded = {
  heap : Heap.t;  (** the rebuilt heap, verified when configured to *)
  symbols : (string * Word.t) list;
      (** the symbol section, words relocated into [heap] *)
  extras : (string * extra) list;
      (** named sections in image order, [xwords] relocated into [heap] *)
  image_bytes : int;  (** size of the image consumed *)
  restored_words : int;  (** live heap words rebuilt *)
  restored_segments : int;
}

val save_string :
  ?symbols:(string * Word.t) list ->
  ?extras:(string * extra) list ->
  Heap.t ->
  string
(** Serialize the heap (plus the symbol section, sorted by name, and the
    named extras in caller order) to [gbc-image/1] bytes.  Times itself
    under the {!Telemetry.Image_save} phase and bumps the image
    counters.
    @raise Error when called during a collection or from a finalization
    thunk, or if a root/slot points into a dead segment. *)

val load_string : ?config:Config.t -> string -> loaded
(** Rebuild a fresh heap from image bytes.  [config] must agree with the
    image on [segment_words] and [max_generation]; when omitted, a
    default configuration with the image's geometry is used.  The
    loader's own segment acquisitions are exempt from fault injection.
    Times itself under {!Telemetry.Image_load} (on the new heap's hub)
    and bumps the image counters.
    @raise Error on any malformed, truncated, corrupt or incompatible
    image, and on a post-load {!Verify} failure. *)

val save_image :
  ?symbols:(string * Word.t) list ->
  ?extras:(string * extra) list ->
  Heap.t ->
  string ->
  unit
(** [save_image h path]: {!save_string} written atomically-enough
    (single [output_string]) to [path]. *)

val load_image : ?config:Config.t -> string -> loaded
(** [load_image path]: read [path] and {!load_string} it. *)

(** {2 Format constants} (exposed for tests) *)

val magic : string  (** ["GBCIMG01"], 8 bytes *)

val format_version : int  (** 1 *)

val crc32 : string -> pos:int -> len:int -> int
(** The IEEE 802.3 CRC-32 (polynomial 0xEDB88320) the trailer carries. *)
