(** [gbc-image/1]: versioned, CRC-checked heap images.

    See the interface for the contract.  Layout (all integers
    little-endian; heap words as 64-bit two's complement):

    {v
      "GBCIMG01"              8-byte magic
      u32  format version     (1)
      u64  payload length
      payload                 (sections below)
      u32  CRC-32 of payload  (IEEE 802.3, poly 0xEDB88320)
    v}

    Payload sections, in order:

    + geometry and schedule scalars: [stride_bits], [segment_words],
      [max_generation], [card_words], then [gc_epoch], [collect_count],
      [last_gc_generation], [words_allocated_since_gc] (i64) and the
      guardian-id count (u32);
    + the segment table: per live segment, space (u8), generation (u32),
      used (u32), size (u32), large flag (u8) — segments renumbered
      [0..n-1] in ascending id order (the {e image numbering});
    + segment contents: [used] words each, pointers rewritten into the
      image numbering (Data-space words are copied raw: string bodies and
      flonum bit patterns must not be mistaken for pointers);
    + the per-space mutator cursors (i64 image index, -1 for none);
    + the global root cells (count, words, then the free list in order);
    + the per-generation protected lists (obj/rep/tconc words + u32 gid);
    + the symbol section (count, then name + word, sorted by name);
    + named extras (count, then name + word array + opaque bytes).

    Cards, the crossing map and the dirty list are {e not} stored: the
    loader replays the allocator's crossing-map maintenance per object
    and re-derives the remembered set exactly with {!Heap.note_ref} over
    every pointer slot — the rebuilt cards are the precise minimum, which
    {!Verify}'s remembered-set invariant accepts (stale-dirty cards in
    the saved heap were a scanning overapproximation, never roots). *)

open Gbc_runtime

exception Error of string

type extra = { xwords : Word.t array; xbytes : string }

type loaded = {
  heap : Heap.t;
  symbols : (string * Word.t) list;
  extras : (string * extra) list;
  image_bytes : int;
  restored_words : int;
  restored_segments : int;
}

let magic = "GBCIMG01"
let format_version = 1

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s ~pos ~len =
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := tbl.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Little-endian primitives                                            *)

let u8 b v = Buffer.add_uint8 b v
let u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let i64 b v = Buffer.add_int64_le b (Int64.of_int v)

let str b s =
  u32 b (String.length s);
  Buffer.add_string b s

type rd = { buf : string; mutable pos : int; limit : int }

let need r n =
  if n < 0 || r.pos + n > r.limit then
    raise (Error "gbc-image: truncated image payload")

let ru8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let ru32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.buf r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let ri64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let rstr r =
  let n = ru32 r in
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let save_string ?(symbols = []) ?(extras = []) (h : Heap.t) =
  if h.Heap.in_collection then
    raise (Error "gbc-image: cannot save during a collection");
  if h.Heap.alloc_forbidden then
    raise (Error "gbc-image: cannot save from inside a finalization thunk");
  let tel = Heap.telemetry h in
  Telemetry.phase_begin tel Telemetry.Image_save;
  let cfg = Heap.config h in
  let nsegs = h.Heap.nsegs in
  (* Canonical image numbering: live segments 0..n-1 in ascending id
     order.  A freshly loaded heap has exactly ids 0..n-1 live, so
     save -> load -> save reproduces identical bytes. *)
  let imap = Array.make (max 1 nsegs) (-1) in
  let nlive = ref 0 in
  for seg = 0 to nsegs - 1 do
    if h.Heap.infos.(seg).Heap.live then begin
      imap.(seg) <- !nlive;
      incr nlive
    end
  done;
  let live = Array.make (max 1 !nlive) 0 in
  for seg = 0 to nsegs - 1 do
    if imap.(seg) >= 0 then live.(imap.(seg)) <- seg
  done;
  let reloc w =
    if not (Word.is_pointer w) then w
    else begin
      let a = Word.addr w in
      let seg = Heap.seg_of_addr a in
      if seg < 0 || seg >= nsegs || imap.(seg) < 0 then
        raise (Error "gbc-image: save: pointer into a dead segment");
      let off = Heap.off_of_addr a in
      if off >= h.Heap.infos.(seg).Heap.used then
        raise (Error "gbc-image: save: pointer past a segment's used words");
      Word.with_addr w (Heap.addr_of ~seg:imap.(seg) ~off)
    end
  in
  let b = Buffer.create 65536 in
  u32 b Heap.stride_bits;
  u32 b cfg.Config.segment_words;
  u32 b cfg.Config.max_generation;
  u32 b cfg.Config.card_words;
  i64 b h.Heap.gc_epoch;
  i64 b h.Heap.collect_count;
  i64 b h.Heap.last_gc_generation;
  i64 b (Heap.stats h).Stats.words_allocated_since_gc;
  u32 b (Telemetry.guardian_count tel);
  u32 b !nlive;
  for i = 0 to !nlive - 1 do
    let si = h.Heap.infos.(live.(i)) in
    u8 b (Space.to_index si.Heap.space);
    u32 b si.Heap.generation;
    u32 b si.Heap.used;
    u32 b si.Heap.size;
    u8 b (if si.Heap.large then 1 else 0)
  done;
  let total_words = ref 0 in
  for i = 0 to !nlive - 1 do
    let seg = live.(i) in
    let si = h.Heap.infos.(seg) in
    let arr = h.Heap.segs.(seg) in
    if si.Heap.space = Space.Data then
      (* No pointers by construction, and raw payloads (flonum bit
         patterns) may alias pointer tags: copy verbatim. *)
      for off = 0 to si.Heap.used - 1 do
        i64 b arr.(off)
      done
    else
      for off = 0 to si.Heap.used - 1 do
        i64 b (reloc arr.(off))
      done;
    total_words := !total_words + si.Heap.used
  done;
  for k = 0 to Space.count - 1 do
    let cur = h.Heap.mutator_cursors.(k).Heap.seg in
    i64 b (if cur >= 0 && imap.(cur) >= 0 then imap.(cur) else -1)
  done;
  u32 b h.Heap.global_cells_len;
  for i = 0 to h.Heap.global_cells_len - 1 do
    i64 b (reloc h.Heap.global_cells.(i))
  done;
  u32 b (List.length h.Heap.global_free);
  List.iter (fun i -> u32 b i) h.Heap.global_free;
  for g = 0 to cfg.Config.max_generation do
    let p = h.Heap.protected.(g) in
    let n = Vec.Int.length p.Heap.p_objs in
    u32 b n;
    for i = 0 to n - 1 do
      i64 b (reloc (Vec.Int.get p.Heap.p_objs i));
      i64 b (reloc (Vec.Int.get p.Heap.p_reps i));
      i64 b (reloc (Vec.Int.get p.Heap.p_tconcs i));
      u32 b (Vec.Int.get p.Heap.p_gids i)
    done
  done;
  let symbols =
    List.sort (fun (a, _) (b, _) -> String.compare a b) symbols
  in
  u32 b (List.length symbols);
  List.iter
    (fun (name, w) ->
      str b name;
      i64 b (reloc w))
    symbols;
  u32 b (List.length extras);
  List.iter
    (fun (name, x) ->
      str b name;
      u32 b (Array.length x.xwords);
      Array.iter (fun w -> i64 b (reloc w)) x.xwords;
      str b x.xbytes)
    extras;
  let payload = Buffer.contents b in
  let out = Buffer.create (String.length payload + 32) in
  Buffer.add_string out magic;
  u32 out format_version;
  Buffer.add_int64_le out (Int64.of_int (String.length payload));
  Buffer.add_string out payload;
  u32 out (crc32 payload ~pos:0 ~len:(String.length payload));
  let s = Buffer.contents out in
  Telemetry.phase_end tel Telemetry.Image_save ~work:!total_words;
  Telemetry.record_image_save tel ~bytes:(String.length s) ~words:!total_words;
  s

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)

let load_string ?config s =
  let total = String.length s in
  (* magic + version + payload length + CRC is the minimum frame. *)
  if total < 24 then raise (Error "gbc-image: truncated image");
  if not (String.equal (String.sub s 0 8) magic) then
    raise (Error "gbc-image: not a heap image (bad magic)");
  let ver = Int32.to_int (String.get_int32_le s 8) land 0xFFFFFFFF in
  if ver <> format_version then
    raise
      (Error
         (Printf.sprintf
            "gbc-image: unsupported image version %d (this build reads \
             version %d)"
            ver format_version));
  let plen = Int64.to_int (String.get_int64_le s 12) in
  if plen < 0 || total <> 24 + plen then
    raise (Error "gbc-image: truncated image");
  let stored = Int32.to_int (String.get_int32_le s (20 + plen)) land 0xFFFFFFFF in
  if crc32 s ~pos:20 ~len:plen <> stored then
    raise (Error "gbc-image: CRC mismatch (corrupt image)");
  let r = { buf = s; pos = 20; limit = 20 + plen } in
  let sb = ru32 r in
  if sb <> Heap.stride_bits then
    raise
      (Error
         (Printf.sprintf
            "gbc-image: image stride_bits %d does not match this build (%d)"
            sb Heap.stride_bits));
  let segment_words = ru32 r in
  let max_generation = ru32 r in
  let card_words = ru32 r in
  let gc_epoch = ri64 r in
  let collect_count = ri64 r in
  let last_gc_generation = ri64 r in
  let words_since_gc = ri64 r in
  let nguardians = ru32 r in
  let config =
    match config with
    | Some c ->
        if
          c.Config.segment_words <> segment_words
          || c.Config.max_generation <> max_generation
        then
          raise
            (Error
               (Printf.sprintf
                  "gbc-image: image geometry (segment_words %d, \
                   max_generation %d) does not match the supplied config \
                   (%d, %d)"
                  segment_words max_generation c.Config.segment_words
                  c.Config.max_generation));
        c
    | None -> (
        try Config.v ~segment_words ~max_generation ~card_words ()
        with Invalid_argument m ->
          raise (Error ("gbc-image: bad image geometry: " ^ m)))
  in
  let h = Heap.create ~config () in
  let tel = Heap.telemetry h in
  let was_on = Telemetry.enabled tel in
  Telemetry.set_enabled tel true;
  Telemetry.phase_begin tel Telemetry.Image_load;
  (* The loader's own segment acquisitions are exempt from fault
     injection; the config's seed is re-armed below, once the heap is
     whole. *)
  (Heap.faults h).Heap.fail_segment_alloc_at <- 0;
  let nsegs = ru32 r in
  let spaces = Array.make (max 1 nsegs) Space.Pair in
  let gens = Array.make (max 1 nsegs) 0 in
  let useds = Array.make (max 1 nsegs) 0 in
  let sizes = Array.make (max 1 nsegs) 0 in
  let larges = Array.make (max 1 nsegs) false in
  for i = 0 to nsegs - 1 do
    let sp = ru8 r in
    if sp >= Space.count then
      raise (Error "gbc-image: bad space in the segment table");
    spaces.(i) <- Space.of_index sp;
    let g = ru32 r in
    if g > max_generation then
      raise (Error "gbc-image: bad generation in the segment table");
    gens.(i) <- g;
    useds.(i) <- ru32 r;
    sizes.(i) <- ru32 r;
    larges.(i) <- ru8 r <> 0;
    let consistent =
      useds.(i) <= sizes.(i)
      && sizes.(i) <= Heap.max_segment_words
      &&
      if larges.(i) then sizes.(i) > segment_words
      else sizes.(i) = segment_words
    in
    if not consistent then
      raise (Error "gbc-image: inconsistent segment table")
  done;
  (* Pass 1: acquire the segments of a fresh heap in image order (so the
     image numbering maps to ids 0..n-1) and copy the contents raw. *)
  let seg_map = Array.make (max 1 nsegs) (-1) in
  (try
     for i = 0 to nsegs - 1 do
       let min_words = if larges.(i) then sizes.(i) else 1 in
       let seg =
         Heap.acquire_segment h ~space:spaces.(i) ~generation:gens.(i)
           ~min_words
       in
       seg_map.(i) <- seg;
       (Heap.info h seg).Heap.used <- useds.(i)
     done
   with Heap.Out_of_memory ->
     raise
       (Error
          "gbc-image: image does not fit under the configured \
           max_heap_words"));
  let total_words = ref 0 in
  for i = 0 to nsegs - 1 do
    let arr = h.Heap.segs.(seg_map.(i)) in
    need r (8 * useds.(i));
    for off = 0 to useds.(i) - 1 do
      arr.(off) <- Int64.to_int (String.get_int64_le r.buf r.pos);
      r.pos <- r.pos + 8
    done;
    total_words := !total_words + useds.(i)
  done;
  let fix w =
    if not (Word.is_pointer w) then w
    else begin
      let a = Word.addr w in
      let iseg = Heap.seg_of_addr a in
      let off = Heap.off_of_addr a in
      if iseg < 0 || iseg >= nsegs || off >= useds.(iseg) then
        raise (Error "gbc-image: relocation target out of range");
      Word.with_addr w (Heap.addr_of ~seg:seg_map.(iseg) ~off)
    end
  in
  (* Pass 2: fix up every pointer slot through the segment map and
     re-derive the remembered set while we are at it (headers are
     fixnums, so a blanket pointer sweep visits exactly the slots;
     Data-space segments hold no pointers and raw payloads stay
     untouched). *)
  for i = 0 to nsegs - 1 do
    if spaces.(i) <> Space.Data then begin
      let seg = seg_map.(i) in
      let arr = h.Heap.segs.(seg) in
      for off = 0 to useds.(i) - 1 do
        let w = arr.(off) in
        if Word.is_pointer w then begin
          let w' = fix w in
          arr.(off) <- w';
          Heap.note_ref h
            ~addr:(Heap.addr_of ~seg ~off)
            ~gen:(Heap.generation_of_word h w')
        end
      done
    end
  done;
  (* Replay the allocator's crossing-map maintenance object by object. *)
  let cshift = Heap.card_shift h in
  let set_crossing (si : Heap.seg_info) ~off ~nwords =
    let first_c = (off + (1 lsl cshift) - 1) lsr cshift in
    let last_c = (off + nwords - 1) lsr cshift in
    for c = first_c to last_c do
      si.Heap.crossing.(c) <- off
    done
  in
  for i = 0 to nsegs - 1 do
    let seg = seg_map.(i) in
    let si = Heap.info h seg in
    match spaces.(i) with
    | Space.Pair | Space.Weak | Space.Ephemeron ->
        if useds.(i) land 1 <> 0 then
          raise (Error "gbc-image: odd word count in a pair segment");
        let off = ref 0 in
        while !off < useds.(i) do
          set_crossing si ~off:!off ~nwords:2;
          off := !off + 2
        done
    | Space.Typed | Space.Data ->
        let arr = h.Heap.segs.(seg) in
        let off = ref 0 in
        while !off < useds.(i) do
          let hdr = arr.(!off) in
          if not (Word.is_fixnum hdr) then
            raise (Error "gbc-image: bad object header in a typed segment");
          let size = 1 + Obj.header_len hdr in
          if size <= 0 || !off + size > useds.(i) then
            raise (Error "gbc-image: object overruns its segment");
          set_crossing si ~off:!off ~nwords:size;
          off := !off + size
        done
  done;
  for k = 0 to Space.count - 1 do
    let idx = ri64 r in
    if idx >= nsegs then raise (Error "gbc-image: bad allocation cursor");
    h.Heap.mutator_cursors.(k).Heap.seg <-
      (if idx < 0 then -1 else seg_map.(idx))
  done;
  let nglobals = ru32 r in
  let cells = ref h.Heap.global_cells in
  while Array.length !cells < nglobals do
    cells := Array.make (2 * Array.length !cells) Word.nil
  done;
  h.Heap.global_cells <- !cells;
  h.Heap.global_cells_len <- nglobals;
  for i = 0 to nglobals - 1 do
    h.Heap.global_cells.(i) <- fix (ri64 r)
  done;
  let nfree = ru32 r in
  let free = ref [] in
  for _ = 1 to nfree do
    let idx = ru32 r in
    if idx >= nglobals then raise (Error "gbc-image: bad free-cell index");
    free := idx :: !free
  done;
  h.Heap.global_free <- List.rev !free;
  for g = 0 to max_generation do
    let n = ru32 r in
    let p = h.Heap.protected.(g) in
    for _ = 1 to n do
      let obj = fix (ri64 r) in
      let rep = fix (ri64 r) in
      let tconc = fix (ri64 r) in
      let gid = ru32 r in
      if gid >= nguardians then
        raise (Error "gbc-image: bad guardian id in a protected list");
      Vec.Int.push p.Heap.p_objs obj;
      Vec.Int.push p.Heap.p_reps rep;
      Vec.Int.push p.Heap.p_tconcs tconc;
      Vec.Int.push p.Heap.p_gids gid
    done
  done;
  h.Heap.gc_epoch <- gc_epoch;
  h.Heap.collect_count <- collect_count;
  h.Heap.last_gc_generation <- last_gc_generation;
  (Heap.stats h).Stats.words_allocated_since_gc <- words_since_gc;
  Telemetry.restore_guardian_count tel nguardians;
  let symbols = ref [] in
  let nsyms = ru32 r in
  for _ = 1 to nsyms do
    let name = rstr r in
    let w = fix (ri64 r) in
    symbols := (name, w) :: !symbols
  done;
  let symbols = List.rev !symbols in
  let extras = ref [] in
  let nextras = ru32 r in
  for _ = 1 to nextras do
    let name = rstr r in
    let nw = ru32 r in
    let xwords = Array.make (max 1 nw) Word.nil in
    for j = 0 to nw - 1 do
      xwords.(j) <- fix (ri64 r)
    done;
    let xwords = Array.sub xwords 0 nw in
    let xbytes = rstr r in
    extras := (name, { xwords; xbytes }) :: !extras
  done;
  let extras = List.rev !extras in
  if r.pos <> r.limit then
    raise (Error "gbc-image: trailing bytes in the image payload");
  (Heap.faults h).Heap.fail_segment_alloc_at <-
    config.Config.fail_segment_alloc_at;
  if config.Config.image_verify_on_load then begin
    match Verify.verify h with
    | [] -> ()
    | errs ->
        let worst =
          List.filteri (fun i _ -> i < 3) errs
          |> List.map (fun e -> e.Verify.what ^ " at " ^ e.Verify.where)
          |> String.concat "; "
        in
        raise
          (Error
             (Printf.sprintf
                "gbc-image: restored heap failed verification (%d errors): %s"
                (List.length errs) worst))
  end;
  Telemetry.phase_end tel Telemetry.Image_load ~work:!total_words;
  Telemetry.set_enabled tel was_on;
  Telemetry.record_image_load tel ~bytes:total ~words:!total_words;
  {
    heap = h;
    symbols;
    extras;
    image_bytes = total;
    restored_words = !total_words;
    restored_segments = nsegs;
  }

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let save_image ?symbols ?extras h path =
  let s = save_string ?symbols ?extras h in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let load_image ?config path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load_string ?config s
