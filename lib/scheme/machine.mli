(** The stack VM executing {!Instr} code over the simulated heap.

    All VM state that can reference heap objects — the value stack, the
    accumulator, the current closure, saved closures in control frames, the
    constants table — is registered as a root scanner, so a collection can
    safely happen at any safepoint (the beginning of every call).  The
    collect-request handler, if installed from Scheme, is invoked
    re-entrantly through {!apply_closure}. *)

open Gbc_runtime

exception Error of string
(** A Scheme-level error (wrong types, arity, unbound variables, the
    [error] primitive).  The machine may be left mid-activation; call
    {!reset} before reusing it interactively. *)

exception Exit_signal
(** Raised by the [exit] primitive. *)

exception Load_image_signal of string
(** Raised by the [load-heap-image] primitive with the image path.  A
    machine cannot replace itself mid-execution, so the driver that owns
    it catches this, rebuilds a machine from the image
    ({!Scheme.load_image}) and continues on that one.  Forms remaining in
    the input that ran the primitive are discarded, exec-like. *)

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

type t

val create : ?ctx:Gbc.Ctx.t -> ?config:Config.t -> unit -> t
(** A bare machine: no primitives, no prelude (use {!Scheme.create} for a
    ready system). *)

val dispose : t -> unit

val heap : t -> Heap.t

(** The machine's collection record ring (128 records; the heap's
    telemetry is enabled by {!create}). *)
val gc_ring : t -> Telemetry.Ring.t option
val ctx : t -> Gbc.Ctx.t
val symtab : t -> Symtab.t

(** {1 Console} *)

val console_output : t -> string
val clear_console : t -> unit

val set_echo : t -> bool -> unit
(** Also write console output to stdout. *)

val print_string : t -> string -> unit

(** {1 Globals, constants, code} *)

val global_cell : t -> string -> int
(** Root cell of a global variable, created unbound on first use. *)

val global_name : t -> int -> string
val define_global : t -> string -> Word.t -> unit
val lookup_global : t -> string -> Word.t option

val materialize : t -> Sexpr.t -> Word.t
(** Build a heap value from external data (interning symbols). *)

val linker : t -> Compile.linker

val code : t -> int -> Instr.code
(** Code block by id (for the disassembler). *)

(** {1 Procedures} *)

val is_procedure : t -> Word.t -> bool

val define_prim :
  t ->
  name:string ->
  arity_min:int ->
  ?arity_max:int ->
  (t -> Word.t array -> Word.t) ->
  unit
(** Register a primitive bound to its global name.  [arity_max] defaults to
    [arity_min]; -1 means variadic.  Primitive bodies must not trigger
    collections. *)

val in_handler : t -> bool
val set_in_handler : t -> bool -> unit

(** {1 Heap images}

    The compiled-code and constants tables live on the OCaml side;
    {!Scheme_image} carries them through a [gbc-image/1] file as extra
    sections and puts them back with {!restore_image_state}. *)

val image_codes : t -> Instr.code array
(** Snapshot of the code table, index-stable. *)

val image_consts : t -> Word.t array
(** Snapshot of the constants table (heap words, index-stable). *)

val restore_image_state :
  t ->
  codes:Instr.code array ->
  consts:Word.t array ->
  symbols:(string * Word.t) list ->
  unit
(** Install restored tables into a fresh machine over the restored heap,
    adopt the symbol section into the interning table, and rebuild the
    global-cell name map.  Call before {!Primitives.install}. *)

val apply_closure : t -> Word.t -> Word.t list -> Word.t
(** Call a Scheme closure from OCaml (used by the collect-request handler
    bridge).  Re-entrant: saves and restores the register file via the
    rooted value stack. *)

val call_with_error_handler : t -> thunk:Word.t -> handler:Word.t -> Word.t
(** Run [thunk] (a zero-argument closure); if a Scheme error escapes,
    restore the register file and apply [handler] to the error message (a
    heap string).  Backs the [with-error-handler] primitive. *)

(** {1 Evaluation} *)

val run_code : t -> Instr.code -> Word.t

val eval_datum : t -> Sexpr.t -> Word.t
(** Compile and run one top-level form; the returned word is valid until
    the next collection. *)

val eval_string : t -> string -> Word.t
(** Evaluate every form in the source, returning the last result. *)

val reset : t -> unit
(** Discard in-flight activation state (after an error escaped the
    interpreter loop, e.g. in a REPL). *)
