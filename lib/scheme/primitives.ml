(** The primitive procedures installed into a fresh machine.

    Primitives never trigger a collection (safepoints live in the VM's call
    instruction), so they may freely work with raw argument words. *)

open Gbc_runtime
module Port = Gbc.Port

let err = Machine.error

let bool b = Word.of_bool b

let want_fixnum name w =
  if Word.is_fixnum w then Word.to_fixnum w
  else err "%s: expected a fixnum" name

let want_char name w =
  if Word.is_char w then Word.to_char w else err "%s: expected a character" name

let want_pair name h w =
  if Word.is_pair_ptr w then w else err "%s: expected a pair, got %s" name (Printer.to_string h w)

let want_string name h w =
  if Obj.is_string h w then w else err "%s: expected a string" name

let want_vector name h w =
  if Obj.is_vector h w then w else err "%s: expected a vector" name

let want_guardian name h w =
  if Guardian.is_guardian h w then w else err "%s: expected a guardian" name

let want_port name h w = if Port.is_port h w then w else err "%s: expected a port" name

(* Numeric tower: fixnums and flonums. *)
type num = Fix of int | Flo of float

let to_num name h w =
  if Word.is_fixnum w then Fix (Word.to_fixnum w)
  else if Obj.is_flonum h w then Flo (Obj.flonum_value h w)
  else err "%s: expected a number" name

let of_num h = function Fix n -> Word.of_fixnum n | Flo f -> Obj.make_flonum h f

let num_binop name fi ff h a b =
  match (to_num name h a, to_num name h b) with
  | Fix x, Fix y -> Fix (fi x y)
  | Flo x, Flo y -> Flo (ff x y)
  | Fix x, Flo y -> Flo (ff (float_of_int x) y)
  | Flo x, Fix y -> Flo (ff x (float_of_int y))

let num_cmp name fi ff h a b =
  match (to_num name h a, to_num name h b) with
  | Fix x, Fix y -> fi x y
  | Flo x, Flo y -> ff x y
  | Fix x, Flo y -> ff (float_of_int x) y
  | Flo x, Fix y -> ff x (float_of_int y)

let fold_num name fi ff h init args =
  Array.fold_left (fun acc w -> num_binop name fi ff h (of_num h acc) w) init args

let chain_cmp name fi ff h args =
  let ok = ref true in
  for i = 0 to Array.length args - 2 do
    if not (num_cmp name fi ff h args.(i) args.(i + 1)) then ok := false
  done;
  bool !ok

let eqv h a b =
  Word.equal a b
  || (Obj.is_flonum h a && Obj.is_flonum h b && Obj.flonum_value h a = Obj.flonum_value h b)

let rec equal h a b =
  eqv h a b
  || (Word.is_pair_ptr a && Word.is_pair_ptr b
      && equal h (Obj.car h a) (Obj.car h b)
      && equal h (Obj.cdr h a) (Obj.cdr h b))
  || (Obj.is_string h a && Obj.is_string h b
      && String.equal (Obj.string_to_ocaml h a) (Obj.string_to_ocaml h b))
  || (Obj.is_vector h a && Obj.is_vector h b
      && Obj.vector_length h a = Obj.vector_length h b
      &&
      let n = Obj.vector_length h a in
      let rec loop i =
        i >= n || (equal h (Obj.vector_ref h a i) (Obj.vector_ref h b i) && loop (i + 1))
      in
      loop 0)

let install (m : Machine.t) =
  let h = Machine.heap m in
  let ctx = Machine.ctx m in
  let p name ~min ?max fn =
    Machine.define_prim m ~name ~arity_min:min ?arity_max:max (fun m args -> fn m args)
  in
  let p1 name fn = p name ~min:1 (fun m args -> fn m args.(0)) in
  let p2 name fn = p name ~min:2 (fun m args -> fn m args.(0) args.(1)) in

  (* --- pairs and lists ------------------------------------------- *)
  p2 "cons" (fun _ a b -> Obj.cons h a b);
  p2 "weak-cons" (fun _ a b -> Obj.weak_cons h a b);
  p2 "ephemeron-cons" (fun _ a b -> Obj.ephemeron_cons h a b);
  p1 "ephemeron-pair?" (fun _ w -> bool (Obj.is_ephemeron h w));
  p1 "car" (fun _ w -> Obj.car h (want_pair "car" h w));
  p1 "cdr" (fun _ w -> Obj.cdr h (want_pair "cdr" h w));
  p2 "set-car!" (fun _ w v ->
      Obj.set_car h (want_pair "set-car!" h w) v;
      Word.void);
  p2 "set-cdr!" (fun _ w v ->
      Obj.set_cdr h (want_pair "set-cdr!" h w) v;
      Word.void);
  p1 "pair?" (fun _ w -> bool (Word.is_pair_ptr w));
  p1 "weak-pair?" (fun _ w -> bool (Obj.is_weak_pair h w));
  p1 "null?" (fun _ w -> bool (Word.is_nil w));
  p "list" ~min:0 ~max:(-1) (fun _ args ->
      let lst = ref Word.nil in
      for i = Array.length args - 1 downto 0 do
        lst := Obj.cons h args.(i) !lst
      done;
      !lst);

  (* --- predicates and identity ----------------------------------- *)
  p2 "eq?" (fun _ a b -> bool (Word.equal a b));
  p2 "eqv?" (fun _ a b -> bool (eqv h a b));
  p2 "equal?" (fun _ a b -> bool (equal h a b));
  p1 "not" (fun _ w -> bool (Word.is_false w));
  p1 "boolean?" (fun _ w -> bool (Word.is_true w || Word.is_false w));
  p1 "symbol?" (fun _ w -> bool (Obj.is_symbol h w));
  p1 "string?" (fun _ w -> bool (Obj.is_string h w));
  p1 "char?" (fun _ w -> bool (Word.is_char w));
  p1 "number?" (fun _ w -> bool (Word.is_fixnum w || Obj.is_flonum h w));
  p1 "fixnum?" (fun _ w -> bool (Word.is_fixnum w));
  p1 "flonum?" (fun _ w -> bool (Obj.is_flonum h w));
  p1 "vector?" (fun _ w -> bool (Obj.is_vector h w));
  p1 "box?" (fun _ w -> bool (Obj.is_box h w));
  p1 "procedure?" (fun m w -> bool (Machine.is_procedure m w));
  p1 "guardian?" (fun _ w -> bool (Guardian.is_guardian h w));
  p1 "eof-object?" (fun _ w -> bool (Word.equal w Word.eof));
  p "eof-object" ~min:0 (fun _ _ -> Word.eof);
  p "void" ~min:0 (fun _ _ -> Word.void);

  (* --- arithmetic ------------------------------------------------- *)
  p "+" ~min:0 ~max:(-1) (fun _ args -> of_num h (fold_num "+" ( + ) ( +. ) h (Fix 0) args));
  p "*" ~min:0 ~max:(-1) (fun _ args -> of_num h (fold_num "*" ( * ) ( *. ) h (Fix 1) args));
  p "-" ~min:1 ~max:(-1) (fun _ args ->
      if Array.length args = 1 then
        of_num h (num_binop "-" ( - ) ( -. ) h (Word.of_fixnum 0) args.(0))
      else
        of_num h
          (Array.fold_left
             (fun acc w -> num_binop "-" ( - ) ( -. ) h (of_num h acc) w)
             (to_num "-" h args.(0))
             (Array.sub args 1 (Array.length args - 1))));
  p "/" ~min:2 (fun _ args ->
      match (to_num "/" h args.(0), to_num "/" h args.(1)) with
      | Fix a, Fix b ->
          if b = 0 then err "/: division by zero" else Word.of_fixnum (a / b)
      | a, b ->
          let f = function Fix n -> float_of_int n | Flo f -> f in
          Obj.make_flonum h (f a /. f b));
  p2 "quotient" (fun _ a b ->
      let a = want_fixnum "quotient" a and b = want_fixnum "quotient" b in
      if b = 0 then err "quotient: division by zero" else Word.of_fixnum (a / b));
  p2 "remainder" (fun _ a b ->
      let a = want_fixnum "remainder" a and b = want_fixnum "remainder" b in
      if b = 0 then err "remainder: division by zero" else Word.of_fixnum (a mod b));
  p2 "modulo" (fun _ a b ->
      let a = want_fixnum "modulo" a and b = want_fixnum "modulo" b in
      if b = 0 then err "modulo: division by zero"
      else Word.of_fixnum (((a mod b) + b) mod b));
  p "=" ~min:2 ~max:(-1) (fun _ args -> chain_cmp "=" ( = ) ( = ) h args);
  p "<" ~min:2 ~max:(-1) (fun _ args -> chain_cmp "<" ( < ) ( < ) h args);
  p ">" ~min:2 ~max:(-1) (fun _ args -> chain_cmp ">" ( > ) ( > ) h args);
  p "<=" ~min:2 ~max:(-1) (fun _ args -> chain_cmp "<=" ( <= ) ( <= ) h args);
  p ">=" ~min:2 ~max:(-1) (fun _ args -> chain_cmp ">=" ( >= ) ( >= ) h args);
  p1 "zero?" (fun _ w -> bool (Word.equal w (Word.of_fixnum 0)));
  p1 "char->integer" (fun _ w -> Word.of_fixnum (Char.code (want_char "char->integer" w)));
  p1 "integer->char" (fun _ w -> Word.of_char (Char.chr (want_fixnum "integer->char" w land 0xff)));
  p1 "number->string" (fun _ w ->
      match to_num "number->string" h w with
      | Fix n -> Obj.string_of_ocaml h (string_of_int n)
      | Flo f -> Obj.string_of_ocaml h (Printf.sprintf "%.12g" f));

  (* --- strings and symbols ---------------------------------------- *)
  p "make-string" ~min:1 ~max:2 (fun _ args ->
      let n = want_fixnum "make-string" args.(0) in
      let fill = if Array.length args > 1 then want_char "make-string" args.(1) else ' ' in
      Obj.make_string h ~len:n ~fill);
  p1 "string-length" (fun _ w -> Word.of_fixnum (Obj.string_length h (want_string "string-length" h w)));
  p2 "string-ref" (fun _ s i -> Word.of_char (Obj.string_ref h (want_string "string-ref" h s) (want_fixnum "string-ref" i)));
  p "string-set!" ~min:3 (fun _ args ->
      Obj.string_set h (want_string "string-set!" h args.(0)) (want_fixnum "string-set!" args.(1))
        (want_char "string-set!" args.(2));
      Word.void);
  p2 "string=?" (fun _ a b ->
      bool (String.equal (Obj.string_to_ocaml h (want_string "string=?" h a))
              (Obj.string_to_ocaml h (want_string "string=?" h b))));
  p "string-append" ~min:0 ~max:(-1) (fun _ args ->
      let parts = Array.to_list args |> List.map (fun w -> Obj.string_to_ocaml h (want_string "string-append" h w)) in
      Obj.string_of_ocaml h (String.concat "" parts));
  p "substring" ~min:3 (fun _ args ->
      let s = Obj.string_to_ocaml h (want_string "substring" h args.(0)) in
      let i = want_fixnum "substring" args.(1) and j = want_fixnum "substring" args.(2) in
      if i < 0 || j > String.length s || i > j then err "substring: bad range";
      Obj.string_of_ocaml h (String.sub s i (j - i)));
  p1 "string->symbol" (fun m w ->
      Symtab.intern (Machine.symtab m) (Obj.string_to_ocaml h (want_string "string->symbol" h w)));
  p1 "symbol->string" (fun _ w ->
      if not (Obj.is_symbol h w) then err "symbol->string: expected a symbol";
      Obj.string_of_ocaml h (Obj.symbol_name_string h w));

  (* --- vectors ----------------------------------------------------- *)
  p "make-vector" ~min:1 ~max:2 (fun _ args ->
      let n = want_fixnum "make-vector" args.(0) in
      let init = if Array.length args > 1 then args.(1) else Word.of_fixnum 0 in
      Obj.make_vector h ~len:n ~init);
  p "vector" ~min:0 ~max:(-1) (fun _ args ->
      let v = Obj.make_vector h ~len:(Array.length args) ~init:Word.nil in
      Array.iteri (fun i w -> Obj.vector_set h v i w) args;
      v);
  p1 "vector-length" (fun _ w -> Word.of_fixnum (Obj.vector_length h (want_vector "vector-length" h w)));
  p2 "vector-ref" (fun _ v i ->
      let v = want_vector "vector-ref" h v and i = want_fixnum "vector-ref" i in
      if i < 0 || i >= Obj.vector_length h v then err "vector-ref: index out of range";
      Obj.vector_ref h v i);
  p "vector-set!" ~min:3 (fun _ args ->
      let v = want_vector "vector-set!" h args.(0) and i = want_fixnum "vector-set!" args.(1) in
      if i < 0 || i >= Obj.vector_length h v then err "vector-set!: index out of range";
      Obj.vector_set h v i args.(2);
      Word.void);

  (* --- records (backing define-record-type) ------------------------- *)
  p "%make-record" ~min:1 ~max:(-1) (fun _ args ->
      let nfields = Array.length args - 1 in
      let r = Obj.make_record h ~tag:args.(0) ~len:nfields ~init:Word.false_ in
      for i = 0 to nfields - 1 do
        Obj.record_set h r i args.(i + 1)
      done;
      r);
  p2 "%record?" (fun _ r tag ->
      bool (Obj.is_record h r && Word.equal (Obj.record_tag h r) tag));
  p "%record-field" ~min:3 (fun _ args ->
      let r = args.(0) and tag = args.(1) and i = want_fixnum "%record-field" args.(2) in
      if not (Obj.is_record h r && Word.equal (Obj.record_tag h r) tag) then
        err "record accessor: wrong record type";
      Obj.record_ref h r i);
  p "%record-field-set!" ~min:4 (fun _ args ->
      let r = args.(0) and tag = args.(1) and i = want_fixnum "%record-field-set!" args.(2) in
      if not (Obj.is_record h r && Word.equal (Obj.record_tag h r) tag) then
        err "record mutator: wrong record type";
      Obj.record_set h r i args.(3);
      Word.void);
  p1 "record?" (fun _ w -> bool (Obj.is_record h w));

  (* --- boxes ------------------------------------------------------- *)
  p1 "box" (fun _ w -> Obj.make_box h w);
  p1 "unbox" (fun _ w ->
      if not (Obj.is_box h w) then err "unbox: expected a box";
      Obj.box_ref h w);
  p2 "set-box!" (fun _ b w ->
      if not (Obj.is_box h b) then err "set-box!: expected a box";
      Obj.box_set h b w;
      Word.void);

  (* --- guardians and collection ----------------------------------- *)
  p "%make-guardian" ~min:0 (fun _ _ -> Guardian.make h);
  p2 "%guardian-register" (fun _ g obj ->
      Guardian.register h (want_guardian "guardian" h g) obj;
      Word.void);
  p "%guardian-register-rep" ~min:3 (fun _ args ->
      Guardian.register_with_rep h (want_guardian "guardian" h args.(0)) ~obj:args.(1)
        ~rep:args.(2);
      Word.void);
  p1 "%guardian-retrieve" (fun _ g ->
      match Guardian.retrieve h (want_guardian "guardian" h g) with
      | Some w -> w
      | None -> Word.false_);
  p "collect" ~min:0 ~max:1 (fun _ args ->
      if Array.length args = 0 then ignore (Runtime.collect_auto h)
      else ignore (Collector.collect h ~gen:(want_fixnum "collect" args.(0)));
      Word.void);
  p "gc-count" ~min:0 (fun _ _ ->
      Word.of_fixnum (Heap.stats h).Stats.total.Stats.collections);
  p "gc-history" ~min:0 (fun m _ ->
      (* Most recent collections, oldest first, as vectors
         #(ordinal generation words-copied resurrections). *)
      match Machine.gc_ring m with
      | None -> Word.nil
      | Some ring ->
          let lst = ref Word.nil in
          List.iter
            (fun (r : Telemetry.Ring.record) ->
              let v = Obj.make_vector h ~len:4 ~init:(Word.of_fixnum 0) in
              Obj.vector_set h v 0 (Word.of_fixnum r.Telemetry.Ring.ordinal);
              Obj.vector_set h v 1 (Word.of_fixnum r.Telemetry.Ring.generation);
              Obj.vector_set h v 2
                (Word.of_fixnum r.Telemetry.Ring.counters.Stats.words_copied);
              Obj.vector_set h v 3
                (Word.of_fixnum
                   r.Telemetry.Ring.counters.Stats.guardian_resurrections);
              lst := Obj.cons h v !lst)
            (List.rev (Telemetry.Ring.records ring));
          !lst);
  p "gc-phase-stats" ~min:0 (fun m _ ->
      (* One vector per collector phase, in phase order:
         #(name total-ns last-ns total-work last-work), ns as flonums,
         followed by a remembered-set summary row:
         #(remembered-set cards-scanned dirty-segments barrier-calls
           barrier-hits cards-dirtied). *)
      let tel = Heap.telemetry h in
      let lst = ref Word.nil in
      let s = Heap.stats h in
      let rs = Obj.make_vector h ~len:6 ~init:(Word.of_fixnum 0) in
      Obj.vector_set h rs 0 (Symtab.intern (Machine.symtab m) "remembered-set");
      Obj.vector_set h rs 1 (Word.of_fixnum s.Stats.total.Stats.cards_scanned);
      Obj.vector_set h rs 2
        (Word.of_fixnum s.Stats.total.Stats.dirty_segments_scanned);
      Obj.vector_set h rs 3 (Word.of_fixnum s.Stats.barrier_calls);
      Obj.vector_set h rs 4 (Word.of_fixnum s.Stats.barrier_hits);
      Obj.vector_set h rs 5 (Word.of_fixnum s.Stats.cards_dirtied);
      lst := Obj.cons h rs !lst;
      List.iter
        (fun ph ->
          let v = Obj.make_vector h ~len:5 ~init:(Word.of_fixnum 0) in
          Obj.vector_set h v 0
            (Symtab.intern (Machine.symtab m) (Telemetry.phase_name ph));
          Obj.vector_set h v 1 (Obj.make_flonum h (Telemetry.phase_ns_total tel ph));
          Obj.vector_set h v 2 (Obj.make_flonum h (Telemetry.phase_ns_last tel ph));
          Obj.vector_set h v 3 (Word.of_fixnum (Telemetry.phase_work_total tel ph));
          Obj.vector_set h v 4 (Word.of_fixnum (Telemetry.phase_work_last tel ph));
          lst := Obj.cons h v !lst)
        (List.rev Telemetry.all_phases);
      !lst);
  p "pause-histogram" ~min:0 (fun _ _ ->
      (* Non-empty log2 buckets of full-collection pause times, as
         #(lo-ns hi-ns count) with flonum bounds, smallest first. *)
      let hist = Telemetry.pause_histogram (Heap.telemetry h) in
      let lst = ref Word.nil in
      List.iter
        (fun (lo, hi, count) ->
          let v = Obj.make_vector h ~len:3 ~init:(Word.of_fixnum 0) in
          Obj.vector_set h v 0 (Obj.make_flonum h lo);
          Obj.vector_set h v 1 (Obj.make_flonum h hi);
          Obj.vector_set h v 2 (Word.of_fixnum count);
          lst := Obj.cons h v !lst)
        (List.rev (Telemetry.Histogram.nonempty_buckets hist));
      !lst);
  p1 "%guardian-stats" (fun _ g ->
      (* #(registrations resurrections drops polls hits latency-sum
          latency-max pending) for one guardian. *)
      let gs = Guardian.stats h (want_guardian "guardian-stats" h g) in
      let v = Obj.make_vector h ~len:8 ~init:(Word.of_fixnum 0) in
      Obj.vector_set h v 0 (Word.of_fixnum gs.Telemetry.g_registrations);
      Obj.vector_set h v 1 (Word.of_fixnum gs.Telemetry.g_resurrections);
      Obj.vector_set h v 2 (Word.of_fixnum gs.Telemetry.g_drops);
      Obj.vector_set h v 3 (Word.of_fixnum gs.Telemetry.g_polls);
      Obj.vector_set h v 4 (Word.of_fixnum gs.Telemetry.g_hits);
      Obj.vector_set h v 5 (Word.of_fixnum gs.Telemetry.g_latency_sum);
      Obj.vector_set h v 6 (Word.of_fixnum gs.Telemetry.g_latency_max);
      Obj.vector_set h v 7 (Word.of_fixnum (Guardian.pending_count h g));
      v);
  p1 "eq-hash" (fun _ w -> Word.of_fixnum (Obj.eq_hash w land 0xFFFFFFFF));
  p1 "collect-request-handler" (fun m proc ->
      if Word.is_false proc then begin
        Runtime.set_collect_request_handler h None;
        Word.void
      end
      else begin
        if not (Machine.is_procedure m proc) then
          err "collect-request-handler: expected a procedure";
        let cell = Heap.new_cell h proc in
        Runtime.set_collect_request_handler h
          (Some
             (fun h' ->
               if Machine.in_handler m then ignore (Runtime.collect_auto h')
               else begin
                 Machine.set_in_handler m true;
                 Fun.protect
                   ~finally:(fun () -> Machine.set_in_handler m false)
                   (fun () ->
                     ignore (Machine.apply_closure m (Heap.read_cell h' cell) []))
               end));
        Word.void
      end);

  (* --- ports ------------------------------------------------------- *)
  p1 "open-input-file" (fun _ w ->
      Port.open_input ctx (Obj.string_to_ocaml h (want_string "open-input-file" h w)));
  p1 "open-output-file" (fun _ w ->
      Port.open_output ctx (Obj.string_to_ocaml h (want_string "open-output-file" h w)));
  p1 "close-input-port" (fun _ w ->
      Port.close ctx (want_port "close-input-port" h w);
      Word.void);
  p1 "close-output-port" (fun _ w ->
      Port.close ctx (want_port "close-output-port" h w);
      Word.void);
  p1 "flush-output-port" (fun _ w ->
      Port.flush ctx (want_port "flush-output-port" h w);
      Word.void);
  p1 "input-port?" (fun _ w -> bool (Port.is_port h w && Port.is_input h w));
  p1 "output-port?" (fun _ w -> bool (Port.is_port h w && Port.is_output h w));
  p1 "port?" (fun _ w -> bool (Port.is_port h w));
  p1 "port-closed?" (fun _ w -> bool (Port.is_closed h (want_port "port-closed?" h w)));
  p1 "read-char" (fun _ w ->
      match Port.read_char ctx (want_port "read-char" h w) with
      | Some c -> Word.of_char c
      | None -> Word.eof);
  p "write-char" ~min:1 ~max:2 (fun m args ->
      let c = want_char "write-char" args.(0) in
      if Array.length args > 1 then Port.write_char ctx (want_port "write-char" h args.(1)) c
      else Machine.print_string m (String.make 1 c);
      Word.void);

  (* --- output ------------------------------------------------------ *)
  p "display" ~min:1 ~max:2 (fun m args ->
      let s = Printer.to_string ~display:true h args.(0) in
      if Array.length args > 1 then Port.write_string ctx (want_port "display" h args.(1)) s
      else Machine.print_string m s;
      Word.void);
  p "write" ~min:1 ~max:2 (fun m args ->
      let s = Printer.to_string h args.(0) in
      if Array.length args > 1 then Port.write_string ctx (want_port "write" h args.(1)) s
      else Machine.print_string m s;
      Word.void);
  p "newline" ~min:0 ~max:1 (fun m args ->
      if Array.length args > 0 then Port.write_char ctx (want_port "newline" h args.(0)) '\n'
      else Machine.print_string m "\n";
      Word.void);

  (* String ports, backed by hidden VFS files. *)
  (let counter = ref 0 in
   p1 "open-input-string" (fun _ w ->
       let s = Obj.string_to_ocaml h (want_string "open-input-string" h w) in
       incr counter;
       let name = Printf.sprintf "%%string-port-%d" !counter in
       Gbc_vfs.Vfs.write_file (Gbc.Ctx.vfs ctx) name s;
       Port.open_input ctx name);
   p "open-output-string" ~min:0 (fun _ _ ->
       incr counter;
       let name = Printf.sprintf "%%string-port-%d" !counter in
       Port.open_output ctx name));
  p1 "get-output-string" (fun _ w ->
      let port = want_port "get-output-string" h w in
      if not (Port.is_output h port) then err "get-output-string: not an output port";
      Port.flush ctx port;
      Obj.string_of_ocaml h (Gbc_vfs.Vfs.read_file (Gbc.Ctx.vfs ctx) (Port.name h port)));
  p1 "peek-char" (fun _ w ->
      match Port.peek_char ctx (want_port "peek-char" h w) with
      | Some c -> Word.of_char c
      | None -> Word.eof);
  p1 "read" (fun m w ->
      (* Read one datum from an input port: parse the unconsumed input,
         advance the port past the datum, materialize it. *)
      let port = want_port "read" h w in
      let src = Port.remaining_input ctx port in
      match Reader.read_prefix src with
      | None, consumed ->
          Port.advance_input ctx port consumed;
          Word.eof
      | Some d, consumed ->
          Port.advance_input ctx port consumed;
          Machine.materialize m d
      | exception Reader.Error msg -> err "read: %s" msg);

  (* --- characters and strings, extended ----------------------------- *)
  p2 "char=?" (fun _ a b -> bool (want_char "char=?" a = want_char "char=?" b));
  p2 "char<?" (fun _ a b -> bool (want_char "char<?" a < want_char "char<?" b));
  p2 "char>?" (fun _ a b -> bool (want_char "char>?" a > want_char "char>?" b));
  p1 "char-upcase" (fun _ w -> Word.of_char (Char.uppercase_ascii (want_char "char-upcase" w)));
  p1 "char-downcase" (fun _ w -> Word.of_char (Char.lowercase_ascii (want_char "char-downcase" w)));
  p1 "char-alphabetic?" (fun _ w ->
      let c = want_char "char-alphabetic?" w in
      bool ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')));
  p1 "char-numeric?" (fun _ w ->
      let c = want_char "char-numeric?" w in
      bool (c >= '0' && c <= '9'));
  p1 "char-whitespace?" (fun _ w ->
      match want_char "char-whitespace?" w with
      | ' ' | '\t' | '\n' | '\r' -> Word.true_
      | _ -> Word.false_);
  p2 "string<?" (fun _ a b ->
      bool
        (String.compare
           (Obj.string_to_ocaml h (want_string "string<?" h a))
           (Obj.string_to_ocaml h (want_string "string<?" h b))
        < 0));
  p1 "string-copy" (fun _ w ->
      Obj.string_of_ocaml h (Obj.string_to_ocaml h (want_string "string-copy" h w)));
  p1 "string->list" (fun _ w ->
      let s = Obj.string_to_ocaml h (want_string "string->list" h w) in
      let lst = ref Word.nil in
      for i = String.length s - 1 downto 0 do
        lst := Obj.cons h (Word.of_char s.[i]) !lst
      done;
      !lst);
  p1 "list->string" (fun _ w ->
      let chars = Obj.to_list h w |> List.map (want_char "list->string") in
      Obj.string_of_ocaml h (String.init (List.length chars) (List.nth chars)));
  p1 "string->number" (fun _ w ->
      let s = Obj.string_to_ocaml h (want_string "string->number" h w) in
      match int_of_string_opt s with
      | Some n -> Word.of_fixnum n
      | None -> (
          match float_of_string_opt s with
          | Some f -> Obj.make_flonum h f
          | None -> Word.false_));
  p "string" ~min:0 ~max:(-1) (fun _ args ->
      Obj.string_of_ocaml h
        (String.init (Array.length args) (fun i -> want_char "string" args.(i))));
  p "vector-fill!" ~min:2 (fun _ args ->
      let v = want_vector "vector-fill!" h args.(0) in
      for i = 0 to Obj.vector_length h v - 1 do
        Obj.vector_set h v i args.(1)
      done;
      Word.void);
  (let counter = ref 0 in
   p "gensym" ~min:0 ~max:1 (fun m _ ->
       incr counter;
       (* Uninterned identity is not supported; generate a fresh unlikely
          name instead. *)
       Symtab.intern (Machine.symtab m) (Printf.sprintf "g%%%d" !counter)));

  (* --- control ----------------------------------------------------- *)
  p1 "disassemble" (fun m w ->
      Machine.print_string m (Disasm.closure m w);
      Word.void);
  p "apply" ~min:2 ~max:(-1) (fun _ _ ->
      (* handled specially in the VM's call logic *)
      err "apply: internal error");
  p "call-with-current-continuation" ~min:1 (fun _ _ ->
      (* handled specially in the VM's call logic *)
      err "call/cc: internal error");
  p "call/cc" ~min:1 (fun _ _ -> err "call/cc: internal error");
  p2 "with-error-handler" (fun m handler thunk ->
      if not (Machine.is_procedure m handler) then
        err "with-error-handler: handler must be a procedure";
      if not (Machine.is_procedure m thunk) then
        err "with-error-handler: thunk must be a procedure";
      Machine.call_with_error_handler m ~thunk ~handler);
  p "error" ~min:1 ~max:(-1) (fun _ args ->
      let parts =
        Array.to_list args
        |> List.map (fun w ->
               if Obj.is_string h w then Obj.string_to_ocaml h w
               else Printer.to_string h w)
      in
      err "error: %s" (String.concat " " parts));
  p "exit" ~min:0 ~max:1 (fun _ _ -> raise Machine.Exit_signal);

  (* --- heap images -------------------------------------------------- *)
  p1 "save-heap-image" (fun m w ->
      (* Checkpoint the whole system (heap + symbols + code + constants)
         to a gbc-image/1 file.  Captures global state, not the running
         VM activation: a later load-heap-image starts at top level. *)
      let path = Obj.string_to_ocaml h (want_string "save-heap-image" h w) in
      (try Scheme_image.save m path with
      | Gbc_image.Image.Error msg -> err "save-heap-image: %s" msg
      | Sys_error msg -> err "save-heap-image: %s" msg);
      Word.void);
  p1 "load-heap-image" (fun _ w ->
      (* The machine cannot replace itself; signal the owning driver,
         which swaps machines and discards the rest of this input. *)
      let path = Obj.string_to_ocaml h (want_string "load-heap-image" h w) in
      raise (Machine.Load_image_signal path));
  ()
