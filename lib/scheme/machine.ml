(** The stack VM executing {!Instr} code over the simulated heap.

    All VM state that can reference heap objects — the value stack, the
    accumulator, the current closure, saved closures in control frames, the
    constants table — is registered as a root scanner, so a collection can
    safely happen at any {e safepoint} (the beginning of every call).  The
    collect-request handler, if one is installed from Scheme, is invoked
    re-entrantly through {!apply_closure}. *)

open Gbc_runtime

exception Error of string
exception Exit_signal

exception Load_image_signal of string
(* Raised by the [load-heap-image] primitive.  The machine cannot replace
   itself mid-execution, so the driver that owns it catches this, builds a
   fresh machine from the image and continues on that one; forms remaining
   in the input that ran the primitive are discarded, exec-like. *)

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type prim = {
  pname : string;
  arity_min : int;
  arity_max : int;  (** -1 = variadic *)
  fn : t -> Word.t array -> Word.t;
}

and frame = {
  ret_instrs : Instr.instr array;
  ret_pc : int;
  ret_fp : int;
  mutable ret_clos : Word.t;
  (* Where [ret_instrs] came from, so continuations can snapshot control
     frames into the heap: code id and clause index, or (-1, -1) for host
     boundaries (synthetic frames of apply_closure / top level). *)
  ret_code_id : int;
  ret_clause : int;
}

and t = {
  ctx : Gbc.Ctx.t;
  heap : Heap.t;
  symtab : Symtab.t;
  codes : Instr.code Vec.Poly.t;
  consts : Vec.Int.t;  (** heap words, rooted *)
  mutable stack : int array;
  mutable sp : int;
  mutable fp : int;
  mutable acc : Word.t;
  mutable clos : Word.t;
  control : frame Vec.Poly.t;
  mutable cur_code_id : int;  (** code id of the running clause, -1 = host *)
  mutable cur_clause : int;
  global_names : (int, string) Hashtbl.t;
  prims : prim Vec.Poly.t;
  out : Buffer.t;  (** console output *)
  mutable echo : bool;  (** also write console output to stdout *)
  mutable in_handler : bool;
  mutable scanner_id : int;
  mutable gc_ring : Telemetry.Ring.t option;
}

let dummy_code : Instr.code = { name = "dummy"; clauses = [] }

let dummy_frame =
  { ret_instrs = [||]; ret_pc = 0; ret_fp = 0; ret_clos = Word.nil;
    ret_code_id = -1; ret_clause = -1 }

let dummy_prim = { pname = ""; arity_min = 0; arity_max = 0; fn = (fun _ _ -> Word.void) }

let create ?(ctx : Gbc.Ctx.t option) ?config () =
  let ctx = match ctx with Some c -> c | None -> Gbc.Ctx.create ?config () in
  let heap = ctx.Gbc.Ctx.heap in
  let m =
    {
      ctx;
      heap;
      symtab = Symtab.create heap;
      codes = Vec.Poly.create ~dummy:dummy_code ();
      consts = Vec.Int.create ();
      stack = Array.make 4096 0;
      sp = 0;
      fp = 0;
      acc = Word.void;
      clos = Word.nil;
      control = Vec.Poly.create ~dummy:dummy_frame ();
      cur_code_id = -1;
      cur_clause = -1;
      global_names = Hashtbl.create 64;
      prims = Vec.Poly.create ~dummy:dummy_prim ();
      out = Buffer.create 256;
      echo = false;
      in_handler = false;
      scanner_id = -1;
      gc_ring = None;
    }
  in
  (* The Scheme system always observes its collector: gc-history,
     gc-phase-stats and pause-histogram read from the telemetry hub. *)
  Telemetry.set_enabled (Heap.telemetry heap) true;
  m.gc_ring <- Some (Telemetry.Ring.attach ~capacity:128 (Heap.telemetry heap));
  let scanner rewrite =
    for i = 0 to m.sp - 1 do
      m.stack.(i) <- rewrite m.stack.(i)
    done;
    m.acc <- rewrite m.acc;
    m.clos <- rewrite m.clos;
    Vec.Poly.iter m.control ~f:(fun f -> f.ret_clos <- rewrite f.ret_clos);
    Vec.Int.iteri m.consts ~f:(fun i w -> Vec.Int.set m.consts i (rewrite w))
  in
  m.scanner_id <- Heap.add_scanner heap scanner;
  m

let dispose m =
  Heap.remove_scanner m.heap m.scanner_id;
  Option.iter Telemetry.Ring.detach m.gc_ring;
  m.gc_ring <- None

let gc_ring m = m.gc_ring

let heap m = m.heap
let ctx m = m.ctx
let symtab m = m.symtab

let console_output m = Buffer.contents m.out

let clear_console m = Buffer.clear m.out

let set_echo m b = m.echo <- b
let in_handler m = m.in_handler
let set_in_handler m b = m.in_handler <- b

let print_string m s =
  Buffer.add_string m.out s;
  if m.echo then print_string s

(* ------------------------------------------------------------------ *)
(* Globals, constants, code                                            *)

(** Root cell of global variable [name], created unbound on first use. *)
let global_cell m name =
  let sym = Symtab.intern m.symtab name in
  let idx = Obj.symbol_global m.heap sym in
  if idx >= 0 then idx
  else begin
    let cell = Heap.new_cell m.heap Word.unbound in
    Obj.symbol_set_global m.heap sym cell;
    Hashtbl.replace m.global_names cell name;
    (* A symbol naming a global binding must survive even though the symbol
       table holds it weakly (only unbound oblist entries are pruned). *)
    ignore (Heap.new_cell m.heap sym);
    cell
  end

let global_name m cell =
  match Hashtbl.find_opt m.global_names cell with Some n -> n | None -> "?"

let define_global m name w = Heap.write_cell m.heap (global_cell m name) w

let lookup_global m name =
  let w = Heap.read_cell m.heap (global_cell m name) in
  if Word.equal w Word.unbound then None else Some w

(* Materialize a datum into the heap (for constants). *)
let rec materialize m (d : Sexpr.t) : Word.t =
  let h = m.heap in
  match d with
  | Sexpr.Null -> Word.nil
  | Sexpr.Bool b -> Word.of_bool b
  | Sexpr.Int n -> Word.of_fixnum n
  | Sexpr.Float f -> Obj.make_flonum h f
  | Sexpr.Char c -> Word.of_char c
  | Sexpr.Str s -> Obj.string_of_ocaml h s
  | Sexpr.Sym s -> Symtab.intern m.symtab s
  | Sexpr.Pair (a, dd) ->
      (* Build cdr first and root it across the car's materialization. *)
      let tail = materialize m dd in
      Heap.with_cell h tail (fun c ->
          let head = materialize m a in
          Obj.cons h head (Heap.read_cell h c))
  | Sexpr.Vector els ->
      let v = Obj.make_vector h ~len:(Array.length els) ~init:Word.nil in
      Heap.with_cell h v (fun c ->
          Array.iteri
            (fun i e ->
              let w = materialize m e in
              Obj.vector_set h (Heap.read_cell h c) i w)
            els;
          Heap.read_cell h c)

let add_const m d =
  let w = materialize m d in
  Vec.Int.push m.consts w;
  Vec.Int.length m.consts - 1

let add_code m code =
  Vec.Poly.push m.codes code;
  Vec.Poly.length m.codes - 1

let code m id = Vec.Poly.get m.codes id

let linker m : Compile.linker =
  {
    Compile.global_cell = global_cell m;
    add_const = add_const m;
    add_code = add_code m;
  }

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)

(* Closure layout: field 0 = code id (>= 0: codes table; < 0: primitive
   -1 - prim_id); fields 1.. = free variables. *)

let make_closure_obj m ~code_id ~nfree =
  let c = Obj.make_typed m.heap ~code:Obj.code_closure ~len:(1 + nfree) ~init:Word.nil () in
  Obj.set_field m.heap c 0 (Word.of_fixnum code_id);
  c

let is_closure m w = Obj.has_code m.heap w Obj.code_closure
let is_continuation m w = Obj.has_code m.heap w Obj.code_continuation
let is_procedure m w = is_closure m w || is_continuation m w

(** Register a primitive and bind it to its global name. *)
let define_prim m ~name ~arity_min ?(arity_max = arity_min) fn =
  Vec.Poly.push m.prims { pname = name; arity_min; arity_max; fn };
  let prim_id = Vec.Poly.length m.prims - 1 in
  (* On a machine rebuilt from a heap image the global already holds this
     primitive's closure (installation order is fixed, so the prim ids
     match), and re-making it would allocate — spoiling the image's
     save → load → save byte identity.  Bind only when unbound. *)
  if lookup_global m name = None then begin
    let c = make_closure_obj m ~code_id:(-1 - prim_id) ~nfree:0 in
    define_global m name c
  end

let prim_of_closure m w =
  let id = Word.to_fixnum (Obj.field m.heap w 0) in
  if id < 0 then Some (Vec.Poly.get m.prims (-1 - id)) else None

(* ------------------------------------------------------------------ *)
(* Heap-image support                                                  *)

(* The compiled-code table and the constants table live on the OCaml
   side; Scheme_image carries them through a heap image as extra
   sections.  Everything else a restored machine needs is either in the
   heap (globals, symbols' global-cell links) or reinstalled by the
   caller (primitives). *)

let image_codes m = Array.init (Vec.Poly.length m.codes) (Vec.Poly.get m.codes)
let image_consts m = Array.init (Vec.Int.length m.consts) (Vec.Int.get m.consts)

let restore_image_state m ~codes ~consts ~symbols =
  Vec.Poly.clear m.codes;
  Array.iter (Vec.Poly.push m.codes) codes;
  Vec.Int.clear m.consts;
  Array.iter (Vec.Int.push m.consts) consts;
  Symtab.restore m.symtab symbols;
  (* Global cells keep their indices through an image, so the reverse
     name map (for error messages) rebuilds from the symbol section. *)
  List.iter
    (fun (name, w) ->
      if Obj.is_symbol m.heap w then begin
        let idx = Obj.symbol_global m.heap w in
        if idx >= 0 then Hashtbl.replace m.global_names idx name
      end)
    symbols

(* ------------------------------------------------------------------ *)
(* Stack                                                               *)

let ensure_stack m n =
  if n > Array.length m.stack then begin
    let size = ref (Array.length m.stack) in
    while !size < n do
      size := !size * 2
    done;
    let stack = Array.make !size 0 in
    Array.blit m.stack 0 stack 0 m.sp;
    m.stack <- stack
  end

let push m w =
  ensure_stack m (m.sp + 1);
  m.stack.(m.sp) <- w;
  m.sp <- m.sp + 1

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let select_clause (code : Instr.code) n =
  let rec loop i = function
    | [] -> None
    | (c : Instr.clause) :: rest ->
        if (c.required = n && not c.rest) || (c.required <= n && c.rest) then Some (c, i)
        else loop (i + 1) rest
  in
  loop 0 code.clauses

(* Collect [n - required] extra arguments (stack top) into a list placed at
   slot [fp + required]. *)
let build_rest m ~required ~n =
  let lst = ref Word.nil in
  for i = n - 1 downto required do
    lst := Obj.cons m.heap m.stack.(m.fp + i) !lst
  done;
  m.stack.(m.fp + required) <- !lst;
  m.sp <- m.fp + required + 1

let rec enter m (instrs0 : Instr.instr array) =
  let base = Vec.Poly.length m.control in
  let instrs = ref instrs0 and pc = ref 0 in
  let halted = ref false in
  while not !halted do
    let i = !instrs.(!pc) in
    incr pc;
    match i with
    | Instr.Const k -> m.acc <- Vec.Int.get m.consts k
    | Instr.Imm w -> m.acc <- w
    | Instr.Local_ref k -> m.acc <- m.stack.(m.fp + k)
    | Instr.Free_ref k -> m.acc <- Obj.field m.heap m.clos (1 + k)
    | Instr.Unbox -> m.acc <- Obj.box_ref m.heap m.acc
    | Instr.Local_set_box k ->
        Obj.box_set m.heap m.stack.(m.fp + k) m.acc;
        m.acc <- Word.void
    | Instr.Free_set_box k ->
        Obj.box_set m.heap (Obj.field m.heap m.clos (1 + k)) m.acc;
        m.acc <- Word.void
    | Instr.Global_ref cell ->
        let w = Heap.read_cell m.heap cell in
        if Word.equal w Word.unbound then
          error "variable %s is not bound" (global_name m cell);
        m.acc <- w
    | Instr.Global_set cell ->
        if Word.equal (Heap.read_cell m.heap cell) Word.unbound then
          error "cannot set! unbound variable %s" (global_name m cell);
        Heap.write_cell m.heap cell m.acc;
        m.acc <- Word.void
    | Instr.Global_define cell -> Heap.write_cell m.heap cell m.acc
    | Instr.Push -> push m m.acc
    | Instr.Box_local k -> m.stack.(m.fp + k) <- Obj.make_box m.heap m.stack.(m.fp + k)
    | Instr.Make_closure { code_id; nfree } ->
        let c = make_closure_obj m ~code_id ~nfree in
        for j = 0 to nfree - 1 do
          Obj.set_field m.heap c (1 + j) m.stack.(m.sp - nfree + j)
        done;
        m.sp <- m.sp - nfree;
        m.acc <- c
    | Instr.Branch_false target -> if Word.is_false m.acc then pc := target
    | Instr.Jump target -> pc := target
    | Instr.Call n -> do_call m instrs pc ~tail:false n
    | Instr.Tail_call n -> do_call m instrs pc ~tail:true n
    | Instr.Return -> do_return m instrs pc ~base
    | Instr.Halt ->
        if Vec.Poly.length m.control <> base then error "halt with pending frames";
        halted := true
  done;
  m.acc

and do_return m instrs pc ~base =
  if Vec.Poly.length m.control <= base then error "return past base frame";
  let f = Vec.Poly.pop m.control in
  m.sp <- m.fp;
  m.fp <- f.ret_fp;
  m.clos <- f.ret_clos;
  m.cur_code_id <- f.ret_code_id;
  m.cur_clause <- f.ret_clause;
  instrs := f.ret_instrs;
  pc := f.ret_pc

and do_call m instrs pc ~tail n =
  (* Safepoint: everything live is rooted (stack, acc = callee, control). *)
  Runtime.safepoint m.heap;
  let callee = ref m.acc and nargs = ref n in
  let again = ref true in
  while !again do
    again := false;
    let callee_w = !callee and n = !nargs in
    if is_continuation m callee_w then begin
      (* Invoking a reified continuation: one value, then jump. *)
      if n <> 1 then error "continuation: expected 1 value, got %d" n;
      let v = m.stack.(m.sp - 1) in
      m.sp <- m.sp - 1;
      reinstate_continuation m instrs pc callee_w v
    end
    else begin
    if not (is_closure m callee_w) then
      error "attempt to apply non-procedure: %s" (Printer.to_string m.heap callee_w);
    match prim_of_closure m callee_w with
    | Some prim ->
        if
          String.equal prim.pname "call-with-current-continuation"
          || String.equal prim.pname "call/cc"
        then begin
          if n <> 1 then error "call/cc: expected 1 argument";
          let f = m.stack.(m.sp - 1) in
          m.sp <- m.sp - 1;
          let k = capture_continuation m instrs pc ~tail in
          push m k;
          callee := f;
          nargs := 1;
          again := true
        end
        else if String.equal prim.pname "apply" then begin
          (* apply: (apply proc arg ... lst): spread the final list. *)
          if n < 2 then error "apply: needs at least 2 arguments";
          let proc = m.stack.(m.sp - n) in
          let lst = m.stack.(m.sp - 1) in
          (* Shift the middle args down over proc's slot. *)
          for j = 0 to n - 3 do
            m.stack.(m.sp - n + j) <- m.stack.(m.sp - n + 1 + j)
          done;
          m.sp <- m.sp - 2;
          let extra = ref 0 in
          let rec spread l =
            if not (Word.is_nil l) then begin
              if not (Word.is_pair_ptr l) then error "apply: improper argument list";
              push m (Obj.car m.heap l);
              incr extra;
              spread (Obj.cdr m.heap l)
            end
          in
          spread lst;
          callee := proc;
          nargs := n - 2 + !extra;
          again := true
        end
        else begin
          if
            n < prim.arity_min
            || (prim.arity_max >= 0 && n > prim.arity_max)
          then error "%s: wrong number of arguments (%d)" prim.pname n;
          let args = Array.init n (fun j -> m.stack.(m.sp - n + j)) in
          m.sp <- m.sp - n;
          m.acc <- prim.fn m args;
          if tail then do_return m instrs pc ~base:0
        end
    | None ->
        let code_id = Word.to_fixnum (Obj.field m.heap callee_w 0) in
        let code = Vec.Poly.get m.codes code_id in
        (match select_clause code n with
        | None -> error "%s: no clause for %d arguments" code.Instr.name n
        | Some (clause, clause_idx) ->
            if tail then begin
              (* Slide the arguments down onto the current frame. *)
              for j = 0 to n - 1 do
                m.stack.(m.fp + j) <- m.stack.(m.sp - n + j)
              done;
              m.sp <- m.fp + n
            end
            else begin
              Vec.Poly.push m.control
                { ret_instrs = !instrs; ret_pc = !pc; ret_fp = m.fp;
                  ret_clos = m.clos; ret_code_id = m.cur_code_id;
                  ret_clause = m.cur_clause };
              m.fp <- m.sp - n
            end;
            m.cur_code_id <- code_id;
            m.cur_clause <- clause_idx;
            if clause.Instr.rest then begin
              if n < clause.Instr.required then
                error "%s: too few arguments" code.Instr.name;
              build_rest m ~required:clause.Instr.required ~n
            end;
            m.clos <- callee_w;
            instrs := clause.Instr.instrs;
            pc := 0)
    end
  done

(* ------------------------------------------------------------------ *)
(* Continuations                                                       *)

(* Layout of a reified continuation (typed object, code_continuation):
   0 value-stack snapshot (heap vector of words)
   1 control snapshot (heap vector, 5 slots per frame:
     code_id, clause, pc, fp, clos)
   2 fp at capture
   3 resume code id   4 resume clause   5 resume pc
   6 closure at capture *)

and capture_continuation m instrs pc ~tail =
  let h = m.heap in
  ignore instrs;
  (* Resume point.  Non-tail: just after the Call instruction of the
     current clause.  Tail: the current frame is about to be discarded, so
     the continuation resumes at the caller recorded in the top control
     frame — exactly what Return would do. *)
  let sp_snap, fp_snap, clos_snap, resume_code, resume_clause, resume_pc, skip_top =
    if not tail then (m.sp, m.fp, m.clos, m.cur_code_id, m.cur_clause, !pc, 0)
    else begin
      let depth = Vec.Poly.length m.control in
      if depth = 0 then error "call/cc: no caller to return to";
      let fr = Vec.Poly.get m.control (depth - 1) in
      (m.fp, fr.ret_fp, fr.ret_clos, fr.ret_code_id, fr.ret_clause, fr.ret_pc, 1)
    end
  in
  if resume_code < 0 then error "call/cc: cannot capture across a host boundary";
  let depth = Vec.Poly.length m.control - skip_top in
  (* Host-boundary frames cannot be reinstated; reject at capture time so
     the error points at the call/cc, not a later throw. *)
  for i = 0 to depth - 1 do
    if (Vec.Poly.get m.control i).ret_code_id < 0 then
      error "call/cc: cannot capture across a host boundary"
  done;
  let vstack = Obj.make_vector h ~len:sp_snap ~init:(Word.of_fixnum 0) in
  for i = 0 to sp_snap - 1 do
    Obj.vector_set h vstack i m.stack.(i)
  done;
  let control = Obj.make_vector h ~len:(depth * 5) ~init:(Word.of_fixnum 0) in
  for i = 0 to depth - 1 do
    let fr = Vec.Poly.get m.control i in
    Obj.vector_set h control ((i * 5) + 0) (Word.of_fixnum fr.ret_code_id);
    Obj.vector_set h control ((i * 5) + 1) (Word.of_fixnum fr.ret_clause);
    Obj.vector_set h control ((i * 5) + 2) (Word.of_fixnum fr.ret_pc);
    Obj.vector_set h control ((i * 5) + 3) (Word.of_fixnum fr.ret_fp);
    Obj.vector_set h control ((i * 5) + 4) fr.ret_clos
  done;
  let k = Obj.make_typed h ~code:Obj.code_continuation ~len:7 ~init:(Word.of_fixnum 0) () in
  Obj.set_field h k 0 vstack;
  Obj.set_field h k 1 control;
  Obj.set_field h k 2 (Word.of_fixnum fp_snap);
  Obj.set_field h k 3 (Word.of_fixnum resume_code);
  Obj.set_field h k 4 (Word.of_fixnum resume_clause);
  Obj.set_field h k 5 (Word.of_fixnum resume_pc);
  Obj.set_field h k 6 clos_snap;
  k

and clause_instrs m ~code_id ~clause =
  let code = Vec.Poly.get m.codes code_id in
  (List.nth code.Instr.clauses clause).Instr.instrs

and reinstate_continuation m instrs pc k v =
  let h = m.heap in
  let vstack = Obj.field h k 0 in
  let control = Obj.field h k 1 in
  let sp_snap = Obj.vector_length h vstack in
  ensure_stack m sp_snap;
  for i = 0 to sp_snap - 1 do
    m.stack.(i) <- Obj.vector_ref h vstack i
  done;
  m.sp <- sp_snap;
  m.fp <- Word.to_fixnum (Obj.field h k 2);
  m.clos <- Obj.field h k 6;
  Vec.Poly.clear m.control;
  let nframes = Obj.vector_length h control / 5 in
  for i = 0 to nframes - 1 do
    let code_id = Word.to_fixnum (Obj.vector_ref h control ((i * 5) + 0)) in
    let clause = Word.to_fixnum (Obj.vector_ref h control ((i * 5) + 1)) in
    let ret_instrs =
      if code_id >= 0 then clause_instrs m ~code_id ~clause else [||]
    in
    Vec.Poly.push m.control
      {
        ret_instrs;
        ret_pc = Word.to_fixnum (Obj.vector_ref h control ((i * 5) + 2));
        ret_fp = Word.to_fixnum (Obj.vector_ref h control ((i * 5) + 3));
        ret_clos = Obj.vector_ref h control ((i * 5) + 4);
        ret_code_id = code_id;
        ret_clause = clause;
      }
  done;
  let resume_code = Word.to_fixnum (Obj.field h k 3) in
  let resume_clause = Word.to_fixnum (Obj.field h k 4) in
  m.cur_code_id <- resume_code;
  m.cur_clause <- resume_clause;
  instrs := clause_instrs m ~code_id:resume_code ~clause:resume_clause;
  pc := Word.to_fixnum (Obj.field h k 5);
  m.acc <- v

(* ------------------------------------------------------------------ *)
(* Re-entrant application (for collect-request handlers etc.)          *)

(* Call [clos_w] with [args] from OCaml: saves the register file on the
   (rooted) value stack, runs a nested interpreter activation, restores. *)
and apply_closure m clos_w args =
  (* Root everything we must restore. *)
  push m m.acc;
  push m m.clos;
  let saved_fp = m.fp and saved_sp_after = m.sp in
  let saved_code = m.cur_code_id and saved_clause = m.cur_clause in
  m.cur_code_id <- -1;
  m.cur_clause <- -1;
  List.iter (push m) args;
  m.acc <- clos_w;
  (* Synthetic caller whose next instruction is Halt: the callee's Return
     pops back to it and stops the nested activation. *)
  let synthetic = [| Instr.Call (List.length args); Instr.Halt |] in
  let result = enter m synthetic in
  (* enter runs from pc 0: executes the Call, the body, Return, Halt. *)
  m.cur_code_id <- saved_code;
  m.cur_clause <- saved_clause;
  m.fp <- saved_fp;
  m.sp <- saved_sp_after;
  m.clos <- m.stack.(m.sp - 1);
  m.acc <- m.stack.(m.sp - 2);
  m.sp <- m.sp - 2;
  result

(* Scheme-level error handling: run [thunk] (a closure, no arguments); if
   a Scheme error escapes, restore the register file to its state at entry
   and apply [handler] to the error message (a heap string).  This is what
   lets clean-up code signal errors without killing unrelated work -- one
   of the paper's design questions for finalization. *)
let call_with_error_handler m ~thunk ~handler =
  (* Root the handler across the thunk's execution. *)
  let handler_cell = Heap.new_cell m.heap handler in
  let saved_sp = m.sp and saved_fp = m.fp in
  let saved_depth = Vec.Poly.length m.control in
  let saved_code = m.cur_code_id and saved_clause = m.cur_clause in
  Fun.protect
    ~finally:(fun () -> Heap.free_cell m.heap handler_cell)
    (fun () ->
      match apply_closure m thunk [] with
      | v -> v
      | exception Error msg ->
          (* Unwind to the state at entry. *)
          m.sp <- saved_sp;
          m.fp <- saved_fp;
          while Vec.Poly.length m.control > saved_depth do
            ignore (Vec.Poly.pop m.control)
          done;
          m.cur_code_id <- saved_code;
          m.cur_clause <- saved_clause;
          m.acc <- Word.void;
          m.clos <- Word.nil;
          let msg_w = Obj.string_of_ocaml m.heap msg in
          apply_closure m (Heap.read_cell m.heap handler_cell) [ msg_w ])

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let run_code m (code : Instr.code) =
  match code.Instr.clauses with
  | [ clause ] ->
      (* Register the top-level block so continuations captured inside it
         can name their resume point. *)
      let id = add_code m code in
      let saved_fp = m.fp in
      m.fp <- m.sp;
      m.cur_code_id <- id;
      m.cur_clause <- 0;
      let result = enter m clause.Instr.instrs in
      m.cur_code_id <- -1;
      m.cur_clause <- -1;
      m.sp <- m.fp;
      m.fp <- saved_fp;
      result
  | _ -> error "bad top-level code"

(** Discard any in-flight activation state (after an error escaped the
    interpreter loop, e.g. in a REPL). *)
let reset m =
  m.sp <- 0;
  m.fp <- 0;
  m.acc <- Word.void;
  m.clos <- Word.nil;
  Vec.Poly.clear m.control

(** Evaluate one datum; returns the resulting heap word (valid until the
    next collection). *)
let eval_datum m d =
  let codes = Compile.compile_toplevel (linker m) d in
  List.fold_left (fun _ code -> run_code m code) Word.void codes

(** Evaluate every form in [src], returning the last result. *)
let eval_string m src =
  let data = Reader.read_all src in
  List.fold_left (fun _ d -> eval_datum m d) Word.void data
