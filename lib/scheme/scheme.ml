(** Façade: building a ready-to-use Scheme system.

    {[
      let m = Scheme.create ()
      let _ = Scheme.eval m "(define G (make-guardian))"
    ]} *)

module Sexpr = Sexpr
module Lexer = Lexer
module Reader = Reader
module Instr = Instr
module Compile = Compile
module Machine = Machine
module Printer = Printer
module Primitives = Primitives
module Scheme_image = Scheme_image

(** A machine with primitives and the prelude installed. *)
let create ?ctx ?config () =
  let m = Machine.create ?ctx ?config () in
  Primitives.install m;
  ignore (Machine.eval_string m Prelude.source);
  m

(** Checkpoint a whole system to a [gbc-image/1] file. *)
let save_image m path = Scheme_image.save m path

(** Rebuild a full Scheme system from a [gbc-image/1] file: primitives
    reinstalled, prelude {e not} re-evaluated (its definitions are global
    bindings restored with the heap).
    @raise Gbc_image.Image.Error on a corrupt or incompatible image. *)
let load_image ?config path =
  Scheme_image.load ?config ~install:Primitives.install path

(** Evaluate [src] and return the last form's value as a printed string. *)
let eval m src = Printer.to_string (Machine.heap m) (Machine.eval_string m src)

(** Evaluate [src] for effect; return console output produced. *)
let eval_output m src =
  Machine.clear_console m;
  ignore (Machine.eval_string m src);
  Machine.console_output m
