(** The Scheme prelude: library procedures defined in Scheme itself,
    including the paper's user-level guardian interface (a guardian {e is a
    procedure}: call it with an object to register, with no arguments to
    retrieve) and the paper's transport-guardian implementation, verbatim
    modulo lexical trivia. *)

let source =
  {scheme|
(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caddr p) (car (cddr p)))

(define (list? l)
  (cond [(null? l) #t]
        [(pair? l) (list? (cdr l))]
        [else #f]))

(define (length l)
  (let loop ([l l] [n 0])
    (if (null? l) n (loop (cdr l) (+ n 1)))))

(define (append2 a b)
  (if (null? a) b (cons (car a) (append2 (cdr a) b))))

(define (append . ls)
  (cond [(null? ls) '()]
        [(null? (cdr ls)) (car ls)]
        [else (append2 (car ls) (apply append (cdr ls)))]))

(define (reverse l)
  (let loop ([l l] [acc '()])
    (if (null? l) acc (loop (cdr l) (cons (car l) acc)))))

(define (list-tail l n)
  (if (= n 0) l (list-tail (cdr l) (- n 1))))

(define (list-ref l n) (car (list-tail l n)))

(define (memq x l)
  (cond [(null? l) #f]
        [(eq? x (car l)) l]
        [else (memq x (cdr l))]))

(define (memv x l)
  (cond [(null? l) #f]
        [(eqv? x (car l)) l]
        [else (memv x (cdr l))]))

(define (member x l)
  (cond [(null? l) #f]
        [(equal? x (car l)) l]
        [else (member x (cdr l))]))

(define (assq x l)
  (cond [(null? l) #f]
        [(eq? x (caar l)) (car l)]
        [else (assq x (cdr l))]))

(define (assv x l)
  (cond [(null? l) #f]
        [(eqv? x (caar l)) (car l)]
        [else (assv x (cdr l))]))

(define (assoc x l)
  (cond [(null? l) #f]
        [(equal? x (caar l)) (car l)]
        [else (assoc x (cdr l))]))

(define (remq x l)
  (cond [(null? l) '()]
        [(eq? x (car l)) (remq x (cdr l))]
        [else (cons (car l) (remq x (cdr l)))]))

(define (map1 f l)
  (if (null? l) '() (cons (f (car l)) (map1 f (cdr l)))))

(define (map f l . more)
  (if (null? more)
      (map1 f l)
      (let loop ([a l] [b (car more)])
        (if (or (null? a) (null? b))
            '()
            (cons (f (car a) (car b)) (loop (cdr a) (cdr b)))))))

(define (for-each f l)
  (if (null? l)
      (void)
      (begin (f (car l)) (for-each f (cdr l)))))

(define (filter pred l)
  (cond [(null? l) '()]
        [(pred (car l)) (cons (car l) (filter pred (cdr l)))]
        [else (filter pred (cdr l))]))

(define (fold-left f acc l)
  (if (null? l) acc (fold-left f (f acc (car l)) (cdr l))))

(define (iota n)
  (let loop ([i (- n 1)] [acc '()])
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (abs n) (if (< n 0) (- 0 n) n))
(define (min a b) (if (< a b) a b))
(define (max a b) (if (> a b) a b))
(define (1+ n) (+ n 1))
(define (1- n) (- n 1))
(define (even? n) (= (remainder n 2) 0))
(define (odd? n) (not (even? n)))

(define (vector->list v)
  (let loop ([i (- (vector-length v) 1)] [acc '()])
    (if (< i 0) acc (loop (- i 1) (cons (vector-ref v i) acc)))))

(define (list->vector l)
  (let ([v (make-vector (length l) 0)])
    (let loop ([l l] [i 0])
      (if (null? l)
          v
          (begin (vector-set! v i (car l)) (loop (cdr l) (+ i 1)))))))

;; The paper's user-level guardian interface: guardians are procedures.
;; (make-guardian) -> guardian; (g obj) registers, (g obj rep) registers
;; with a representative (Section 5), (g) retrieves or returns #f.
;; Registry mapping make-guardian closures back to their raw guardian
;; objects, so guardian-stats can accept either form.  Entries are
;; ephemerons keyed by the closure: the registry keeps neither the
;; closure nor (crucially) its guardian alive, so dropping the procedure
;; still cancels the guardian's registrations.
(define %guardian-registry '())

(define (make-guardian)
  (let* ([g (%make-guardian)]
         [proc (case-lambda
                 [() (%guardian-retrieve g)]
                 [(obj) (%guardian-register g obj)]
                 [(obj rep) (%guardian-register-rep g obj rep)])])
    (set! %guardian-registry (cons (ephemeron-cons proc g) %guardian-registry))
    proc))

;; Lifecycle metrics as a vector #(registrations resurrections drops polls
;; hits latency-sum latency-max pending).  Accepts a raw guardian object or
;; the procedure returned by make-guardian.
(define (guardian-stats g)
  (if (guardian? g)
      (%guardian-stats g)
      (let loop ([r %guardian-registry])
        (if (null? r)
            (error "guardian-stats: not a guardian")
            (if (eq? (car (car r)) g)
                (%guardian-stats (cdr (car r)))
                (loop (cdr r)))))))

;; Conservative transport guardians, exactly as in the paper (Section 3).
(define (make-transport-guardian)
  (let ([g (make-guardian)])
    (case-lambda
      [(x) (g (weak-cons x 0))]
      [() (let loop ([m (g)])
            (and m
                 (if (car m)
                     (begin (g m) (car m))
                     (loop (g)))))])))

;; Guarded hash tables, exactly as in the paper's Figure 1.  hash takes the
;; key and the table size and must be stable across collections.
(define make-guarded-hash-table
  (lambda (hash size)
    (let ([g (make-guardian)]
          [v (make-vector size '())])
      (lambda (key value)
        (let loop ([z (g)])
          (if z
              (let ([h (hash z size)])
                (let ([bucket (vector-ref v h)])
                  (vector-set! v h (remq (assq z bucket) bucket))
                  (loop (g))))
              (void)))
        (let ([h (hash key size)])
          (let ([bucket (vector-ref v h)])
            (let ([a (assq key bucket)])
              (if a
                  (cdr a)
                  (let ([a (weak-cons key value)])
                    (vector-set! v h (cons a bucket))
                    (g key)
                    (cdr a))))))))))

;; Will executors in the style of Racket, built on guardians: wills become
;; ready when the object is proven inaccessible; (will-execute e) runs one.
(define (make-will-executor)
  ;; The association list holds its objects through weak pairs so the
  ;; executor itself never keeps them alive; the will procedures sit in the
  ;; strong cdr and survive the object's death (the guardian saves the
  ;; object, so the weak car is intact when the will runs).
  (let ([g (make-guardian)]
        [wills '()])  ; list of (weak obj . procs), procs newest first
    (cons
      ;; register
      (lambda (obj proc)
        (let ([a (assq obj wills)])
          (if a
              (set-cdr! a (cons proc (cdr a)))
              (set! wills (cons (weak-cons obj (cons proc '())) wills))))
        (g obj))
      ;; execute: run one ready will, returning (proc obj)'s result or #f
      (lambda ()
        (let ([obj (g)])
          (if obj
              (let ([a (assq obj wills)])
                (if (and a (pair? (cdr a)))
                    (let ([proc (car (cdr a))])
                      (set-cdr! a (cdr (cdr a)))
                      (proc obj))
                    #f))
              #f))))))

(define (will-register we obj proc) ((car we) obj proc))
(define (will-execute we) ((cdr we)))

(define (list-copy l)
  (if (null? l) '() (cons (car l) (list-copy (cdr l)))))

(define (last-pair l)
  (if (pair? (cdr l)) (last-pair (cdr l)) l))

(define (vector-map f v)
  (let ([out (make-vector (vector-length v) 0)])
    (let loop ([i 0])
      (if (= i (vector-length v))
          out
          (begin
            (vector-set! out i (f (vector-ref v i)))
            (loop (+ i 1)))))))

(define (vector-for-each f v)
  (let loop ([i 0])
    (unless (= i (vector-length v))
      (f (vector-ref v i))
      (loop (+ i 1)))))

;; Stable merge sort; less? compares two elements.
(define (sort less? l)
  (define (merge a b)
    (cond [(null? a) b]
          [(null? b) a]
          [(less? (car b) (car a)) (cons (car b) (merge a (cdr b)))]
          [else (cons (car a) (merge (cdr a) b))]))
  (define (split l)
    (if (or (null? l) (null? (cdr l)))
        (cons l '())
        (let ([rest (split (cddr l))])
          (cons (cons (car l) (car rest))
                (cons (cadr l) (cdr rest))))))
  (if (or (null? l) (null? (cdr l)))
      l
      (let ([halves (split l)])
        (merge (sort less? (car halves)) (sort less? (cdr halves))))))

(define (string-join sep parts)
  (cond [(null? parts) ""]
        [(null? (cdr parts)) (car parts)]
        [else (string-append (car parts) sep (string-join sep (cdr parts)))]))

;; read one datum from a string
(define (read-from-string s)
  (let ([p (open-input-string s)])
    (let ([d (read p)])
      (close-input-port p)
      d)))

;; render a value with write into a string
(define (write-to-string v)
  (let ([p (open-output-string)])
    (write v p)
    (let ([s (get-output-string p)])
      (close-output-port p)
      s)))

;; ------------------------------------------------------------------
;; dynamic-wind, with full continuation rerooting: escaping or
;; re-entering a dynamic extent runs the after/before thunks along the
;; path between the two winder stacks.

(define %winders '())
(define %call/cc-prim call-with-current-continuation)

(define (%common-tail x y)
  (let ([lx (length x)] [ly (length y)])
    (let loop ([x (if (> lx ly) (list-tail x (- lx ly)) x)]
               [y (if (> ly lx) (list-tail y (- ly lx)) y)])
      (if (eq? x y) x (loop (cdr x) (cdr y))))))

(define (%do-wind new)
  (let ([tail (%common-tail new %winders)])
    ;; unwind: run afters from the current stack down to the shared tail
    (let unwind ([l %winders])
      (unless (eq? l tail)
        (set! %winders (cdr l))
        ((cdr (car l)))
        (unwind (cdr l))))
    ;; rewind: run befores from the shared tail up to the target stack
    (let rewind ([l new])
      (unless (eq? l tail)
        (rewind (cdr l))
        ((car (car l)))
        (set! %winders l)))))

(define (dynamic-wind before thunk after)
  (before)
  (set! %winders (cons (cons before after) %winders))
  (let ([ans (thunk)])
    (set! %winders (cdr %winders))
    (after)
    ans))

;; call/cc that cooperates with dynamic-wind: the continuation the user
;; receives reroots the winders before jumping.
(define call-with-current-continuation
  (let ([prim %call/cc-prim])
    (lambda (f)
      (prim
        (lambda (k)
          (f (let ([saved %winders])
               (lambda (v)
                 (unless (eq? saved %winders) (%do-wind saved))
                 (k v)))))))))

(define call/cc call-with-current-continuation)

;; Port conveniences built on dynamic-wind: the port is closed however the
;; body exits.
(define (call-with-output-file path proc)
  (let ([p (open-output-file path)])
    (dynamic-wind
      (lambda () (void))
      (lambda () (proc p))
      (lambda () (close-output-port p)))))

(define (call-with-input-file path proc)
  (let ([p (open-input-file path)])
    (dynamic-wind
      (lambda () (void))
      (lambda () (proc p))
      (lambda () (close-input-port p)))))

;; ------------------------------------------------------------------
;; Eq hash tables with the Section 3 rehashing discipline: keys hash by
;; address (eq-hash); a stored collection epoch (gc-count) detects that
;; objects may have moved, triggering a full rehash on the next access.
;; Strong entries; see make-guarded-hash-table for the weak, self-cleaning
;; variant.

(define (make-eq-hashtable)
  ;; representation: #(buckets epoch size)
  (vector (make-vector 32 '()) (gc-count) 0))

(define (%eqht-index key n) (modulo (eq-hash key) n))

(define (%eqht-rehash! ht)
  (let* ([old (vector-ref ht 0)]
         [n (vector-length old)]
         [new (make-vector n '())])
    (let loop ([i 0])
      (unless (= i n)
        (for-each
          (lambda (entry)
            (let ([j (%eqht-index (car entry) n)])
              (vector-set! new j (cons entry (vector-ref new j)))))
          (vector-ref old i))
        (loop (+ i 1))))
    (vector-set! ht 0 new)
    (vector-set! ht 1 (gc-count))))

(define (%eqht-fresh! ht)
  (unless (= (vector-ref ht 1) (gc-count))
    (%eqht-rehash! ht)))

(define (hashtable-set! ht key value)
  (%eqht-fresh! ht)
  (let* ([v (vector-ref ht 0)]
         [i (%eqht-index key (vector-length v))]
         [a (assq key (vector-ref v i))])
    (if a
        (set-cdr! a value)
        (begin
          (vector-set! v i (cons (cons key value) (vector-ref v i)))
          (vector-set! ht 2 (+ (vector-ref ht 2) 1))))))

(define (hashtable-ref ht key default)
  (%eqht-fresh! ht)
  (let* ([v (vector-ref ht 0)]
         [a (assq key (vector-ref v (%eqht-index key (vector-length v))))])
    (if a (cdr a) default)))

(define (hashtable-contains? ht key)
  (%eqht-fresh! ht)
  (let ([v (vector-ref ht 0)])
    (if (assq key (vector-ref v (%eqht-index key (vector-length v)))) #t #f)))

(define (hashtable-delete! ht key)
  (%eqht-fresh! ht)
  (let* ([v (vector-ref ht 0)]
         [i (%eqht-index key (vector-length v))]
         [a (assq key (vector-ref v i))])
    (when a
      (vector-set! v i (remq a (vector-ref v i)))
      (vector-set! ht 2 (- (vector-ref ht 2) 1)))))

(define (hashtable-size ht) (vector-ref ht 2))
|scheme}
