(* Saving and restoring a whole Scheme system as a [gbc-image/1] file.

   The heap image carries the heap itself (globals, symbols, guardians,
   everything the runtime serializes); this module layers the machine's
   OCaml-side state on top as named extra sections:

     "scheme/consts"  the constants table, as relocated heap words
     "scheme/codes"   the compiled-code table, as flat bytecode

   and the image's symbol section is the interning table, so symbols
   keep their identity across a restore.  A restored system needs its
   primitives reinstalled (OCaml closures do not serialize); the
   [install] callback — normally [Primitives.install] — does that.
   Installation order is fixed, so the prim ids baked into primitive
   closures in the restored heap resolve against the reinstalled table,
   and the guarded [Machine.define_prim] allocates nothing for an
   already-bound name, which keeps save -> load -> save byte-identical.

   Instruction operands (constant indices, global-cell indices, code
   ids) are all index-stable across an image: the image preserves global
   cells by index and this module restores both tables in order. *)

open Gbc_runtime
module Image = Gbc_image.Image

let codes_section = "scheme/codes"
let consts_section = "scheme/consts"

let corrupt fmt =
  Format.kasprintf (fun s -> raise (Image.Error ("gbc-image: " ^ s))) fmt

(* --- bytecode codec -------------------------------------------------- *)

(* Per instruction: u8 opcode, then one i64 per operand (two for
   Make_closure).  Imm carries a raw word, which for immediates needs the
   full width.  The numbering below is part of the scheme/codes section
   format; never reorder it. *)

let opcode : Instr.instr -> int = function
  | Instr.Const _ -> 0
  | Instr.Imm _ -> 1
  | Instr.Local_ref _ -> 2
  | Instr.Free_ref _ -> 3
  | Instr.Unbox -> 4
  | Instr.Local_set_box _ -> 5
  | Instr.Free_set_box _ -> 6
  | Instr.Global_ref _ -> 7
  | Instr.Global_set _ -> 8
  | Instr.Global_define _ -> 9
  | Instr.Push -> 10
  | Instr.Box_local _ -> 11
  | Instr.Make_closure _ -> 12
  | Instr.Branch_false _ -> 13
  | Instr.Jump _ -> 14
  | Instr.Call _ -> 15
  | Instr.Tail_call _ -> 16
  | Instr.Return -> 17
  | Instr.Halt -> 18

let add_u8 b n = Buffer.add_uint8 b (n land 0xff)
let add_u32 b n = Buffer.add_int32_le b (Int32.of_int n)
let add_i64 b n = Buffer.add_int64_le b (Int64.of_int n)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let encode_instr b i =
  add_u8 b (opcode i);
  match i with
  | Instr.Const n | Instr.Imm n | Instr.Local_ref n | Instr.Free_ref n
  | Instr.Local_set_box n | Instr.Free_set_box n | Instr.Global_ref n
  | Instr.Global_set n | Instr.Global_define n | Instr.Box_local n
  | Instr.Branch_false n | Instr.Jump n | Instr.Call n | Instr.Tail_call n
    ->
      add_i64 b n
  | Instr.Make_closure { code_id; nfree } ->
      add_i64 b code_id;
      add_i64 b nfree
  | Instr.Unbox | Instr.Push | Instr.Return | Instr.Halt -> ()

let encode_codes (codes : Instr.code array) : string =
  let b = Buffer.create 4096 in
  add_u32 b (Array.length codes);
  Array.iter
    (fun (c : Instr.code) ->
      add_str b c.Instr.name;
      add_u32 b (List.length c.Instr.clauses);
      List.iter
        (fun (cl : Instr.clause) ->
          add_u32 b cl.Instr.required;
          add_u8 b (if cl.Instr.rest then 1 else 0);
          add_u32 b (Array.length cl.Instr.instrs);
          Array.iter (encode_instr b) cl.Instr.instrs)
        c.Instr.clauses)
    codes;
  Buffer.contents b

(* The section sits inside the image's CRC, so corruption is caught
   before we get here; the bounds checks below guard against a section
   written by something that is not this codec. *)
type rd = { s : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.s then
    corrupt "scheme/codes section is truncated"

let ru8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let ru32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.s r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let ri64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let rstr r =
  let n = ru32 r in
  need r n;
  let v = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  v

let decode_instr r : Instr.instr =
  match ru8 r with
  | 0 -> Instr.Const (ri64 r)
  | 1 -> Instr.Imm (ri64 r)
  | 2 -> Instr.Local_ref (ri64 r)
  | 3 -> Instr.Free_ref (ri64 r)
  | 4 -> Instr.Unbox
  | 5 -> Instr.Local_set_box (ri64 r)
  | 6 -> Instr.Free_set_box (ri64 r)
  | 7 -> Instr.Global_ref (ri64 r)
  | 8 -> Instr.Global_set (ri64 r)
  | 9 -> Instr.Global_define (ri64 r)
  | 10 -> Instr.Push
  | 11 -> Instr.Box_local (ri64 r)
  | 12 ->
      let code_id = ri64 r in
      let nfree = ri64 r in
      Instr.Make_closure { code_id; nfree }
  | 13 -> Instr.Branch_false (ri64 r)
  | 14 -> Instr.Jump (ri64 r)
  | 15 -> Instr.Call (ri64 r)
  | 16 -> Instr.Tail_call (ri64 r)
  | 17 -> Instr.Return
  | 18 -> Instr.Halt
  | op -> corrupt "scheme/codes: unknown opcode %d" op

let decode_codes (s : string) : Instr.code array =
  let r = { s; pos = 0 } in
  let ncodes = ru32 r in
  let codes =
    Array.init ncodes (fun _ -> { Instr.name = ""; clauses = [] })
  in
  for ci = 0 to ncodes - 1 do
    let name = rstr r in
    let nclauses = ru32 r in
    let clauses = ref [] in
    for _ = 1 to nclauses do
      let required = ru32 r in
      let rest = ru8 r <> 0 in
      let ninstrs = ru32 r in
      let instrs = Array.make ninstrs Instr.Halt in
      for i = 0 to ninstrs - 1 do
        instrs.(i) <- decode_instr r
      done;
      clauses := { Instr.required; rest; instrs } :: !clauses
    done;
    codes.(ci) <- { Instr.name; clauses = List.rev !clauses }
  done;
  if r.pos <> String.length s then
    corrupt "scheme/codes: %d trailing bytes" (String.length s - r.pos);
  codes

(* --- save ------------------------------------------------------------ *)

let sections m =
  let symbols = Symtab.entries (Machine.symtab m) in
  let extras =
    [
      (consts_section, { Image.xwords = Machine.image_consts m; xbytes = "" });
      ( codes_section,
        { Image.xwords = [||]; xbytes = encode_codes (Machine.image_codes m) }
      );
    ]
  in
  (symbols, extras)

let save_string m =
  let symbols, extras = sections m in
  Image.save_string ~symbols ~extras (Machine.heap m)

let save m path =
  let symbols, extras = sections m in
  Image.save_image ~symbols ~extras (Machine.heap m) path

(* --- load ------------------------------------------------------------ *)

let restore ~install (l : Image.loaded) =
  let section name =
    match List.assoc_opt name l.Image.extras with
    | Some x -> x
    | None -> corrupt "not a Scheme system image (missing %s section)" name
  in
  let consts = (section consts_section).Image.xwords in
  let codes = decode_codes (section codes_section).Image.xbytes in
  let ctx = Gbc.Ctx.of_heap l.Image.heap in
  let m = Machine.create ~ctx () in
  Machine.restore_image_state m ~codes ~consts ~symbols:l.Image.symbols;
  (* Primitives are OCaml closures: reinstall.  The prelude is NOT
     re-evaluated — its definitions are global bindings living in the
     restored heap. *)
  install m;
  m

let load ?config ~install path = restore ~install (Image.load_image ?config path)

let load_string ?config ~install s =
  restore ~install (Image.load_string ?config s)
