(** The torture harness's reference collector: a trivially-correct,
    non-generational semispace model of the object graph the driver builds
    on the real heap.

    The oracle keeps one record per driver-created object and collects by
    full graph traversal — no remembered set, no cards, no Cheney queue, no
    tconc cells.  Each node carries a {e generation annotation} maintained
    purely from the trace (allocations are generation 0; survivors of a
    collection of generations [0..g] move to the target generation), and a
    collection of generation [g] treats every node of an older generation
    as a root.  That one rule makes the simple model {e exact} with respect
    to the generational heap — old floating garbage keeps its referents
    alive, dirty-card scanning keeps young objects referenced from old ones
    alive — so after every collection the driver can compare liveness,
    structure, weak/ephemeron breaking, guardian queues and promotions
    bit for bit.

    The guardian pass mirrors the paper's Section 4 semantics including its
    order-sensitive detail: the hold/final partition is made {e once}, in
    protected-list order, and a held entry's representative is kept alive
    {e shallowly} at partition time (the collector's [copy] of the rep),
    which can flip a later entry of the same object to "held".
    Resurrection is a least fixpoint, so guardian-of-guardian chains and
    dropped-guardian cancellation come out exactly as the collector's
    worklist fixpoint computes them. *)

open Gbc_runtime

type value =
  | Imm of Word.t  (** any non-pointer word, stored verbatim *)
  | Ref of int  (** a node id *)

type kind =
  | Pair
  | Weakpair  (** car weak, cdr strong *)
  | Ephemeron  (** key weak-ish; value traced only while the key lives *)
  | Vector
  | Box
  | Tconc  (** mutator-driven queue; [queue] is front-first *)
  | Guardian  (** [queue] is the pending (saved) list *)

type node = {
  id : int;
  kind : kind;
  fields : value array;
      (** [Pair]/[Weakpair]/[Ephemeron]: [[|car; cdr|]]; [Vector]:
          elements; [Box]: one field; empty for [Tconc]/[Guardian] *)
  mutable queue : value list;
  mutable gen : int;
  mutable alive : bool;
}

type t

val create : max_generation:int -> generation_friendly_guardians:bool -> t
val node_count : t -> int
val node : t -> int -> node

val alloc : t -> kind -> value array -> int
(** New node in generation 0; returns its id. *)

val set_field : t -> int -> int -> value -> unit
val enqueue : t -> int -> value -> unit
val dequeue : t -> int -> value option

val register : t -> guardian:int -> obj:value -> rep:value -> unit
(** Mirror of {!Guardian.register_with_rep}: the entry joins generation
    0's protected list. *)

val pending : t -> int -> value list
(** A guardian's saved-object queue (resurrection order within one
    collection is unspecified; compare as a multiset). *)

val remove_pending : t -> guardian:int -> f:(value -> bool) -> bool
(** Remove the first pending element satisfying [f]; [false] if none
    does.  Mirrors one {!Guardian.retrieve}. *)

val collect : t -> roots:int list -> gen:int -> target:int -> unit
(** Model a collection of generations [0..gen] promoting survivors to
    [target]: trace from [roots] plus every older node, run the guardian
    partition/resurrection and the ephemeron fixpoint, break weak cars and
    dead-key ephemerons, kill unreached young nodes, promote the rest. *)
