(** Splitmix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, full-period,
    well-mixed generator whose whole state is one 64-bit word.  Chosen over
    [Stdlib.Random] because its output is defined by the algorithm alone —
    the same seed yields the same op trace on every platform, which the
    harness's reproducibility contract requires. *)

type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* The modulo bias over a 63-bit range is < 2^-50 for any bound the
     harness uses; determinism matters here, uniformity to the last bit
     does not. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))
