(** Deterministic pseudo-random numbers for the torture harness.

    A self-contained splitmix64 over [Int64], so a seed produces the exact
    same stream on every platform and OCaml version — [Stdlib.Random]'s
    stream is not pinned across releases, and bit-for-bit reproducibility
    of `gbc_torture --seed S` is an acceptance criterion. *)

type t

val make : int -> t
(** A generator seeded with [seed].  Distinct seeds give independent
    streams. *)

val copy : t -> t
(** An independent generator continuing from the same state. *)

val next : t -> int64
(** The next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound - 1].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** A uniformly drawn element.  @raise Invalid_argument on [[||]]. *)
