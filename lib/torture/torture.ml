(** See torture.mli for the architecture.  The invariants the driver
    leans on:

    - heap action first, oracle mirror second: an op that dies with
      [Heap.Out_of_memory] has not touched the oracle, so recovery only
      needs to drop the op (partial multi-allocation constructors leave
      plain garbage behind, which the next collection reclaims);
    - operand selectors resolve against the current live set ([sel mod
      population]), never against absolute ids, so deleting ops from a
      trace keeps the remainder interpretable — what the shrinker needs;
    - no wall clock, no [Stdlib.Random], no iteration over hash tables
      anywhere on the result path. *)

open Gbc_runtime
module Image = Gbc_image.Image

type value = Oracle.value = Imm of Word.t | Ref of int

type op =
  | Alloc_pair of int * int
  | Alloc_weak of int * int
  | Alloc_ephemeron of int * int
  | Alloc_vector of int * int
  | Alloc_box of int
  | Alloc_tconc
  | Alloc_guardian
  | Set_car of int * int
  | Set_cdr of int * int
  | Vector_set of int * int * int
  | Box_set of int * int
  | Tconc_enqueue of int * int
  | Tconc_dequeue of int
  | Register of int * int
  | Register_rep of int * int * int
  | Poll of int
  | Unroot of int
  | Mutation_storm of int * int
  | Checkpoint
  | Collect of int

let pp_op ppf = function
  | Alloc_pair (a, b) -> Format.fprintf ppf "alloc-pair %d %d" a b
  | Alloc_weak (a, b) -> Format.fprintf ppf "alloc-weak %d %d" a b
  | Alloc_ephemeron (a, b) -> Format.fprintf ppf "alloc-ephemeron %d %d" a b
  | Alloc_vector (a, b) -> Format.fprintf ppf "alloc-vector %d %d" a b
  | Alloc_box a -> Format.fprintf ppf "alloc-box %d" a
  | Alloc_tconc -> Format.fprintf ppf "alloc-tconc"
  | Alloc_guardian -> Format.fprintf ppf "alloc-guardian"
  | Set_car (a, b) -> Format.fprintf ppf "set-car %d %d" a b
  | Set_cdr (a, b) -> Format.fprintf ppf "set-cdr %d %d" a b
  | Vector_set (a, b, c) -> Format.fprintf ppf "vector-set %d %d %d" a b c
  | Box_set (a, b) -> Format.fprintf ppf "box-set %d %d" a b
  | Tconc_enqueue (a, b) -> Format.fprintf ppf "tconc-enqueue %d %d" a b
  | Tconc_dequeue a -> Format.fprintf ppf "tconc-dequeue %d" a
  | Register (a, b) -> Format.fprintf ppf "register %d %d" a b
  | Register_rep (a, b, c) -> Format.fprintf ppf "register-rep %d %d %d" a b c
  | Poll a -> Format.fprintf ppf "poll %d" a
  | Unroot a -> Format.fprintf ppf "unroot %d" a
  | Mutation_storm (a, b) -> Format.fprintf ppf "mutation-storm %d %d" a b
  | Checkpoint -> Format.fprintf ppf "checkpoint"
  | Collect a -> Format.fprintf ppf "collect %d" a

(* ------------------------------------------------------------------ *)
(* Driver state                                                        *)

exception Fail of string

let failf fmt = Format.kasprintf (fun s -> raise (Fail s)) fmt

type tracked = {
  oid : int;  (** oracle node id *)
  mutable word : Word.t;  (** current heap word (weak-scanner maintained) *)
  mutable halive : bool;  (** heap-side liveness (weak-scanner maintained) *)
  mutable cell : int;  (** heap root cell id, or -1 when unrooted *)
}

type st = {
  mutable h : Heap.t;  (** replaced wholesale by a [Checkpoint] op *)
  o : Oracle.t;
  mutable nodes : tracked array;
  mutable nnodes : int;
  mutable collections : int;
  mutable verify_checks : int;
  mutable comparisons : int;
  mutable oom_recoveries : int;
  mutable checkpoints : int;
}

(* The weak scanner keeps every tracked word current without keeping
   anything alive: it runs after each collection's weak pass.  Registered
   once per heap — again after every checkpoint swap. *)
let register_tracker st =
  ignore
    (Heap.add_weak_scanner st.h (fun lookup ->
         for i = 0 to st.nnodes - 1 do
           let tr = st.nodes.(i) in
           if tr.halive then
             match lookup tr.word with
             | Some w -> tr.word <- w
             | None -> tr.halive <- false
         done)
      : int)

let new_state config =
  let h = Heap.create ~config () in
  let o =
    Oracle.create ~max_generation:config.Config.max_generation
      ~generation_friendly_guardians:config.Config.generation_friendly_guardians
  in
  let st =
    { h; o; nodes = [||]; nnodes = 0; collections = 0; verify_checks = 0;
      comparisons = 0; oom_recoveries = 0; checkpoints = 0 }
  in
  register_tracker st;
  st

let track st word rooted =
  let oid = st.nnodes in
  let cell = if rooted then Heap.new_cell st.h word else -1 in
  let tr = { oid; word; halive = true; cell } in
  if st.nnodes = Array.length st.nodes then begin
    let bigger = Array.make (max 64 (2 * st.nnodes)) tr in
    Array.blit st.nodes 0 bigger 0 st.nnodes;
    st.nodes <- bigger
  end;
  st.nodes.(oid) <- tr;
  st.nnodes <- oid + 1;
  oid

let word_of st = function
  | Imm w -> w
  | Ref id ->
      let tr = st.nodes.(id) in
      if not tr.halive then failf "oracle refers to heap-dead node %d" id;
      tr.word

(* Candidate sets, in ascending id order (deterministic). *)
let ids_where st p =
  let acc = ref [] in
  for id = st.nnodes - 1 downto 0 do
    if p id then acc := id :: !acc
  done;
  Array.of_list !acc

let alive_ids st = ids_where st (fun id -> st.nodes.(id).halive)
let rooted_ids st = ids_where st (fun id -> st.nodes.(id).halive && st.nodes.(id).cell >= 0)

let rooted_of st ks =
  ids_where st (fun id ->
      st.nodes.(id).halive && st.nodes.(id).cell >= 0
      && List.mem (Oracle.node st.o id).Oracle.kind ks)

(* A value selector: ~1/4 immediates, otherwise any live node. *)
let resolve_value st sel =
  let cand = alive_ids st in
  if sel mod 4 = 0 || Array.length cand = 0 then Imm (Word.of_fixnum (sel land 0xffff))
  else Ref cand.((sel / 4) mod Array.length cand)

let pick_rooted st ks sel =
  let cand = rooted_of st ks in
  if Array.length cand = 0 then None else Some cand.(sel mod Array.length cand)

(* ------------------------------------------------------------------ *)
(* Collection + differential comparison                                *)

let check_words ~what ~id heap_w oracle_w =
  if not (Word.equal heap_w oracle_w) then
    failf "divergence at node %d %s: heap %a vs oracle %a" id what Word.pp heap_w Word.pp
      oracle_w

let compare_all st ~gen:_ =
  st.comparisons <- st.comparisons + 1;
  for id = 0 to st.nnodes - 1 do
    let tr = st.nodes.(id) in
    let nd = Oracle.node st.o id in
    if tr.halive <> nd.Oracle.alive then
      failf "liveness divergence at node %d: heap %b vs oracle %b" id tr.halive
        nd.Oracle.alive;
    if tr.halive then begin
      let w = tr.word in
      let hgen = Heap.generation_of_word st.h w in
      if hgen <> nd.Oracle.gen then
        failf "generation divergence at node %d: heap %d vs oracle %d" id hgen
          nd.Oracle.gen;
      match nd.Oracle.kind with
      | Oracle.Pair | Oracle.Weakpair | Oracle.Ephemeron ->
          check_words ~what:"car" ~id (Obj.car st.h w) (word_of st nd.Oracle.fields.(0));
          check_words ~what:"cdr" ~id (Obj.cdr st.h w) (word_of st nd.Oracle.fields.(1))
      | Oracle.Vector ->
          let len = Array.length nd.Oracle.fields in
          if Obj.vector_length st.h w <> len then
            failf "vector length divergence at node %d" id;
          for i = 0 to len - 1 do
            check_words ~what:(Printf.sprintf "slot %d" i) ~id
              (Obj.vector_ref st.h w i)
              (word_of st nd.Oracle.fields.(i))
          done
      | Oracle.Box ->
          check_words ~what:"box" ~id (Obj.box_ref st.h w) (word_of st nd.Oracle.fields.(0))
      | Oracle.Tconc ->
          (* Mutator-only queue: order is exact. *)
          let hs = Tconc.to_list st.h w in
          let os = List.map (word_of st) nd.Oracle.queue in
          if not (List.length hs = List.length os && List.for_all2 Word.equal hs os) then
            failf "tconc contents divergence at node %d (%d vs %d elements)" id
              (List.length hs) (List.length os)
      | Oracle.Guardian ->
          (* Resurrection order within one collection is scheduling detail;
             the saved multiset is the contract. *)
          let hs = List.sort compare (Guardian.pending_list st.h w) in
          let os = List.sort compare (List.map (word_of st) nd.Oracle.queue) in
          if hs <> os then
            failf "guardian pending divergence at node %d (%d vs %d pending)" id
              (List.length hs) (List.length os)
    end
  done

let do_collect st gen =
  let roots = Array.to_list (rooted_ids st) in
  st.collections <- st.collections + 1;
  let outcome = Collector.collect st.h ~gen in
  st.verify_checks <- st.verify_checks + 1;
  (match Verify.verify st.h with
  | [] -> ()
  | { Verify.what; where } :: rest ->
      failf "verify: %s (%s)%s" what where
        (if rest = [] then "" else Printf.sprintf " and %d more" (List.length rest)));
  Oracle.collect st.o ~roots ~gen ~target:outcome.Collector.target;
  compare_all st ~gen

(* ------------------------------------------------------------------ *)
(* Op interpretation                                                   *)

let max_gen st = Heap.max_generation st.h

(* Collection targets skew young, like real schedules do. *)
let collect_gen st sel =
  let rec go g sel =
    if g >= max_gen st || sel mod 3 <> 0 then g else go (g + 1) (sel / 3)
  in
  go 0 sel

let vector_len sel = if sel mod 19 = 0 then 300 (* large-segment path *) else 1 + (sel mod 6)

let rec interp st op =
  match op with
  | Alloc_pair (a, b) ->
      let va = resolve_value st a and vb = resolve_value st b in
      let w = Obj.cons st.h (word_of st va) (word_of st vb) in
      let oid = Oracle.alloc st.o Oracle.Pair [| va; vb |] in
      ignore (track st w true : int);
      assert (oid = st.nnodes - 1)
  | Alloc_weak (a, b) ->
      let va = resolve_value st a and vb = resolve_value st b in
      let w = Obj.weak_cons st.h (word_of st va) (word_of st vb) in
      ignore (Oracle.alloc st.o Oracle.Weakpair [| va; vb |] : int);
      ignore (track st w true : int)
  | Alloc_ephemeron (a, b) ->
      let va = resolve_value st a and vb = resolve_value st b in
      let w = Obj.ephemeron_cons st.h (word_of st va) (word_of st vb) in
      ignore (Oracle.alloc st.o Oracle.Ephemeron [| va; vb |] : int);
      ignore (track st w true : int)
  | Alloc_vector (lsel, isel) ->
      let len = vector_len lsel in
      let vi = resolve_value st isel in
      let w = Obj.make_vector st.h ~len ~init:(word_of st vi) in
      ignore (Oracle.alloc st.o Oracle.Vector (Array.make len vi) : int);
      ignore (track st w true : int)
  | Alloc_box a ->
      let va = resolve_value st a in
      let w = Obj.make_box st.h (word_of st va) in
      ignore (Oracle.alloc st.o Oracle.Box [| va |] : int);
      ignore (track st w true : int)
  | Alloc_tconc ->
      let w = Tconc.make st.h in
      ignore (Oracle.alloc st.o Oracle.Tconc [||] : int);
      ignore (track st w true : int)
  | Alloc_guardian ->
      let w = Guardian.make st.h in
      ignore (Oracle.alloc st.o Oracle.Guardian [||] : int);
      ignore (track st w true : int)
  | Set_car (tsel, vsel) -> (
      match pick_rooted st [ Oracle.Pair; Oracle.Weakpair ] tsel with
      | None -> ()
      | Some id ->
          let v = resolve_value st vsel in
          Obj.set_car st.h st.nodes.(id).word (word_of st v);
          Oracle.set_field st.o id 0 v)
  | Set_cdr (tsel, vsel) -> (
      match pick_rooted st [ Oracle.Pair; Oracle.Weakpair ] tsel with
      | None -> ()
      | Some id ->
          let v = resolve_value st vsel in
          Obj.set_cdr st.h st.nodes.(id).word (word_of st v);
          Oracle.set_field st.o id 1 v)
  | Vector_set (tsel, isel, vsel) -> (
      match pick_rooted st [ Oracle.Vector ] tsel with
      | None -> ()
      | Some id ->
          let len = Array.length (Oracle.node st.o id).Oracle.fields in
          let i = isel mod len in
          let v = resolve_value st vsel in
          Obj.vector_set st.h st.nodes.(id).word i (word_of st v);
          Oracle.set_field st.o id i v)
  | Box_set (tsel, vsel) -> (
      match pick_rooted st [ Oracle.Box ] tsel with
      | None -> ()
      | Some id ->
          let v = resolve_value st vsel in
          Obj.box_set st.h st.nodes.(id).word (word_of st v);
          Oracle.set_field st.o id 0 v)
  | Tconc_enqueue (tsel, vsel) -> (
      match pick_rooted st [ Oracle.Tconc ] tsel with
      | None -> ()
      | Some id ->
          let v = resolve_value st vsel in
          Tconc.mutator_enqueue st.h st.nodes.(id).word (word_of st v);
          Oracle.enqueue st.o id v)
  | Tconc_dequeue tsel -> (
      match pick_rooted st [ Oracle.Tconc ] tsel with
      | None -> ()
      | Some id -> (
          let hr = Tconc.dequeue st.h st.nodes.(id).word in
          let orr = Oracle.dequeue st.o id in
          match (hr, orr) with
          | None, None -> ()
          | Some hw, Some ov when Word.equal hw (word_of st ov) -> ()
          | _ -> failf "tconc dequeue divergence at node %d" id))
  | Register (gsel, osel) -> (
      match pick_rooted st [ Oracle.Guardian ] gsel with
      | None -> ()
      | Some g ->
          let obj = resolve_value st osel in
          Guardian.register st.h st.nodes.(g).word (word_of st obj);
          Oracle.register st.o ~guardian:g ~obj ~rep:obj)
  | Register_rep (gsel, osel, rsel) -> (
      match pick_rooted st [ Oracle.Guardian ] gsel with
      | None -> ()
      | Some g ->
          let obj = resolve_value st osel and rep = resolve_value st rsel in
          Guardian.register_with_rep st.h st.nodes.(g).word ~obj:(word_of st obj)
            ~rep:(word_of st rep);
          Oracle.register st.o ~guardian:g ~obj ~rep)
  | Poll gsel -> (
      match pick_rooted st [ Oracle.Guardian ] gsel with
      | None -> ()
      | Some g -> (
          match Guardian.retrieve st.h st.nodes.(g).word with
          | None ->
              if Oracle.pending st.o g <> [] then
                failf "guardian %d retrieve None with %d oracle-pending" g
                  (List.length (Oracle.pending st.o g))
          | Some w ->
              let matches v = Word.equal (word_of st v) w in
              (match List.find_opt matches (Oracle.pending st.o g) with
              | None -> failf "guardian %d retrieved a word the oracle never saved" g
              | Some v ->
                  ignore (Oracle.remove_pending st.o ~guardian:g ~f:matches : bool);
                  (* The program owns the saved object again: re-root it. *)
                  (match v with
                  | Ref id when st.nodes.(id).cell < 0 ->
                      st.nodes.(id).cell <- Heap.new_cell st.h st.nodes.(id).word
                  | _ -> ()))))
  | Unroot sel ->
      let cand = rooted_ids st in
      (* Keep a couple of roots so the mutator always has footing. *)
      if Array.length cand > 2 then begin
        let id = cand.(sel mod Array.length cand) in
        Heap.free_cell st.h st.nodes.(id).cell;
        st.nodes.(id).cell <- -1
      end
  | Mutation_storm (sseed, csel) ->
      (* A burst of barrier-heavy stores: old objects mutated to point at
         young ones and back, the pattern card marking exists for. *)
      let rng = Prng.make sseed in
      let count = 4 + (csel mod 12) in
      for _ = 1 to count do
        let s () = Prng.int rng 1_000_000 in
        match Prng.int rng 4 with
        | 0 -> interp st (Set_car (s (), s ()))
        | 1 -> interp st (Set_cdr (s (), s ()))
        | 2 -> interp st (Vector_set (s (), s (), s ()))
        | _ -> interp st (Box_set (s (), s ()))
      done
  | Checkpoint ->
      (* Serialize the whole heap, rebuild a fresh one from the bytes, and
         continue the episode against the restored heap.  The tracked
         words ride along in an extra section (relocated like any heap
         slot) so the driver can re-point its mirror; dead slots carry an
         immediate placeholder.  Before the swap, a second save of the
         restored heap must reproduce the image byte-for-byte — the
         canonical-form contract.  After it, [compare_all] demands the
         restored heap still agrees with the oracle exactly as the old
         one did.  The fault state is carried across by hand (the loader
         is exempt; the countdown must not notice the swap). *)
      let section w = [ ("torture/tracked", { Image.xwords = w; xbytes = "" }) ] in
      let tracked =
        Array.init st.nnodes (fun i ->
            let tr = st.nodes.(i) in
            if tr.halive then tr.word else Word.of_fixnum 0)
      in
      let bytes = Image.save_string ~extras:(section tracked) st.h in
      let l = Image.load_string ~config:(Heap.config st.h) bytes in
      let tracked' =
        match List.assoc_opt "torture/tracked" l.Image.extras with
        | Some e -> e.Image.xwords
        | None -> failf "checkpoint: tracked section missing after restore"
      in
      if Array.length tracked' <> st.nnodes then
        failf "checkpoint: tracked section resized (%d vs %d words)"
          (Array.length tracked') st.nnodes;
      let bytes' = Image.save_string ~extras:(section tracked') l.Image.heap in
      if not (String.equal bytes bytes') then
        failf "checkpoint: save -> load -> save not byte-identical (%d vs %d bytes)"
          (String.length bytes) (String.length bytes');
      (* Only now is it safe to abandon the old heap. *)
      let fo = Heap.faults st.h and fn = Heap.faults l.Image.heap in
      fn.Heap.fail_segment_alloc_at <- fo.Heap.fail_segment_alloc_at;
      fn.Heap.corrupt_forward_period <- fo.Heap.corrupt_forward_period;
      fn.Heap.forwards_seen <- fo.Heap.forwards_seen;
      fn.Heap.injected <- fo.Heap.injected;
      st.h <- l.Image.heap;
      for i = 0 to st.nnodes - 1 do
        let tr = st.nodes.(i) in
        if tr.halive then tr.word <- tracked'.(i)
      done;
      register_tracker st;
      st.checkpoints <- st.checkpoints + 1;
      if (Heap.config st.h).Config.image_verify_on_load then
        st.verify_checks <- st.verify_checks + 1;
      compare_all st ~gen:0
  | Collect sel -> do_collect st (collect_gen st sel)

(* Out-of-memory is a survivable event: the heap stays consistent, the
   oracle was never touched (heap action runs first), and a full collection
   afterwards must leave both in agreement.  Retry the op once with the
   reclaimed space; under a hard ceiling it may simply be skipped. *)
let interp_recovering st op =
  try interp st op
  with Heap.Out_of_memory ->
    st.oom_recoveries <- st.oom_recoveries + 1;
    st.verify_checks <- st.verify_checks + 1;
    (match Verify.verify st.h with
    | [] -> ()
    | { Verify.what; where } :: _ -> failf "verify after OOM: %s (%s)" what where);
    do_collect st (max_gen st);
    (try interp st op with Heap.Out_of_memory -> ())

(* ------------------------------------------------------------------ *)
(* Episodes                                                            *)

type failure = {
  episode : int;
  profile : string;
  op_index : int;
  reason : string;
  shrunk_ops : int;
  shrunk_trace : string;
}

type episode_summary = {
  profile : string;
  ops_run : int;
  collections : int;
  verify_checks : int;
  comparisons : int;
  oom_recoveries : int;
  checkpoints : int;
  faults_injected : int;
}

type raw_failure = { rf_index : int; rf_reason : string }

exception Stop of raw_failure

(* Config extremes: tiny segments, one card per segment, a single
   generation (a plain semispace), the D1 single-list ablation, a hard
   heap ceiling.  All with small segments so a few thousand ops cross
   many segment and card boundaries. *)
let profiles : (string * (unit -> Config.t)) array =
  [|
    ("small", fun () -> Config.v ~segment_words:128 ~card_words:64 ~max_generation:3 ());
    ("tiny-segments", fun () -> Config.v ~segment_words:64 ~card_words:16 ~max_generation:4 ());
    ("one-card", fun () -> Config.v ~segment_words:64 ~card_words:64 ~max_generation:3 ());
    ("single-gen", fun () -> Config.v ~segment_words:128 ~card_words:32 ~max_generation:0 ());
    ( "no-gff",
      fun () ->
        Config.v ~segment_words:128 ~card_words:32 ~max_generation:2
          ~generation_friendly_guardians:false () );
    ( "heap-pressure",
      fun () ->
        Config.v ~segment_words:64 ~card_words:16 ~max_generation:2
          ~max_heap_words:6144 () );
  |]

let run_episode ~config ~arm_fault ops =
  let st = new_state config in
  if arm_fault > 0 then (Heap.faults st.h).Heap.fail_segment_alloc_at <- arm_fault;
  let nops = Array.length ops in
  let failure = ref None in
  let ran = ref 0 in
  (try
     Array.iteri
       (fun i op ->
         ran := i;
         try interp_recovering st op with
         | Fail reason -> raise (Stop { rf_index = i; rf_reason = reason })
         | Stop _ as e -> raise e
         | e ->
             raise
               (Stop { rf_index = i; rf_reason = "exception: " ^ Printexc.to_string e }))
       ops;
     ran := nops;
     (* Epilogue: a full collection must drain to a clean, agreeing state. *)
     try do_collect st (max_gen st)
     with
     | Fail reason -> raise (Stop { rf_index = nops; rf_reason = reason })
     | e -> raise (Stop { rf_index = nops; rf_reason = "exception: " ^ Printexc.to_string e })
   with Stop f -> failure := Some f);
  let summary ~profile =
    {
      profile;
      ops_run = !ran;
      collections = st.collections;
      verify_checks = st.verify_checks;
      comparisons = st.comparisons;
      oom_recoveries = st.oom_recoveries;
      checkpoints = st.checkpoints;
      faults_injected = (Heap.faults st.h).Heap.injected;
    }
  in
  (summary, !failure)

(* ------------------------------------------------------------------ *)
(* Shrinking (ddmin-style chunk removal)                               *)

let shrink ~test ops =
  let budget = ref 400 (* bounded: each probe replays an episode *) in
  let test' cand =
    if !budget <= 0 then false
    else begin
      decr budget;
      test cand
    end
  in
  let current = ref ops in
  let granularity = ref 2 in
  let finished = ref false in
  while not !finished do
    let n = Array.length !current in
    if n <= 1 || !budget <= 0 then finished := true
    else begin
      let chunk = max 1 (n / !granularity) in
      let removed = ref false in
      let i = ref 0 in
      while (not !removed) && (!i * chunk) < n do
        let lo = !i * chunk in
        let hi = min n (lo + chunk) in
        let cand =
          Array.append (Array.sub !current 0 lo) (Array.sub !current hi (n - hi))
        in
        if Array.length cand < n && test' cand then begin
          current := cand;
          removed := true;
          granularity := max 2 (!granularity - 1)
        end;
        incr i
      done;
      if not !removed then
        if chunk = 1 then finished := true else granularity := min n (!granularity * 2)
    end
  done;
  !current

(* ------------------------------------------------------------------ *)
(* Seed runs                                                           *)

type report = {
  seed : int;
  ops_requested : int;
  episodes : episode_summary list;
  failure : failure option;
}

type opts = { ops : int; faults : bool; inject_bug : bool }

let default_opts = { ops = 5000; faults = false; inject_bug = false }

let gen_op rng =
  let s () = Prng.int rng 1_000_000 in
  let r = Prng.int rng 100 in
  if r < 12 then Alloc_pair (s (), s ())
  else if r < 17 then Alloc_weak (s (), s ())
  else if r < 21 then Alloc_ephemeron (s (), s ())
  else if r < 26 then Alloc_vector (s (), s ())
  else if r < 30 then Alloc_box (s ())
  else if r < 34 then Alloc_tconc
  else if r < 40 then Alloc_guardian
  else if r < 46 then Set_car (s (), s ())
  else if r < 50 then Set_cdr (s (), s ())
  else if r < 54 then Vector_set (s (), s (), s ())
  else if r < 57 then Box_set (s (), s ())
  else if r < 61 then Tconc_enqueue (s (), s ())
  else if r < 64 then Tconc_dequeue (s ())
  else if r < 71 then Register (s (), s ())
  else if r < 74 then Register_rep (s (), s (), s ())
  else if r < 80 then Poll (s ())
  else if r < 87 then Unroot (s ())
  else if r < 89 then Mutation_storm (s (), s ())
  else if r < 90 then Checkpoint
  else Collect (s ())

let gen_ops ~seed n =
  let rng = Prng.make seed in
  Array.init n (fun _ -> gen_op rng)

let trace_to_string ops =
  let buf = Buffer.create 256 in
  Array.iter (fun op -> Format.kasprintf (Buffer.add_string buf) "%a\n" pp_op op) ops;
  Buffer.contents buf

let run_seed ~seed ~opts =
  let rng = Prng.make seed in
  let nepisodes = 1 + Prng.int rng 3 in
  let per = max 1 (opts.ops / nepisodes) in
  let episodes = ref [] in
  let failure = ref None in
  let e = ref 0 in
  while !e < nepisodes && !failure = None do
    let name, mk =
      if !e = 0 then profiles.(0) else profiles.(Prng.int rng (Array.length profiles))
    in
    let base = mk () in
    let config =
      if opts.inject_bug then { base with Config.corrupt_forward_period = 3 } else base
    in
    let arm_fault = if opts.faults && Prng.bool rng then 1 + Prng.int rng 60 else 0 in
    let nops = if !e = 0 then max 1 (opts.ops - (per * (nepisodes - 1))) else per in
    let ops = Array.init nops (fun _ -> gen_op rng) in
    let summary, raw = run_episode ~config ~arm_fault ops in
    episodes := summary ~profile:name :: !episodes;
    (match raw with
    | None -> ()
    | Some { rf_index; rf_reason } ->
        (* Minimize: first truncate to the failing prefix, then ddmin. *)
        let prefix = Array.sub ops 0 (min (Array.length ops) (rf_index + 1)) in
        let still_fails cand = snd (run_episode ~config ~arm_fault cand) <> None in
        let minimal = if still_fails prefix then shrink ~test:still_fails prefix else prefix in
        failure :=
          Some
            {
              episode = !e;
              profile = name;
              op_index = rf_index;
              reason = rf_reason;
              shrunk_ops = Array.length minimal;
              shrunk_trace = trace_to_string minimal;
            });
    incr e
  done;
  { seed; ops_requested = opts.ops; episodes = List.rev !episodes; failure = !failure }

(* ------------------------------------------------------------------ *)
(* JSON report (hand-rolled, like bench_util's: no JSON dependency)    *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_reports reports =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let total f = List.fold_left (fun acc r -> acc + List.fold_left (fun a e -> a + f e) 0 r.episodes) 0 reports in
  pr "{\n  \"schema\": \"gbc-torture/1\",\n";
  pr "  \"seeds\": %d,\n" (List.length reports);
  pr "  \"totals\": {\n";
  pr "    \"ops_run\": %d,\n" (total (fun e -> e.ops_run));
  pr "    \"collections\": %d,\n" (total (fun e -> e.collections));
  pr "    \"verify_checks\": %d,\n" (total (fun e -> e.verify_checks));
  pr "    \"comparisons\": %d,\n" (total (fun e -> e.comparisons));
  pr "    \"oom_recoveries\": %d,\n" (total (fun e -> e.oom_recoveries));
  pr "    \"checkpoints\": %d,\n" (total (fun e -> e.checkpoints));
  pr "    \"faults_injected\": %d,\n" (total (fun e -> e.faults_injected));
  pr "    \"failures\": %d\n"
    (List.length (List.filter (fun r -> r.failure <> None) reports));
  pr "  },\n  \"runs\": [\n";
  List.iteri
    (fun i r ->
      pr "    {\n      \"seed\": %d,\n      \"ops_requested\": %d,\n" r.seed r.ops_requested;
      pr "      \"episodes\": [\n";
      List.iteri
        (fun j e ->
          pr
            "        {\"profile\": \"%s\", \"ops_run\": %d, \"collections\": %d, \
             \"verify_checks\": %d, \"comparisons\": %d, \"oom_recoveries\": %d, \
             \"checkpoints\": %d, \"faults_injected\": %d}%s\n"
            (json_escape e.profile) e.ops_run e.collections e.verify_checks e.comparisons
            e.oom_recoveries e.checkpoints e.faults_injected
            (if j = List.length r.episodes - 1 then "" else ","))
        r.episodes;
      pr "      ],\n";
      (match r.failure with
      | None -> pr "      \"failure\": null\n"
      | Some f ->
          pr
            "      \"failure\": {\"episode\": %d, \"profile\": \"%s\", \"op_index\": %d, \
             \"reason\": \"%s\", \"shrunk_ops\": %d}\n"
            f.episode (json_escape f.profile) f.op_index (json_escape f.reason) f.shrunk_ops);
      pr "    }%s\n" (if i = List.length reports - 1 then "" else ","))
    reports;
  pr "  ]\n}\n";
  Buffer.contents buf
