(** See oracle.mli.  Everything here iterates in node-id or list order —
    never over a hash table — so a run is deterministic for a fixed trace. *)

open Gbc_runtime

type value = Imm of Word.t | Ref of int
type kind = Pair | Weakpair | Ephemeron | Vector | Box | Tconc | Guardian

type node = {
  id : int;
  kind : kind;
  fields : value array;
  mutable queue : value list;
  mutable gen : int;
  mutable alive : bool;
}

type entry = { e_obj : value; e_rep : value; e_guardian : int }

type t = {
  mutable nodes : node array;
  mutable nnodes : int;
  protected : entry list array;  (** per generation, registration order *)
  gff : bool;
}

let create ~max_generation ~generation_friendly_guardians =
  {
    nodes = Array.make 64 { id = -1; kind = Pair; fields = [||]; queue = []; gen = 0; alive = false };
    nnodes = 0;
    protected = Array.make (max_generation + 1) [];
    gff = generation_friendly_guardians;
  }

let node_count t = t.nnodes

let node t id =
  if id < 0 || id >= t.nnodes then invalid_arg "Oracle.node: bad id";
  t.nodes.(id)

let alloc t kind fields =
  if t.nnodes = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.nnodes) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.nnodes;
    t.nodes <- bigger
  end;
  let id = t.nnodes in
  t.nodes.(id) <- { id; kind; fields; queue = []; gen = 0; alive = true };
  t.nnodes <- id + 1;
  id

let set_field t id i v = (node t id).fields.(i) <- v
let enqueue t id v = (node t id).queue <- (node t id).queue @ [ v ]

let dequeue t id =
  let nd = node t id in
  match nd.queue with
  | [] -> None
  | v :: rest ->
      nd.queue <- rest;
      Some v

let register t ~guardian ~obj ~rep =
  t.protected.(0) <- t.protected.(0) @ [ { e_obj = obj; e_rep = rep; e_guardian = guardian } ]

let pending t id = (node t id).queue

let remove_pending t ~guardian ~f =
  let nd = node t guardian in
  let rec go acc = function
    | [] -> false
    | v :: rest when f v ->
        nd.queue <- List.rev_append acc rest;
        true
    | v :: rest -> go (v :: acc) rest
  in
  go [] nd.queue

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)

let collect t ~roots ~gen:g ~target =
  let n = t.nnodes in
  let reached = Array.make n false in
  let stack = ref [] in
  let mark id =
    let nd = t.nodes.(id) in
    assert nd.alive;
    if not reached.(id) then begin
      reached.(id) <- true;
      stack := id :: !stack
    end
  in
  let mark_value = function Imm _ -> () | Ref id -> mark id in
  (* A node "participates" when it survives this collection: already
     traced, or too old to be condemned. *)
  let participates id = reached.(id) || t.nodes.(id).gen > g in
  let value_live = function
    | Imm _ -> true
    | Ref id -> t.nodes.(id).alive && participates id
  in
  let trace id =
    let nd = t.nodes.(id) in
    match nd.kind with
    | Pair | Vector | Box -> Array.iter mark_value nd.fields
    | Weakpair -> mark_value nd.fields.(1)
    | Ephemeron -> ()  (* conditional; the fixpoint below decides *)
    | Tconc | Guardian -> List.iter mark_value nd.queue
  in
  let drain () =
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | id :: rest ->
          stack := rest;
          trace id
    done
  in
  (* [close] = the collector's kleene-sweep: transitive strong tracing
     interleaved with the ephemeron fixpoint (a value traced because its
     key proved reachable can reveal further reachable keys). *)
  let close () =
    drain ();
    let progress = ref true in
    while !progress do
      progress := false;
      for id = 0 to n - 1 do
        let nd = t.nodes.(id) in
        if nd.kind = Ephemeron && nd.alive && participates id && value_live nd.fields.(0)
        then
          match nd.fields.(1) with
          | Ref v when t.nodes.(v).alive && not reached.(v) && t.nodes.(v).gen <= g ->
              mark v;
              progress := true
          | _ -> ()
      done;
      if !progress then drain ()
    done
  in
  (* Roots: the driver's rooted nodes, plus every live node of an older
     generation — uncollected generations are scanned only through dirty
     cards, whose invariant (a clean card holds no young pointers) makes
     "all old nodes are roots" the exact model, floating garbage
     included. *)
  List.iter mark roots;
  for id = 0 to n - 1 do
    let nd = t.nodes.(id) in
    if nd.alive && nd.gen > g then mark id
  done;
  close ();
  (* Guardian pass, first block: one partition, in protected-list order,
     over the collected generations.  A held entry's rep is kept alive
     *shallowly* right away (the collector copies it without sweeping), so
     it influences the test for later entries; its fields join the trace
     only at the close() after the loop. *)
  let pend_hold = ref [] and pend_final = ref [] in
  for i = 0 to g do
    List.iter
      (fun e ->
        if value_live e.e_obj then begin
          (match e.e_rep with
          | Ref r when t.nodes.(r).gen <= g -> if not reached.(r) then begin
              reached.(r) <- true;
              stack := r :: !stack
            end
          | _ -> ());
          pend_hold := e :: !pend_hold
        end
        else pend_final := e :: !pend_final)
      t.protected.(i);
    t.protected.(i) <- []
  done;
  close ();
  (* Second block: resurrection as a least fixpoint.  An inaccessible
     entry is saved once its guardian is (or becomes) reachable; saving a
     rep can make further guardians reachable.  The collector computes
     this with a worklist keyed by tconc addresses; set-wise the result is
     the same, and guardian queues are compared as multisets. *)
  let remaining = ref (List.rev !pend_final) in
  let progress = ref true in
  while !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun e ->
        let gn = t.nodes.(e.e_guardian) in
        assert gn.alive;
        if participates e.e_guardian then begin
          gn.queue <- gn.queue @ [ e.e_rep ];
          mark_value e.e_rep;
          progress := true
        end
        else still := e :: !still)
      !remaining;
    remaining := List.rev !still;
    close ()
  done;
  (* Entries still unresolved lost their guardian too: dropped, cancelling
     finalization, as the paper requires. *)
  (* Third block: surviving held entries move to the target generation's
     protected list (or stay on generation 0 under the D1 ablation) — in
     the collector's order: pend-hold is built by prepending, then walked. *)
  let entry_gen = if t.gff then target else 0 in
  let promoted =
    List.filter (fun e -> participates e.e_guardian) !pend_hold
  in
  t.protected.(entry_gen) <- t.protected.(entry_gen) @ promoted;
  (* Weak pass (after the guardian pass, so guardian-saved referents
     survive): break the car of every surviving weak pair whose referent
     was condemned and never traced. *)
  for id = 0 to n - 1 do
    let nd = t.nodes.(id) in
    if nd.kind = Weakpair && nd.alive && participates id then
      match nd.fields.(0) with
      | Ref x when t.nodes.(x).gen <= g && not reached.(x) -> nd.fields.(0) <- Imm Word.false_
      | _ -> ()
  done;
  (* Ephemerons whose key never proved reachable: both fields break. *)
  for id = 0 to n - 1 do
    let nd = t.nodes.(id) in
    if nd.kind = Ephemeron && nd.alive && participates id then
      match nd.fields.(0) with
      | Ref k when t.nodes.(k).gen <= g && not reached.(k) ->
          nd.fields.(0) <- Imm Word.false_;
          nd.fields.(1) <- Imm Word.false_
      | _ -> ()
  done;
  (* Reclaim and promote. *)
  for id = 0 to n - 1 do
    let nd = t.nodes.(id) in
    if nd.alive && nd.gen <= g then
      if reached.(id) then nd.gen <- target else nd.alive <- false
  done
