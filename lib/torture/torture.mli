(** Deterministic GC torture harness.

    A seed expands to a program over the runtime API — an allocation mix of
    pairs, weak pairs, ephemerons, vectors, boxes, tconcs and guardians;
    guardian register/poll/drop (including guardian-of-guardian chains);
    mutation storms that exercise the card-marking write barrier;
    checkpoint ops that serialize the heap to a {!Gbc_image.Image} and
    swap in the restored copy mid-episode — interleaved with forced
    collections of seed-chosen target generations.
    After {e every} collection the harness runs the {!Verify} invariant
    checker and compares the heap against the {!Oracle} semispace model:
    per-object liveness, structure, weak/ephemeron breaking, guardian
    pending queues (as multisets) and generation placement.

    A run is split into {e episodes}: each episode replays part of the op
    budget against a fresh heap under a seed-chosen configuration profile,
    including extremes (one card per segment, a single generation, tiny
    segments, a hard heap ceiling).  With faults enabled, episodes also arm
    a one-shot segment-allocation failure ({!Heap.faults}) and must recover
    gracefully; with the seeded bug enabled
    ([Config.corrupt_forward_period]), the harness must {e detect} the
    corruption and shrink the failing trace.

    Everything — op generation, interpretation, comparison, reporting — is
    a pure function of the seed, so [run_seed] is bit-for-bit reproducible
    and failures replay exactly. *)

type op
(** One step of a torture program.  Operand selectors are raw integers
    resolved against the driver's current live set, so a trace remains
    interpretable after the shrinker deletes ops. *)

val pp_op : Format.formatter -> op -> unit

type failure = {
  episode : int;
  profile : string;  (** configuration profile of the failing episode *)
  op_index : int;
  reason : string;
  shrunk_ops : int;  (** ops left after trace minimization *)
  shrunk_trace : string;  (** the minimized trace, one op per line *)
}

type episode_summary = {
  profile : string;
  ops_run : int;
  collections : int;
  verify_checks : int;
  comparisons : int;
  oom_recoveries : int;
  checkpoints : int;
      (** mid-episode heap-image save/restore round-trips, each asserting
          save → load → save byte-identity and full oracle agreement on
          the restored heap *)
  faults_injected : int;
}

type report = {
  seed : int;
  ops_requested : int;
  episodes : episode_summary list;
  failure : failure option;
}

type opts = {
  ops : int;  (** total op budget across the seed's episodes *)
  faults : bool;  (** arm segment-allocation faults and heap pressure *)
  inject_bug : bool;
      (** run with the seeded forward-corruption bug; the expected outcome
          is a detected, shrunk failure *)
}

val default_opts : opts

val run_seed : seed:int -> opts:opts -> report
(** Deterministic: equal arguments give structurally equal reports. *)

val shrink : test:(op array -> bool) -> op array -> op array
(** Delta-debugging minimization: greedily remove chunks while [test]
    (run to a bounded budget) still fails.  Exposed for the test suite. *)

val gen_ops : seed:int -> int -> op array
(** The op stream a seed expands to (exposed for the test suite). *)

val json_of_reports : report list -> string
(** The [gbc-torture/1] JSON document for [--json-out]: per-seed episode
    summaries, totals, and any failures.  Contains no timestamps, so equal
    runs serialize identically. *)
