bench/main.mli:
