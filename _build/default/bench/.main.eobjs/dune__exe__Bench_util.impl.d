bench/bench_util.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf String Time Toolkit Unix
