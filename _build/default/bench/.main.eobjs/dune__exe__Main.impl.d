bench/main.ml: Array Bechamel Bench_util Collector Config Gbc Gbc_baselines Gbc_runtime Gbc_vfs Guardian Handle Heap List Obj Printf Runtime Stats Tconc Unix Word
