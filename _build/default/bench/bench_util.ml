(* Small harness around Bechamel: run a group of tests, print one
   estimated-time row per test, plus fixed-width counter tables. *)

open Bechamel
open Toolkit

let ols =
  Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]

(** Run Bechamel tests and print ns/run estimates. *)
let run_tests ?(quota = 0.5) tests =
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) analyzed [] in
      List.iter
        (fun name ->
          let est = Hashtbl.find analyzed name in
          let time =
            match Analyze.OLS.estimates est with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let r2 = match Analyze.OLS.r_square est with Some r -> r | None -> nan in
          Printf.printf "  %-48s %12.1f ns/run   (r²=%.3f)\n" name time r2)
        (List.sort compare names))
    tests

let section title = Printf.printf "\n==== %s ====\n%!" title

let subsection title = Printf.printf "\n-- %s --\n%!" title

(** Print a table: header row then int rows. *)
let table ~header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  let print_row cells =
    List.iteri
      (fun i c -> Printf.printf "%s%*s" (if i = 0 then "  " else "  ") (List.nth widths i) c)
      cells;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1e6)
(* microseconds *)

let fmt_us us = Printf.sprintf "%.1f" us
