(* The virtual filesystem substrate. *)

module Vfs = Gbc_vfs.Vfs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_write_read () =
  let v = Vfs.create () in
  let fd = Vfs.openfile v "a.txt" Vfs.Write in
  Vfs.write v fd "hello ";
  Vfs.write v fd "world";
  Vfs.close v fd;
  check_str "contents" "hello world" (Vfs.read_file v "a.txt");
  let fd = Vfs.openfile v "a.txt" Vfs.Read in
  check "read h" true (Vfs.read_char v fd = Some 'h');
  check "read e" true (Vfs.read_char v fd = Some 'e');
  Vfs.close v fd

let test_read_to_eof () =
  let v = Vfs.create () in
  Vfs.write_file v "x" "ab";
  let fd = Vfs.openfile v "x" Vfs.Read in
  check "a" true (Vfs.read_char v fd = Some 'a');
  check "b" true (Vfs.read_char v fd = Some 'b');
  check "eof" true (Vfs.read_char v fd = None);
  check "eof again" true (Vfs.read_char v fd = None);
  Vfs.close v fd

let test_modes () =
  let v = Vfs.create () in
  Vfs.write_file v "f" "abc";
  (* Write truncates. *)
  let fd = Vfs.openfile v "f" Vfs.Write in
  Vfs.write v fd "x";
  Vfs.close v fd;
  check_str "truncated" "x" (Vfs.read_file v "f");
  (* Append appends. *)
  let fd = Vfs.openfile v "f" Vfs.Append in
  Vfs.write v fd "yz";
  Vfs.close v fd;
  check_str "appended" "xyz" (Vfs.read_file v "f")

let test_missing_file () =
  let v = Vfs.create () in
  Alcotest.check_raises "no such file" (Vfs.No_such_file "nope") (fun () ->
      ignore (Vfs.openfile v "nope" Vfs.Read))

let test_descriptor_lifecycle () =
  let v = Vfs.create () in
  let fd = Vfs.openfile v "f" Vfs.Write in
  check "open" true (Vfs.is_open v fd);
  Vfs.close v fd;
  check "closed" false (Vfs.is_open v fd);
  Alcotest.check_raises "double close" (Vfs.Bad_descriptor fd) (fun () -> Vfs.close v fd);
  Alcotest.check_raises "write after close" (Vfs.Bad_descriptor fd) (fun () ->
      Vfs.write v fd "x")

let test_fd_exhaustion () =
  let v = Vfs.create ~fd_limit:4 () in
  let fds = List.init 4 (fun i -> Vfs.openfile v (Printf.sprintf "f%d" i) Vfs.Write) in
  Alcotest.check_raises "exhausted" Vfs.Descriptor_exhausted (fun () ->
      ignore (Vfs.openfile v "one-more" Vfs.Write));
  (* Closing one frees a slot. *)
  Vfs.close v (List.hd fds);
  let fd = Vfs.openfile v "one-more" Vfs.Write in
  check "reopened" true (Vfs.is_open v fd)

let test_accounting () =
  let v = Vfs.create () in
  let a = Vfs.openfile v "a" Vfs.Write in
  let b = Vfs.openfile v "b" Vfs.Write in
  check_int "open 2" 2 (Vfs.open_count v);
  check_int "max 2" 2 (Vfs.max_open v);
  Vfs.close v a;
  check_int "open 1" 1 (Vfs.open_count v);
  check_int "max still 2" 2 (Vfs.max_open v);
  Vfs.write v b "1234";
  check_int "bytes written" 4 (Vfs.bytes_written v);
  check_int "opens" 2 (Vfs.total_opens v);
  check_int "closes" 1 (Vfs.total_closes v);
  check_int "leaked" 1 (Vfs.leaked v)

let test_remove_and_exists () =
  let v = Vfs.create () in
  check "absent" false (Vfs.file_exists v "f");
  Vfs.write_file v "f" "x";
  check "present" true (Vfs.file_exists v "f");
  Vfs.remove_file v "f";
  check "removed" false (Vfs.file_exists v "f")

let prop_write_read_roundtrip =
  QCheck.Test.make ~name:"written data reads back" ~count:100
    QCheck.(list printable_string)
    (fun chunks ->
      let v = Vfs.create () in
      let fd = Vfs.openfile v "f" Vfs.Write in
      List.iter (Vfs.write v fd) chunks;
      Vfs.close v fd;
      Vfs.read_file v "f" = String.concat "" chunks)

let () =
  Alcotest.run "vfs"
    [
      ( "files",
        [
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "read to eof" `Quick test_read_to_eof;
          Alcotest.test_case "modes" `Quick test_modes;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "remove/exists" `Quick test_remove_and_exists;
        ] );
      ( "descriptors",
        [
          Alcotest.test_case "lifecycle" `Quick test_descriptor_lifecycle;
          Alcotest.test_case "exhaustion" `Quick test_fd_exhaustion;
          Alcotest.test_case "accounting" `Quick test_accounting;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_write_read_roundtrip ]);
    ]
