(* Heap substrate: segments, spaces, allocation, root cells, handles,
   object layer accessors. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_config = Config.v ~segment_words:64 ~max_generation:3 ()

let test_segment_assignment () =
  let h = Heap.create ~config:small_config () in
  let p = Obj.cons h Word.nil Word.nil in
  let info = Heap.info_of_word h p in
  check "pair space" true (info.Heap.space = Space.Pair);
  check_int "generation 0" 0 info.Heap.generation;
  let v = Obj.make_vector h ~len:3 ~init:Word.nil in
  check "typed space" true ((Heap.info_of_word h v).Heap.space = Space.Typed);
  let s = Obj.string_of_ocaml h "abc" in
  check "data space" true ((Heap.info_of_word h s).Heap.space = Space.Data);
  let w = Obj.weak_cons h Word.nil Word.nil in
  check "weak space" true ((Heap.info_of_word h w).Heap.space = Space.Weak)

let test_many_segments () =
  let h = Heap.create ~config:small_config () in
  (* Fill far more than one segment per space. *)
  let keep = Heap.new_cell h Word.nil in
  for i = 0 to 999 do
    Heap.write_cell h keep (Obj.cons h (Word.of_fixnum i) (Heap.read_cell h keep))
  done;
  check "many segments" true (Heap.live_segments h > 10);
  (* The list survives intact. *)
  let l = Heap.read_cell h keep in
  check_int "length" 1000 (Obj.list_length h l);
  check_int "first" 999 (Word.to_fixnum (Obj.car h l))

let test_large_object () =
  let h = Heap.create ~config:small_config () in
  (* Vector bigger than a standard segment (64 words). *)
  let v = Obj.make_vector h ~len:500 ~init:(Word.of_fixnum 7) in
  check_int "len" 500 (Obj.vector_length h v);
  check "large flag" true (Heap.info_of_word h v).Heap.large;
  Obj.vector_set h v 499 (Word.of_fixnum 9);
  check_int "last" 9 (Word.to_fixnum (Obj.vector_ref h v 499));
  (* Large objects survive collection. *)
  let c = Heap.new_cell h v in
  ignore (Collector.collect h ~gen:0);
  let v = Heap.read_cell h c in
  check_int "after gc len" 500 (Obj.vector_length h v);
  check_int "after gc [0]" 7 (Word.to_fixnum (Obj.vector_ref h v 0));
  check_int "after gc [499]" 9 (Word.to_fixnum (Obj.vector_ref h v 499))

let test_oversized_rejected () =
  let h = Heap.create () in
  Alcotest.check_raises "too big" (Invalid_argument "object larger than the maximum segment size")
    (fun () -> ignore (Obj.make_vector h ~len:(1 lsl 21) ~init:Word.nil))

let test_root_cells () =
  let h = Heap.create () in
  let a = Heap.new_cell h (Word.of_fixnum 1) in
  let b = Heap.new_cell h (Word.of_fixnum 2) in
  check_int "a" 1 (Word.to_fixnum (Heap.read_cell h a));
  check_int "b" 2 (Word.to_fixnum (Heap.read_cell h b));
  Heap.free_cell h a;
  let c = Heap.new_cell h (Word.of_fixnum 3) in
  check_int "slot reused" a c;
  check_int "b intact" 2 (Word.to_fixnum (Heap.read_cell h b))

let test_handles () =
  let h = Heap.create () in
  let x = Handle.create h (Obj.cons h (Word.of_fixnum 1) Word.nil) in
  ignore (Collector.collect h ~gen:0);
  check_int "tracked across gc" 1 (Word.to_fixnum (Obj.car h (Handle.get x)));
  Handle.free x;
  Handle.free x (* idempotent *);
  Alcotest.check_raises "read after free" (Invalid_argument "Handle.get: handle already freed")
    (fun () -> ignore (Handle.get x));
  Handle.with_handle h (Word.of_fixnum 5) (fun t ->
      check_int "scoped" 5 (Word.to_fixnum (Handle.get t)))

let test_with_cell () =
  let h = Heap.create () in
  let result =
    Heap.with_cell h (Obj.cons h (Word.of_fixnum 9) Word.nil) (fun c ->
        ignore (Collector.collect h ~gen:0);
        Word.to_fixnum (Obj.car h (Heap.read_cell h c)))
  in
  check_int "with_cell across gc" 9 result

let test_strings_and_bytevectors () =
  let h = Heap.create () in
  let s = Obj.make_string h ~len:5 ~fill:'x' in
  Alcotest.(check string) "fill" "xxxxx" (Obj.string_to_ocaml h s);
  Obj.string_set h s 0 'A';
  Alcotest.(check string) "set" "Axxxx" (Obj.string_to_ocaml h s);
  let bv = Obj.make_bytevector h ~len:4 ~fill:0 in
  Obj.bytevector_set h bv 2 255;
  check_int "bv" 255 (Obj.bytevector_ref h bv 2);
  check_int "bv len" 4 (Obj.bytevector_length h bv)

let test_boxes_records_flonums () =
  let h = Heap.create () in
  let b = Obj.make_box h (Word.of_fixnum 1) in
  check "box?" true (Obj.is_box h b);
  Obj.box_set h b (Word.of_fixnum 2);
  check_int "box set" 2 (Word.to_fixnum (Obj.box_ref h b));
  let r = Obj.make_record h ~tag:(Word.of_fixnum 99) ~len:2 ~init:Word.nil in
  check "record?" true (Obj.is_record h r);
  check_int "tag" 99 (Word.to_fixnum (Obj.record_tag h r));
  check_int "len" 2 (Obj.record_length h r);
  Obj.record_set h r 1 (Word.of_fixnum 5);
  check_int "field" 5 (Word.to_fixnum (Obj.record_ref h r 1));
  let f = Obj.make_flonum h 3.14159 in
  check "flonum?" true (Obj.is_flonum h f);
  Alcotest.(check (float 1e-12)) "value" 3.14159 (Obj.flonum_value h f);
  List.iter
    (fun x ->
      let f = Obj.make_flonum h x in
      check "roundtrip" true (Obj.flonum_value h f = x))
    [ 0.0; -0.0; 1.5; -1e300; infinity; neg_infinity; 1e-300 ]

let test_scanner_registration () =
  let h = Heap.create () in
  let my_root = ref (Obj.cons h (Word.of_fixnum 11) Word.nil) in
  let id = Heap.add_scanner h (fun rewrite -> my_root := rewrite !my_root) in
  ignore (Collector.collect h ~gen:0);
  check_int "scanner kept object" 11 (Word.to_fixnum (Obj.car h !my_root));
  Heap.remove_scanner h id;
  (* Without the scanner the object is garbage; nothing to assert beyond no
     crash. *)
  ignore (Collector.collect h ~gen:0)

let test_alloc_forbidden () =
  let h = Heap.create () in
  h.Heap.alloc_forbidden <- true;
  Alcotest.check_raises "forbidden" Heap.Allocation_forbidden (fun () ->
      ignore (Obj.cons h Word.nil Word.nil));
  h.Heap.alloc_forbidden <- false;
  ignore (Obj.cons h Word.nil Word.nil)

let test_live_words_accounting () =
  let h = Heap.create () in
  let before = Heap.live_words h in
  ignore (Obj.make_vector h ~len:10 ~init:Word.nil);
  check_int "vector words" (before + 11) (Heap.live_words h);
  ignore (Obj.cons h Word.nil Word.nil);
  check_int "pair words" (before + 13) (Heap.live_words h)

let test_heap_limit () =
  (* A 4-segment budget: unlimited garbage survives with collections, but
     retaining everything overflows. *)
  let config = Config.v ~segment_words:64 ~max_heap_words:(64 * 8) ~max_generation:1 () in
  let h = Heap.create ~config () in
  (* Churn with collection stays within budget. *)
  for round = 0 to 9 do
    (try
       for i = 0 to 50 do
         ignore (Obj.cons h (Word.of_fixnum i) Word.nil)
       done
     with Heap.Out_of_memory -> Alcotest.fail (Printf.sprintf "round %d: spurious OOM" round));
    ignore (Collector.collect h ~gen:1)
  done;
  (* Retaining everything must eventually overflow. *)
  let keep = Heap.new_cell h Word.nil in
  Alcotest.check_raises "oom" Heap.Out_of_memory (fun () ->
      for i = 0 to 10_000 do
        Heap.write_cell h keep (Obj.cons h (Word.of_fixnum i) (Heap.read_cell h keep))
      done);
  (* The heap is still usable after freeing. *)
  Heap.free_cell h keep;
  ignore (Collector.collect h ~gen:1);
  ignore (Obj.cons h (Word.of_fixnum 1) Word.nil)

(* Property: lists of random fixnums round-trip through the heap. *)
let prop_list_roundtrip =
  QCheck.Test.make ~name:"list roundtrip" ~count:200
    QCheck.(list (int_range (-1000000) 1000000))
    (fun xs ->
      let h = Heap.create () in
      let l = Obj.list_of h (List.map Word.of_fixnum xs) in
      List.map Word.to_fixnum (Obj.to_list h l) = xs)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:200 QCheck.printable_string
    (fun s ->
      let h = Heap.create () in
      Obj.string_to_ocaml h (Obj.string_of_ocaml h s) = s)

let prop_vector_roundtrip =
  QCheck.Test.make ~name:"vector roundtrip" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let h = Heap.create () in
      let v = Obj.vector_of_list h (List.map Word.of_fixnum xs) in
      Obj.vector_length h v = List.length xs
      && List.mapi (fun i _ -> Word.to_fixnum (Obj.vector_ref h v i)) xs = xs)

let () =
  Alcotest.run "heap"
    [
      ( "segments",
        [
          Alcotest.test_case "space assignment" `Quick test_segment_assignment;
          Alcotest.test_case "many segments" `Quick test_many_segments;
          Alcotest.test_case "large object" `Quick test_large_object;
          Alcotest.test_case "oversized rejected" `Quick test_oversized_rejected;
        ] );
      ( "roots",
        [
          Alcotest.test_case "cells" `Quick test_root_cells;
          Alcotest.test_case "handles" `Quick test_handles;
          Alcotest.test_case "with_cell" `Quick test_with_cell;
          Alcotest.test_case "scanners" `Quick test_scanner_registration;
        ] );
      ( "objects",
        [
          Alcotest.test_case "strings/bytevectors" `Quick test_strings_and_bytevectors;
          Alcotest.test_case "boxes/records/flonums" `Quick test_boxes_records_flonums;
          Alcotest.test_case "alloc forbidden" `Quick test_alloc_forbidden;
          Alcotest.test_case "live words" `Quick test_live_words_accounting;
          Alcotest.test_case "heap limit" `Quick test_heap_limit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_list_roundtrip; prop_string_roundtrip; prop_vector_roundtrip ] );
    ]
