(* Run the bundled .scm example scripts end-to-end and check their printed
   output (the same files `bin/gbc_scheme.exe` runs). *)

open Gbc_scheme

let check_str = Alcotest.(check string)

(* Locate examples/scheme by walking up from the test's working directory
   (tests run inside _build; the scripts live in the source tree). *)
let script_dir =
  let rec search dir depth =
    if depth > 8 then failwith "examples/scheme not found"
    else
      let candidate = Filename.concat dir "examples/scheme" in
      if Sys.file_exists candidate && Sys.is_directory candidate then candidate
      else search (Filename.dirname dir) (depth + 1)
  in
  search (Sys.getcwd ()) 0

let run_script name =
  let path = Filename.concat script_dir name in
  let ic = open_in path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let m = Scheme.create () in
  let out = Scheme.eval_output m src in
  Machine.dispose m;
  out

let test_guardians () =
  check_str "transcript output"
    "before drop: #f\n\
     after drop: (a . b)\n\
     queue now empty: #f\n\
     twice registered, first: (c . d)\n\
     twice registered, second: (c . d)\n\
     guardian A: (e . f)\n\
     guardian B: (e . f)\n\
     same object: #t\n\
     inner guardian's object: (g . h)\n"
    (run_script "guardians.scm")

let test_guarded_table () =
  check_str "table output"
    "live keys still present: (99 98 97 96 95)\nwindow size: 5\n"
    (run_script "guarded-table.scm")

let test_wills () =
  check_str "wills output"
    "session live; wills ready? #f\n\
     session dropped; running will:\n\
     closing session-42\n\
     wills remaining? #f\n"
    (run_script "wills.scm")

let test_ports () =
  check_str "ports output"
    "ports closed by the guardian: 30\nout7 contains: record 7\n"
    (run_script "ports.scm")

let test_nonlocal_exit () =
  check_str "nonlocal exit output"
    "run 1 (no abort): completed\n\
     run 2 (abort at c): (aborted-at c)\n\
     recovered log: a b \n"
    (run_script "nonlocal-exit.scm")

let test_selftest () =
  check_str "self-test output" "self-test: 72 passed, 0 failed\n"
    (run_script "selftest.scm")

let test_metacircular () =
  check_str "metacircular output"
    "meta factorial 10 = 3628800\n\
     meta guardian session:\n\
    \  before drop: #f\n\
    \  after drop:  (a . b)\n"
    (run_script "metacircular.scm")

let () =
  Alcotest.run "scheme_files"
    [
      ( "scripts",
        [
          Alcotest.test_case "guardians.scm" `Quick test_guardians;
          Alcotest.test_case "guarded-table.scm" `Quick test_guarded_table;
          Alcotest.test_case "wills.scm" `Quick test_wills;
          Alcotest.test_case "ports.scm" `Quick test_ports;
          Alcotest.test_case "metacircular.scm" `Quick test_metacircular;
          Alcotest.test_case "nonlocal-exit.scm" `Quick test_nonlocal_exit;
          Alcotest.test_case "selftest.scm" `Quick test_selftest;
        ] );
    ]
