(* The generational collector: promotion, remembered sets, garbage
   retention behaviour, policy, and a random-graph preservation property. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:3 ()

let fx = Word.of_fixnum

let test_promotion_ladder () =
  let h = Heap.create ~config:cfg () in
  let c = Heap.new_cell h (Obj.cons h (fx 1) (fx 2)) in
  let gen () = Heap.generation_of_word h (Heap.read_cell h c) in
  check_int "born in 0" 0 (gen ());
  ignore (Collector.collect h ~gen:0);
  check_int "promoted to 1" 1 (gen ());
  ignore (Collector.collect h ~gen:0);
  check_int "gen-0 collection leaves gen 1 alone" 1 (gen ());
  ignore (Collector.collect h ~gen:1);
  check_int "promoted to 2" 2 (gen ());
  ignore (Collector.collect h ~gen:3);
  check_int "capped at max" 3 (gen ());
  ignore (Collector.collect h ~gen:3);
  check_int "stays at max" 3 (gen ());
  check_int "still intact" 1 (Word.to_fixnum (Obj.car h (Heap.read_cell h c)))

let test_uncollected_generations_untouched () =
  let h = Heap.create ~config:cfg () in
  let c = Heap.new_cell h (Obj.cons h (fx 1) (fx 2)) in
  ignore (Collector.collect h ~gen:0);
  let old_addr = Heap.read_cell h c in
  ignore (Collector.collect h ~gen:0);
  check "old object did not move" true (Word.equal old_addr (Heap.read_cell h c))

let test_garbage_in_old_generation () =
  let h = Heap.create ~config:cfg () in
  let c = Heap.new_cell h (Obj.cons h (fx 1) Word.nil) in
  (* Promote garbage along with the live pair. *)
  let g = Heap.new_cell h (Obj.make_vector h ~len:50 ~init:Word.nil) in
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:1);
  Heap.free_cell h g;
  let live_before = Heap.live_words h in
  ignore (Collector.collect h ~gen:2);
  let live_after = Heap.live_words h in
  check "old garbage reclaimed" true (live_after < live_before);
  check_int "live pair kept" 1 (Word.to_fixnum (Obj.car h (Heap.read_cell h c)))

let test_old_to_young_chain () =
  let h = Heap.create ~config:cfg () in
  (* old vector -> young pair -> younger pair *)
  let vc = Heap.new_cell h (Obj.make_vector h ~len:2 ~init:Word.nil) in
  ignore (Collector.collect h ~gen:1);
  ignore (Collector.collect h ~gen:1);
  let v = Heap.read_cell h vc in
  check_int "vector old" 2 (Heap.generation_of_word h v);
  let inner = Obj.cons h (fx 42) Word.nil in
  let outer = Obj.cons h (fx 41) inner in
  Obj.vector_set h v 0 outer;
  ignore (Collector.collect h ~gen:0);
  let v = Heap.read_cell h vc in
  let outer = Obj.vector_ref h v 0 in
  check_int "outer" 41 (Word.to_fixnum (Obj.car h outer));
  check_int "inner" 42 (Word.to_fixnum (Obj.car h (Obj.cdr h outer)));
  (* The chain was promoted to generation 1. *)
  check_int "chain promoted" 1 (Heap.generation_of_word h outer)

let test_dirty_segment_recomputed () =
  let h = Heap.create ~config:cfg () in
  let vc = Heap.new_cell h (Obj.make_vector h ~len:1 ~init:Word.nil) in
  ignore (Collector.collect h ~gen:1);
  ignore (Collector.collect h ~gen:1);
  let v = Heap.read_cell h vc in
  Obj.vector_set h v 0 (Obj.cons h (fx 1) Word.nil);
  (* First minor GC scans the dirty segment... *)
  ignore (Collector.collect h ~gen:0);
  let first = (Heap.stats h).Stats.last.Stats.dirty_segments_scanned in
  check "dirty scanned" true (first >= 1);
  (* ...after which the segment no longer refers to generation 0 (the pair
     moved up), so the next minor GC does not scan it again. *)
  ignore (Collector.collect h ~gen:0);
  let second = (Heap.stats h).Stats.last.Stats.dirty_segments_scanned in
  check_int "clean after recompute" 0 second

let test_sharing_preserved () =
  let h = Heap.create ~config:cfg () in
  let shared = Obj.cons h (fx 7) Word.nil in
  let a = Obj.cons h shared shared in
  let c = Heap.new_cell h a in
  ignore (Collector.collect h ~gen:0);
  let a = Heap.read_cell h c in
  check "sharing preserved (eq)" true (Word.equal (Obj.car h a) (Obj.cdr h a))

let test_cycle_preserved () =
  let h = Heap.create ~config:cfg () in
  let a = Obj.cons h (fx 1) Word.nil in
  let b = Obj.cons h (fx 2) a in
  Obj.set_cdr h a b;
  let c = Heap.new_cell h a in
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:1);
  let a = Heap.read_cell h c in
  let b = Obj.cdr h a in
  check_int "a" 1 (Word.to_fixnum (Obj.car h a));
  check_int "b" 2 (Word.to_fixnum (Obj.car h b));
  check "cycle closed" true (Word.equal (Obj.cdr h b) a)

let test_in_place_promotion_policy () =
  (* A policy that keeps generation 0 objects in generation 0. *)
  let config = Config.v ~max_generation:2 ~promote:(fun ~gen ~max_generation:_ -> gen) () in
  let h = Heap.create ~config () in
  let c = Heap.new_cell h (Obj.cons h (fx 5) Word.nil) in
  ignore (Collector.collect h ~gen:0);
  check_int "stayed in gen 0" 0 (Heap.generation_of_word h (Heap.read_cell h c));
  check_int "still readable" 5 (Word.to_fixnum (Obj.car h (Heap.read_cell h c)))

let test_copy_work_proportional_to_live () =
  (* E7 foundation: the same live set with 10x the garbage costs the same
     copying work. *)
  let run ~garbage =
    let h = Heap.create ~config:cfg () in
    let keep = Heap.new_cell h Word.nil in
    for i = 0 to 99 do
      Heap.write_cell h keep (Obj.cons h (fx i) (Heap.read_cell h keep))
    done;
    for i = 0 to garbage - 1 do
      ignore (Obj.cons h (fx i) Word.nil)
    done;
    ignore (Collector.collect h ~gen:0);
    (Heap.stats h).Stats.last.Stats.words_copied
  in
  let small = run ~garbage:100 and large = run ~garbage:10000 in
  check_int "copy work independent of garbage" small large

let test_stats_accumulate () =
  let h = Heap.create ~config:cfg () in
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:1);
  check_int "three collections" 3 (Heap.stats h).Stats.total.Stats.collections

let test_collect_auto_schedule () =
  check_int "count 1 -> gen 0" 0 (Runtime.scheduled_generation ~radix:4 ~max_generation:3 1);
  check_int "count 4 -> gen 1" 1 (Runtime.scheduled_generation ~radix:4 ~max_generation:3 4);
  check_int "count 8 -> gen 1" 1 (Runtime.scheduled_generation ~radix:4 ~max_generation:3 8);
  check_int "count 16 -> gen 2" 2 (Runtime.scheduled_generation ~radix:4 ~max_generation:3 16);
  check_int "count 64 -> gen 3" 3 (Runtime.scheduled_generation ~radix:4 ~max_generation:3 64);
  check_int "count 17 -> gen 0" 0 (Runtime.scheduled_generation ~radix:4 ~max_generation:3 17)

let test_safepoint_triggers () =
  let config = Config.v ~gen0_trigger_words:256 () in
  let h = Heap.create ~config () in
  let before = (Heap.stats h).Stats.total.Stats.collections in
  for i = 0 to 999 do
    ignore (Obj.cons h (fx i) Word.nil);
    Runtime.safepoint h
  done;
  check "collections happened" true ((Heap.stats h).Stats.total.Stats.collections > before)

let test_collect_request_handler () =
  let config = Config.v ~gen0_trigger_words:256 () in
  let h = Heap.create ~config () in
  let calls = ref 0 in
  Runtime.set_collect_request_handler h
    (Some
       (fun h ->
         incr calls;
         ignore (Runtime.collect_auto h)));
  for i = 0 to 999 do
    ignore (Obj.cons h (fx i) Word.nil);
    Runtime.safepoint h
  done;
  check "handler invoked" true (!calls > 0);
  check_int "handler controls collection count" !calls
    (Heap.stats h).Stats.total.Stats.collections

let test_segment_reuse () =
  let h = Heap.create ~config:cfg () in
  for _round = 0 to 9 do
    for i = 0 to 999 do
      ignore (Obj.cons h (fx i) Word.nil)
    done;
    ignore (Collector.collect h ~gen:0)
  done;
  (* Freed segments are recycled rather than accumulating. *)
  check "bounded segment count" true (Heap.live_segments h < 100)

(* ------------------------------------------------------------------ *)
(* Random graph preservation                                           *)

type shape =
  | Leaf of int
  | SChar of char
  | SNil
  | SBool of bool
  | SCons of shape * shape
  | SVec of shape list
  | SStr of string

let shape_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Leaf i) small_signed_int;
                map (fun c -> SChar c) printable;
                return SNil;
                map (fun b -> SBool b) bool;
                map (fun s -> SStr s) (small_string ~gen:printable);
              ]
          else
            frequency
              [
                (3, map2 (fun a b -> SCons (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map (fun l -> SVec l) (list_size (int_bound 5) (self (n / 3))));
                (1, map (fun i -> Leaf i) small_signed_int);
              ])
        n)

let rec build h = function
  | Leaf i -> Word.of_fixnum i
  | SChar c -> Word.of_char c
  | SNil -> Word.nil
  | SBool b -> Word.of_bool b
  | SStr s -> Obj.string_of_ocaml h s
  | SCons (a, d) ->
      let dw = build h d in
      Heap.with_cell h dw (fun c ->
          let aw = build h a in
          Obj.cons h aw (Heap.read_cell h c))
  | SVec parts ->
      let v = Obj.make_vector h ~len:(List.length parts) ~init:Word.nil in
      Heap.with_cell h v (fun c ->
          List.iteri
            (fun i p ->
              let w = build h p in
              Obj.vector_set h (Heap.read_cell h c) i w)
            parts;
          Heap.read_cell h c)

let rec matches h shape w =
  match shape with
  | Leaf i -> Word.is_fixnum w && Word.to_fixnum w = i
  | SChar c -> Word.is_char w && Word.to_char w = c
  | SNil -> Word.is_nil w
  | SBool b -> Word.equal w (Word.of_bool b)
  | SStr s -> Obj.is_string h w && Obj.string_to_ocaml h w = s
  | SCons (a, d) ->
      Word.is_pair_ptr w && matches h a (Obj.car h w) && matches h d (Obj.cdr h w)
  | SVec parts ->
      Obj.is_vector h w
      && Obj.vector_length h w = List.length parts
      && List.for_all2 (fun p i -> matches h p (Obj.vector_ref h w i))
           parts
           (List.init (List.length parts) Fun.id)

let prop_graph_preserved =
  QCheck.Test.make ~name:"random graphs survive arbitrary collections" ~count:100
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_bound 6) shape_gen) (list_size (int_bound 8) (int_bound 3))))
    (fun (shapes, gens) ->
      let h = Heap.create ~config:cfg () in
      let cells = List.map (fun s -> Heap.new_cell h (build h s)) shapes in
      (* Interleave garbage and collections of random generations. *)
      List.iter
        (fun g ->
          for i = 0 to 99 do
            ignore (Obj.cons h (fx i) Word.nil)
          done;
          ignore (Collector.collect h ~gen:g);
          Verify.check_exn h)
        gens;
      List.for_all2 (fun s c -> matches h s (Heap.read_cell h c)) shapes cells)

let prop_garbage_fully_reclaimed =
  QCheck.Test.make ~name:"full collection reclaims everything unreachable" ~count:50
    QCheck.(int_range 1 500)
    (fun n ->
      let h = Heap.create ~config:cfg () in
      for i = 0 to n - 1 do
        ignore (Obj.make_vector h ~len:(1 + (i mod 7)) ~init:Word.nil)
      done;
      ignore (Collector.collect h ~gen:3);
      ignore (Collector.collect h ~gen:3);
      Heap.live_words h = 0)

let () =
  Alcotest.run "collector"
    [
      ( "generations",
        [
          Alcotest.test_case "promotion ladder" `Quick test_promotion_ladder;
          Alcotest.test_case "old gens untouched" `Quick test_uncollected_generations_untouched;
          Alcotest.test_case "old garbage" `Quick test_garbage_in_old_generation;
          Alcotest.test_case "old-to-young chain" `Quick test_old_to_young_chain;
          Alcotest.test_case "dirty recompute" `Quick test_dirty_segment_recomputed;
          Alcotest.test_case "in-place policy" `Quick test_in_place_promotion_policy;
        ] );
      ( "structure",
        [
          Alcotest.test_case "sharing" `Quick test_sharing_preserved;
          Alcotest.test_case "cycles" `Quick test_cycle_preserved;
        ] );
      ( "policy",
        [
          Alcotest.test_case "copy work ∝ live" `Quick test_copy_work_proportional_to_live;
          Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
          Alcotest.test_case "schedule" `Quick test_collect_auto_schedule;
          Alcotest.test_case "safepoint trigger" `Quick test_safepoint_triggers;
          Alcotest.test_case "collect-request handler" `Quick test_collect_request_handler;
          Alcotest.test_case "segment reuse" `Quick test_segment_reuse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_graph_preserved; prop_garbage_fully_reclaimed ] );
    ]
