(* Smoke tests for the heap and collector; the full suites live in the
   other test_*.ml files. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let heap () = Heap.create ()

let test_alloc_pairs () =
  let h = heap () in
  let a = Obj.cons h (Word.of_fixnum 1) (Word.of_fixnum 2) in
  check_int "car" 1 (Word.to_fixnum (Obj.car h a));
  check_int "cdr" 2 (Word.to_fixnum (Obj.cdr h a));
  Obj.set_car h a (Word.of_fixnum 42);
  check_int "set car" 42 (Word.to_fixnum (Obj.car h a));
  check "pair?" true (Obj.is_pair h a);
  check "weak?" false (Obj.is_weak_pair h a)

let test_alloc_typed () =
  let h = heap () in
  let v = Obj.make_vector h ~len:10 ~init:Word.nil in
  check_int "len" 10 (Obj.vector_length h v);
  Obj.vector_set h v 3 (Word.of_fixnum 7);
  check_int "ref" 7 (Word.to_fixnum (Obj.vector_ref h v 3));
  let s = Obj.string_of_ocaml h "hello" in
  Alcotest.(check string) "string" "hello" (Obj.string_to_ocaml h s)

let test_gc_preserves_roots () =
  let h = heap () in
  let l = Obj.list_of h (List.map Word.of_fixnum [ 1; 2; 3; 4; 5 ]) in
  let c = Heap.new_cell h l in
  (* Some garbage. *)
  for i = 0 to 999 do
    ignore (Obj.cons h (Word.of_fixnum i) Word.nil)
  done;
  ignore (Collector.collect h ~gen:0);
  let l' = Heap.read_cell h c in
  check "moved" false (Word.equal l l');
  let xs = List.map Word.to_fixnum (Obj.to_list h l') in
  Alcotest.(check (list int)) "contents" [ 1; 2; 3; 4; 5 ] xs

let test_gc_drops_garbage () =
  let h = heap () in
  let keep = Heap.new_cell h (Obj.cons h Word.true_ Word.nil) in
  for i = 0 to 9999 do
    ignore (Obj.make_vector h ~len:8 ~init:(Word.of_fixnum i))
  done;
  ignore (Collector.collect h ~gen:0);
  let stats = Heap.stats h in
  check "copied little" true (stats.Stats.last.Stats.objects_copied < 10);
  ignore (Heap.read_cell h keep)

let test_promotion_and_remembered_set () =
  let h = heap () in
  let vcell =
    Heap.new_cell h (Obj.make_vector h ~len:4 ~init:Word.nil)
  in
  (* Promote the vector to an older generation. *)
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:1);
  let v = Heap.read_cell h vcell in
  check_int "gen" 2 (Heap.generation_of_word h v);
  (* Store a young pair into the old vector; only the vector's segment
     remembers it. *)
  let p = Obj.cons h (Word.of_fixnum 9) Word.nil in
  Obj.vector_set h v 0 p;
  ignore (Collector.collect h ~gen:0);
  let v = Heap.read_cell h vcell in
  let p' = Obj.vector_ref h v 0 in
  check_int "young survived via remembered set" 9 (Word.to_fixnum (Obj.car h p'))

let test_weak_pair_broken () =
  let h = heap () in
  let dead = Obj.cons h (Word.of_fixnum 1) Word.nil in
  let live = Obj.cons h (Word.of_fixnum 2) Word.nil in
  let wp_dead = Weak_pair.cons h dead (Word.of_fixnum 10) in
  let wp_live = Weak_pair.cons h live (Word.of_fixnum 20) in
  let c1 = Heap.new_cell h wp_dead in
  let c2 = Heap.new_cell h wp_live in
  let c3 = Heap.new_cell h live in
  ignore (Collector.collect h ~gen:0);
  let wp_dead = Heap.read_cell h c1 and wp_live = Heap.read_cell h c2 in
  check "dead broken" true (Weak_pair.broken h wp_dead);
  check_int "dead cdr intact" 10 (Word.to_fixnum (Weak_pair.cdr h wp_dead));
  check "live kept" false (Weak_pair.broken h wp_live);
  check_int "live car" 2 (Word.to_fixnum (Obj.car h (Weak_pair.car h wp_live)));
  check "live updated" true (Word.equal (Weak_pair.car h wp_live) (Heap.read_cell h c3))

let test_guardian_basic () =
  let h = heap () in
  let g = Guardian.make h in
  let gc_cell = Heap.new_cell h g in
  let x = Obj.cons h (Word.of_fixnum 5) (Word.of_fixnum 6) in
  Guardian.register h g x;
  let xcell = Heap.new_cell h x in
  ignore (Collector.collect h ~gen:0);
  let g = Heap.read_cell h gc_cell in
  (* Still accessible through xcell: nothing retrievable. *)
  check "accessible -> none" true (Guardian.retrieve h g = None);
  Heap.free_cell h xcell;
  (* x was promoted by the first collection; only a collection of its new
     generation can prove it inaccessible. *)
  ignore (Collector.collect h ~gen:1);
  let g = Heap.read_cell h gc_cell in
  (match Guardian.retrieve h g with
  | Some w ->
      check_int "saved car" 5 (Word.to_fixnum (Obj.car h w));
      check_int "saved cdr" 6 (Word.to_fixnum (Obj.cdr h w))
  | None -> Alcotest.fail "expected object from guardian");
  check "then empty" true (Guardian.retrieve h g = None)

let test_guardian_double_registration () =
  let h = heap () in
  let g = Guardian.make h in
  let gcell = Heap.new_cell h g in
  let x = Obj.cons h (Word.of_fixnum 1) (Word.of_fixnum 2) in
  Guardian.register h g x;
  Guardian.register h g x;
  ignore (Collector.collect h ~gen:0);
  let g = Heap.read_cell h gcell in
  check "retrievable twice: 1" true (Guardian.retrieve h g <> None);
  check "retrievable twice: 2" true (Guardian.retrieve h g <> None);
  check "then empty" true (Guardian.retrieve h g = None)

let test_guardian_in_guardian () =
  let h = heap () in
  let g = Guardian.make h in
  let gcell = Heap.new_cell h g in
  let inner = Guardian.make h in
  let x = Obj.cons h (Word.of_fixnum 7) Word.nil in
  Guardian.register h g inner;
  Guardian.register h inner x;
  (* Drop both the inner guardian and x. *)
  ignore (Collector.collect h ~gen:0);
  let g = Heap.read_cell h gcell in
  (match Guardian.retrieve h g with
  | Some innerg ->
      check "inner is guardian" true (Guardian.is_guardian h innerg);
      (match Guardian.retrieve h innerg with
      | Some w -> check_int "x via inner" 7 (Word.to_fixnum (Obj.car h w))
      | None -> Alcotest.fail "inner guardian should yield x")
  | None -> Alcotest.fail "outer guardian should yield inner guardian")

let test_dropped_guardian_cancels () =
  let h = heap () in
  let g = Guardian.make h in
  let x = Obj.cons h (Word.of_fixnum 1) Word.nil in
  Guardian.register h g x;
  (* Drop guardian and object together: everything reclaimed, nothing
     resurrected. *)
  ignore (Collector.collect h ~gen:0);
  let stats = Heap.stats h in
  check_int "no resurrections" 0 stats.Stats.last.Stats.guardian_resurrections;
  check "entry dropped" true (stats.Stats.last.Stats.guardian_entries_dropped >= 1)

let test_weak_to_guarded_not_broken () =
  let h = heap () in
  let g = Guardian.make h in
  let gcell = Heap.new_cell h g in
  let x = Obj.cons h (Word.of_fixnum 3) Word.nil in
  Guardian.register h g x;
  let wp = Weak_pair.cons h x Word.nil in
  let wcell = Heap.new_cell h wp in
  ignore (Collector.collect h ~gen:0);
  let wp = Heap.read_cell h wcell and g = Heap.read_cell h gcell in
  check "weak survived guardian save" false (Weak_pair.broken h wp);
  (match Guardian.retrieve h g with
  | Some w -> check "same object" true (Word.equal w (Weak_pair.car h wp))
  | None -> Alcotest.fail "guardian should have saved x")

let () =
  Alcotest.run "gbc_runtime_smoke"
    [
      ( "heap",
        [
          Alcotest.test_case "pairs" `Quick test_alloc_pairs;
          Alcotest.test_case "typed" `Quick test_alloc_typed;
          Alcotest.test_case "gc roots" `Quick test_gc_preserves_roots;
          Alcotest.test_case "gc garbage" `Quick test_gc_drops_garbage;
          Alcotest.test_case "remembered set" `Quick test_promotion_and_remembered_set;
        ] );
      ( "weak",
        [ Alcotest.test_case "weak pair broken/kept" `Quick test_weak_pair_broken ] );
      ( "guardian",
        [
          Alcotest.test_case "basic" `Quick test_guardian_basic;
          Alcotest.test_case "double registration" `Quick test_guardian_double_registration;
          Alcotest.test_case "guardian in guardian" `Quick test_guardian_in_guardian;
          Alcotest.test_case "dropped guardian" `Quick test_dropped_guardian_cancels;
          Alcotest.test_case "weak to guarded" `Quick test_weak_to_guarded_not_broken;
        ] );
    ]
