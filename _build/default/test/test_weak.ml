(* Weak pairs: breaking, mending, generational interactions, and the
   guardian-pass/weak-pass ordering (DESIGN.md D2 / experiment E11). *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:3 ()
let heap () = Heap.create ~config:cfg ()
let fx = Word.of_fixnum
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

let test_weak_pair_is_pair () =
  let h = heap () in
  let wp = Weak_pair.cons h (fx 1) (fx 2) in
  check "pair tag" true (Word.is_pair_ptr wp);
  check "weak-pair?" true (Obj.is_weak_pair h wp);
  check "not normal pair" false (Obj.is_pair h wp);
  check_int "car" 1 (Word.to_fixnum (Weak_pair.car h wp));
  check_int "cdr" 2 (Word.to_fixnum (Weak_pair.cdr h wp));
  Weak_pair.set_car h wp (fx 3);
  Weak_pair.set_cdr h wp (fx 4);
  check_int "set car" 3 (Word.to_fixnum (Weak_pair.car h wp));
  check_int "set cdr" 4 (Word.to_fixnum (Weak_pair.cdr h wp))

let test_cdr_is_strong () =
  let h = heap () in
  let wp = Handle.create h (Weak_pair.cons h Word.nil (Obj.cons h (fx 7) Word.nil)) in
  full_collect h;
  let wp = Handle.get wp in
  check_int "cdr kept alive" 7 (Word.to_fixnum (Obj.car h (Weak_pair.cdr h wp)))

let test_car_does_not_retain () =
  let h = heap () in
  let wp = Handle.create h (Weak_pair.cons h (Obj.cons h (fx 1) Word.nil) Word.nil) in
  let live_with = Heap.live_words h in
  full_collect h;
  check "broken" true (Weak_pair.broken h (Handle.get wp));
  check "target reclaimed" true (Heap.live_words h < live_with)

let test_weak_chain () =
  (* weak pair -> weak pair -> object: intermediate pair strong via cdr. *)
  let h = heap () in
  let obj = Obj.cons h (fx 5) Word.nil in
  let inner = Weak_pair.cons h obj Word.nil in
  let outer = Handle.create h (Weak_pair.cons h (fx 0) inner) in
  let objc = Handle.create h obj in
  full_collect h;
  let inner = Weak_pair.cdr h (Handle.get outer) in
  check "inner alive, car mended" false (Weak_pair.broken h inner);
  check "points at moved obj" true (Word.equal (Weak_pair.car h inner) (Handle.get objc));
  Handle.free objc;
  full_collect h;
  let inner = Weak_pair.cdr h (Handle.get outer) in
  check "inner broken after obj death" true (Weak_pair.broken h inner)

let test_old_weak_pair_young_object () =
  (* Promote a weak pair to an old generation, then point its car at a young
     object.  A minor collection must update (object lives) or break
     (object dies) the old weak car — the dirty-weak-segment path. *)
  let h = heap () in
  let wp = Handle.create h (Weak_pair.cons h Word.nil Word.nil) in
  full_collect h;
  full_collect h;
  check "weak pair old" true (Heap.generation_of_word h (Handle.get wp) >= 2);
  (* Case 1: young object survives (rooted): car updated to new address. *)
  let young = Handle.create h (Obj.cons h (fx 9) Word.nil) in
  Weak_pair.set_car h (Handle.get wp) (Handle.get young);
  ignore (Collector.collect h ~gen:0);
  check "updated to survivor" true
    (Word.equal (Weak_pair.car h (Handle.get wp)) (Handle.get young));
  check_int "readable" 9 (Word.to_fixnum (Obj.car h (Weak_pair.car h (Handle.get wp))));
  (* Case 2: young object dies: old weak car broken by a minor GC. *)
  Weak_pair.set_car h (Handle.get wp) (Obj.cons h (fx 10) Word.nil);
  ignore (Collector.collect h ~gen:0);
  check "broken for dead young" true (Weak_pair.broken h (Handle.get wp));
  Handle.free young

let test_weak_pair_promotion_keeps_weakness () =
  let h = heap () in
  let target = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  let wp = Handle.create h (Weak_pair.cons h (Handle.get target) Word.nil) in
  full_collect h;
  full_collect h;
  (* Weak pair now old; its weakness must persist in the new segment. *)
  check "still a weak pair" true (Obj.is_weak_pair h (Handle.get wp));
  Handle.free target;
  full_collect h;
  check "still weak after promotion" true (Weak_pair.broken h (Handle.get wp))

let test_guardian_pass_before_weak_pass () =
  (* E11/D2: an object that is inaccessible but guarded is saved, and weak
     pointers to it are mended, not broken. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let x = Obj.cons h (fx 3) Word.nil in
  Guardian.register h (Handle.get g) x;
  let wp = Handle.create h (Weak_pair.cons h x Word.nil) in
  ignore (Collector.collect h ~gen:0);
  check "weak pointer survives guardian save" false (Weak_pair.broken h (Handle.get wp));
  let saved = Option.get (Guardian.retrieve h (Handle.get g)) in
  check "same object" true (Word.equal saved (Weak_pair.car h (Handle.get wp)))

let test_weak_pass_first_breaks_property () =
  (* The ablation: running the weak pass before the guardian pass breaks the
     weak pointer even though the object is saved — demonstrating why the
     paper specifies the order. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let x = Obj.cons h (fx 3) Word.nil in
  Guardian.register h (Handle.get g) x;
  let wp = Handle.create h (Weak_pair.cons h x Word.nil) in
  ignore (Collector.collect ~weak_pass_first:true h ~gen:0);
  check "wrong order breaks the weak pointer" true (Weak_pair.broken h (Handle.get wp));
  check "object still saved" true (Guardian.retrieve h (Handle.get g) <> None)

let test_transport_marker_shape () =
  (* The transport-guardian idiom's invariant: a weak pair registered with a
     guardian is returned (marker young), with car intact when the object
     lives. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let obj = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  let marker = Weak_pair.cons h (Handle.get obj) Word.false_ in
  Guardian.register h (Handle.get g) marker;
  ignore (Collector.collect h ~gen:0);
  (match Guardian.retrieve h (Handle.get g) with
  | Some m ->
      check "marker is weak pair" true (Obj.is_weak_pair h m);
      check "car mended to survivor" true (Word.equal (Weak_pair.car h m) (Handle.get obj))
  | None -> Alcotest.fail "marker should return");
  Handle.free obj

let test_many_weak_pairs_counters () =
  let h = heap () in
  let keep = Handle.create h Word.nil in
  (* 50 weak pairs to dying objects, 50 to living ones. *)
  let living = Handle.create h Word.nil in
  for i = 0 to 99 do
    let target = Obj.cons h (fx i) Word.nil in
    if i mod 2 = 0 then Handle.set living (Obj.cons h target (Handle.get living));
    let wp = Weak_pair.cons h target Word.nil in
    Handle.set keep (Obj.cons h wp (Handle.get keep))
  done;
  ignore (Collector.collect h ~gen:0);
  let stats = (Heap.stats h).Stats.last in
  check_int "half broken" 50 stats.Stats.weak_pointers_broken;
  check "all scanned" true (stats.Stats.weak_pairs_scanned >= 100);
  (* Verify each weak pair agrees with its target's fate. *)
  let broken = ref 0 and alive = ref 0 in
  let rec walk l =
    if not (Word.is_nil l) then begin
      let wp = Obj.car h l in
      if Weak_pair.broken h wp then incr broken else incr alive;
      walk (Obj.cdr h l)
    end
  in
  walk (Handle.get keep);
  check_int "broken count" 50 !broken;
  check_int "alive count" 50 !alive;
  Handle.free living

(* Property: a weak pair's car is broken iff its target was otherwise
   unreachable. *)
let prop_weak_iff_dead =
  QCheck.Test.make ~name:"weak car broken iff target dead" ~count:100
    QCheck.(list bool)
    (fun flags ->
      let h = heap () in
      let entries =
        List.map
          (fun keep ->
            let target = Obj.cons h (fx 1) Word.nil in
            let wp = Handle.create h (Weak_pair.cons h target Word.nil) in
            let root = if keep then Some (Handle.create h target) else None in
            (wp, keep, root))
          flags
      in
      full_collect h;
      List.for_all
        (fun (wp, keep, _) -> Weak_pair.broken h (Handle.get wp) = not keep)
        entries)

let () =
  Alcotest.run "weak"
    [
      ( "basics",
        [
          Alcotest.test_case "weak pair is pair" `Quick test_weak_pair_is_pair;
          Alcotest.test_case "cdr strong" `Quick test_cdr_is_strong;
          Alcotest.test_case "car weak" `Quick test_car_does_not_retain;
          Alcotest.test_case "weak chain" `Quick test_weak_chain;
        ] );
      ( "generations",
        [
          Alcotest.test_case "old weak, young target" `Quick test_old_weak_pair_young_object;
          Alcotest.test_case "weakness survives promotion" `Quick
            test_weak_pair_promotion_keeps_weakness;
          Alcotest.test_case "counters" `Quick test_many_weak_pairs_counters;
        ] );
      ( "guardian interaction (E11)",
        [
          Alcotest.test_case "guardian pass first" `Quick test_guardian_pass_before_weak_pass;
          Alcotest.test_case "wrong order breaks it (D2)" `Quick
            test_weak_pass_first_breaks_property;
          Alcotest.test_case "transport marker" `Quick test_transport_marker_shape;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_weak_iff_dead ]);
    ]
