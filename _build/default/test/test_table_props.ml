(* Property-based differential tests: the table structures (guarded table,
   eq table in both rehash strategies, weak eq table) against plain OCaml
   association models, under random operations interleaved with random
   collections and key deaths. *)

open Gbc_runtime
module Guarded_table = Gbc.Guarded_table
module Eq_table = Gbc.Eq_table
module Weak_eq_table = Gbc.Weak_eq_table

let cfg = Config.v ~segment_words:128 ~max_generation:2 ()
let fx = Word.of_fixnum

(* Keys are heap pairs (id . id) tracked by handles; the model is keyed by
   the integer id. *)
type keyed = { id : int; handle : Handle.t; mutable dead : bool }

type op =
  | Insert of int * int  (* key seed, value *)
  | Lookup of int
  | Remove of int
  | Kill of int  (* drop a key's handle *)
  | Gc of int

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      (4, map2 (fun a b -> Insert (a, b)) small_nat small_nat);
      (3, map (fun a -> Lookup a) small_nat);
      (1, map (fun a -> Remove a) small_nat);
      (2, map (fun a -> Kill a) small_nat);
      (2, map (fun g -> Gc (g mod 3)) small_nat);
    ]

let pp_op = function
  | Insert (a, b) -> Printf.sprintf "Insert(%d,%d)" a b
  | Lookup a -> Printf.sprintf "Lookup(%d)" a
  | Remove a -> Printf.sprintf "Remove(%d)" a
  | Kill a -> Printf.sprintf "Kill(%d)" a
  | Gc g -> Printf.sprintf "Gc(%d)" g

(* Shared driver: [ops] are interpreted against a table via the callbacks
   and against a (int -> int) model; live keys are compared after every
   step.  [removal] distinguishes tables with a remove operation. *)
let drive ~set ~lookup ~remove ~on_kill h ops =
  let keys : (int, keyed) Hashtbl.t = Hashtbl.create 16 in
  let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let pick seed =
    let live = Hashtbl.fold (fun _ k acc -> if k.dead then acc else k :: acc) keys [] in
    match live with
    | [] -> None
    | _ ->
        let live = List.sort (fun a b -> compare a.id b.id) live in
        Some (List.nth live (abs seed mod List.length live))
  in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Insert (seed, v) ->
          (* Half the time reuse an existing key, half create a fresh one. *)
          let k =
            if seed mod 2 = 0 then
              match pick seed with
              | Some k -> k
              | None ->
                  let id = !next in
                  incr next;
                  let k = { id; handle = Handle.create h (Obj.cons h (fx id) (fx id)); dead = false } in
                  Hashtbl.add keys id k;
                  k
            else begin
              let id = !next in
              incr next;
              let k = { id; handle = Handle.create h (Obj.cons h (fx id) (fx id)); dead = false } in
              Hashtbl.add keys id k;
              k
            end
          in
          set (Handle.get k.handle) (fx v);
          Hashtbl.replace model k.id v
      | Lookup seed -> (
          match pick seed with
          | None -> ()
          | Some k -> (
              let got = lookup (Handle.get k.handle) in
              match (got, Hashtbl.find_opt model k.id) with
              | Some w, Some v -> if Word.to_fixnum w <> v then ok := false
              | None, None -> ()
              | Some _, None | None, Some _ -> ok := false))
      | Remove seed -> (
          match pick seed with
          | None -> ()
          | Some k ->
              remove (Handle.get k.handle);
              Hashtbl.remove model k.id)
      | Kill seed -> (
          match pick seed with
          | None -> ()
          | Some k ->
              k.dead <- true;
              Handle.free k.handle;
              on_kill model k.id)
      | Gc g -> ignore (Collector.collect h ~gen:g))
    ops;
  (* Final check over every live key. *)
  Hashtbl.iter
    (fun id k ->
      if not k.dead then
        match (lookup (Handle.get k.handle), Hashtbl.find_opt model id) with
        | Some w, Some v -> if Word.to_fixnum w <> v then ok := false
        | None, None -> ()
        | _ -> ok := false)
    keys;
  Hashtbl.iter (fun _ k -> if not k.dead then Handle.free k.handle) keys;
  !ok

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 5 80) op_gen)

let prop_guarded_table =
  QCheck.Test.make ~name:"guarded table matches model" ~count:150 ops_arbitrary
    (fun ops ->
      let h = Heap.create ~config:cfg () in
      let stable_hash h w = if Word.is_pair_ptr w then Word.to_fixnum (Obj.car h w) else 0 in
      let t = Guarded_table.create h ~hash:stable_hash ~size:8 in
      drive h ops
        ~set:(fun k v -> Guarded_table.set t k v)
        ~lookup:(fun k -> Guarded_table.lookup t k)
        ~remove:(fun k -> Guarded_table.remove t k)
        ~on_kill:(fun model id -> Hashtbl.remove model id)
      (* dead keys leave the model too: the guardian expunges them *))

let prop_eq_table strategy name =
  QCheck.Test.make ~name ~count:150 ops_arbitrary (fun ops ->
      let h = Heap.create ~config:cfg () in
      let t = Eq_table.create h ~strategy ~size:8 in
      drive h ops
        ~set:(fun k v -> Eq_table.set t k v)
        ~lookup:(fun k -> Eq_table.lookup t k)
        ~remove:(fun k -> Eq_table.remove t k)
        ~on_kill:(fun _ _ -> () (* strong table: entries persist *)))

let prop_weak_eq_table =
  QCheck.Test.make ~name:"weak eq table matches model" ~count:150 ops_arbitrary
    (fun ops ->
      let h = Heap.create ~config:cfg () in
      let t = Weak_eq_table.create h ~size:8 in
      drive h ops
        ~set:(fun k v -> Weak_eq_table.set t k v)
        ~lookup:(fun k -> Weak_eq_table.lookup t k)
        ~remove:(fun k -> Weak_eq_table.remove t k)
        ~on_kill:(fun model id -> Hashtbl.remove model id))

let () =
  Alcotest.run "table_props"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_guarded_table;
            prop_eq_table `Full_rehash "eq table (full rehash) matches model";
            prop_eq_table `Transport "eq table (transport) matches model";
            prop_weak_eq_table;
          ] );
    ]
