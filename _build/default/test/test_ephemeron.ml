(* Ephemeron pairs: conditional weakness (extension beyond the paper,
   following later Chez Scheme).  The headline property: a value that
   references its own key leaks with a weak pair but collapses with an
   ephemeron. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:3 ()
let heap () = Heap.create ~config:cfg ()
let fx = Word.of_fixnum
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

let test_basic_types () =
  let h = heap () in
  let e = Ephemeron.cons h (fx 1) (fx 2) in
  check "ephemeron?" true (Ephemeron.is_ephemeron h e);
  check "not weak pair" false (Obj.is_weak_pair h e);
  check "not plain pair" false (Obj.is_pair h e);
  check "pair tag" true (Word.is_pair_ptr e);
  check_int "key" 1 (Word.to_fixnum (Ephemeron.key h e));
  check_int "value" 2 (Word.to_fixnum (Ephemeron.value h e))

let test_live_key_keeps_value () =
  let h = heap () in
  let key = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  let payload = Obj.cons h (fx 99) Word.nil in
  let e = Handle.create h (Ephemeron.cons h (Handle.get key) payload) in
  full_collect h;
  Verify.check_exn h;
  let e' = Handle.get e in
  check "intact" false (Ephemeron.broken h e');
  check "key updated" true (Word.equal (Ephemeron.key h e') (Handle.get key));
  check_int "value traced" 99 (Word.to_fixnum (Obj.car h (Ephemeron.value h e')));
  Handle.free key;
  Handle.free e

let test_dead_key_breaks_both () =
  let h = heap () in
  let e =
    Handle.create h
      (Ephemeron.cons h (Obj.cons h (fx 1) Word.nil) (Obj.cons h (fx 2) Word.nil))
  in
  full_collect h;
  Verify.check_exn h;
  check "broken" true (Ephemeron.broken h (Handle.get e));
  check "key is #f" true (Word.is_false (Ephemeron.key h (Handle.get e)));
  check "value is #f" true (Word.is_false (Ephemeron.value h (Handle.get e)));
  Handle.free e

let test_value_does_not_retain () =
  (* The value must not keep anything alive when the key is dead. *)
  let h = heap () in
  let baseline = Heap.live_words h in
  let e =
    Handle.create h
      (Ephemeron.cons h (Obj.cons h (fx 1) Word.nil)
         (Obj.make_vector h ~len:100 ~init:Word.nil))
  in
  full_collect h;
  check "value reclaimed" true (Heap.live_words h < baseline + 20);
  Handle.free e

let test_self_referential_value () =
  (* THE ephemeron property: value references its own key.  A weak pair
     keeps the key alive forever; an ephemeron collapses. *)
  let h = heap () in
  let key = Obj.cons h (fx 7) Word.nil in
  let value_mentioning_key = Obj.cons h key Word.nil in
  let eph = Handle.create h (Ephemeron.cons h key value_mentioning_key) in
  (* Same shape with a weak pair, for contrast. *)
  let key2 = Obj.cons h (fx 8) Word.nil in
  let value2 = Obj.cons h key2 Word.nil in
  let weak = Handle.create h (Weak_pair.cons h key2 value2) in
  full_collect h;
  Verify.check_exn h;
  check "ephemeron collapsed" true (Ephemeron.broken h (Handle.get eph));
  (* The weak pair's strong cdr kept key2 alive: its weak car is intact. *)
  check "weak pair leaks" false (Weak_pair.broken h (Handle.get weak));
  check_int "leaked key still there" 8
    (Word.to_fixnum (Obj.car h (Weak_pair.car h (Handle.get weak))));
  Handle.free eph;
  Handle.free weak

let test_chained_ephemerons () =
  (* e1: k1 -> k2;  e2: k2 -> payload.  k2 is reachable only through e1's
     value, so e2 lives exactly as long as k1. *)
  let h = heap () in
  let k1 = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  let k2 = Obj.cons h (fx 2) Word.nil in
  let e2 = Handle.create h (Ephemeron.cons h k2 (Obj.cons h (fx 22) Word.nil)) in
  let e1 = Handle.create h (Ephemeron.cons h (Handle.get k1) k2) in
  full_collect h;
  Verify.check_exn h;
  check "e1 intact" false (Ephemeron.broken h (Handle.get e1));
  check "e2 intact (key live via e1's value)" false (Ephemeron.broken h (Handle.get e2));
  check_int "payload" 22 (Word.to_fixnum (Obj.car h (Ephemeron.value h (Handle.get e2))));
  (* Drop k1: the whole chain collapses. *)
  Handle.free k1;
  full_collect h;
  check "e1 broken" true (Ephemeron.broken h (Handle.get e1));
  check "e2 broken" true (Ephemeron.broken h (Handle.get e2));
  Handle.free e1;
  Handle.free e2

let test_guardian_saved_key_counts_as_reachable () =
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let key = Obj.cons h (fx 5) Word.nil in
  Guardian.register h (Handle.get g) key;
  let e = Handle.create h (Ephemeron.cons h key (Obj.cons h (fx 50) Word.nil)) in
  full_collect h;
  Verify.check_exn h;
  (* The guardian saved the key, so the ephemeron must be intact and its
     key field must point at the saved object. *)
  check "intact" false (Ephemeron.broken h (Handle.get e));
  let saved = Option.get (Guardian.retrieve h (Handle.get g)) in
  check "key eq saved" true (Word.equal saved (Ephemeron.key h (Handle.get e)));
  check_int "value traced" 50 (Word.to_fixnum (Obj.car h (Ephemeron.value h (Handle.get e))));
  (* Once the saved key is dropped for real, the ephemeron breaks. *)
  full_collect h;
  check "broken after real death" true (Ephemeron.broken h (Handle.get e));
  Handle.free g;
  Handle.free e

let test_old_ephemeron_young_key () =
  (* Dirty-segment path: an old ephemeron whose key and value are young. *)
  let h = heap () in
  let e = Handle.create h (Ephemeron.cons h Word.nil Word.nil) in
  full_collect h;
  full_collect h;
  check "old" true (Heap.generation_of_word h (Handle.get e) >= 2);
  (* Live young key: minor GC must keep value and update both fields. *)
  let key = Handle.create h (Obj.cons h (fx 9) Word.nil) in
  Ephemeron.set_key h (Handle.get e) (Handle.get key);
  Ephemeron.set_value h (Handle.get e) (Obj.cons h (fx 90) Word.nil);
  ignore (Collector.collect h ~gen:0);
  Verify.check_exn h;
  check "key updated" true (Word.equal (Ephemeron.key h (Handle.get e)) (Handle.get key));
  check_int "value survived" 90
    (Word.to_fixnum (Obj.car h (Ephemeron.value h (Handle.get e))));
  (* Dead young key: minor GC must break it. *)
  Ephemeron.set_key h (Handle.get e) (Obj.cons h (fx 10) Word.nil);
  Ephemeron.set_value h (Handle.get e) (Obj.cons h (fx 100) Word.nil);
  ignore (Collector.collect h ~gen:0);
  Verify.check_exn h;
  check "broken by minor gc" true (Ephemeron.broken h (Handle.get e));
  Handle.free key;
  Handle.free e

let test_cycle_of_dead_ephemerons () =
  (* Mutual: e1's value holds k2, e2's value holds k1, nothing else holds
     either key: everything must collapse (a naive strong-value scheme
     would retain the cycle). *)
  let h = heap () in
  let k1 = Obj.cons h (fx 1) Word.nil in
  let k2 = Obj.cons h (fx 2) Word.nil in
  let e1 = Handle.create h (Ephemeron.cons h k1 k2) in
  let e2 = Handle.create h (Ephemeron.cons h k2 k1) in
  full_collect h;
  Verify.check_exn h;
  check "e1 broken" true (Ephemeron.broken h (Handle.get e1));
  check "e2 broken" true (Ephemeron.broken h (Handle.get e2));
  Handle.free e1;
  Handle.free e2

let test_stats_counters () =
  let h = heap () in
  let keep = Handle.create h Word.nil in
  for i = 0 to 9 do
    let key = Obj.cons h (fx i) Word.nil in
    let e = Ephemeron.cons h key (fx (i * 10)) in
    (* keep 5 keys alive *)
    if i < 5 then Handle.set keep (Obj.cons h key (Handle.get keep));
    Handle.set keep (Obj.cons h e (Handle.get keep))
  done;
  full_collect h;
  let s = (Heap.stats h).Stats.last in
  check_int "broken" 5 s.Stats.ephemerons_broken;
  check "scanned at least 10" true (s.Stats.ephemerons_scanned >= 10);
  Handle.free keep

let prop_ephemeron_iff_key_dead =
  QCheck.Test.make ~name:"ephemeron broken iff key dead" ~count:100
    QCheck.(list bool)
    (fun flags ->
      let h = heap () in
      let entries =
        List.map
          (fun keep ->
            let key = Obj.cons h (fx 1) Word.nil in
            let e = Handle.create h (Ephemeron.cons h key (Obj.cons h (fx 2) Word.nil)) in
            let root = if keep then Some (Handle.create h key) else None in
            (e, keep, root))
          flags
      in
      full_collect h;
      Verify.check_exn h;
      List.for_all
        (fun (e, keep, _) -> Ephemeron.broken h (Handle.get e) = not keep)
        entries)

let () =
  Alcotest.run "ephemeron"
    [
      ( "semantics",
        [
          Alcotest.test_case "types" `Quick test_basic_types;
          Alcotest.test_case "live key" `Quick test_live_key_keeps_value;
          Alcotest.test_case "dead key" `Quick test_dead_key_breaks_both;
          Alcotest.test_case "value not retained" `Quick test_value_does_not_retain;
          Alcotest.test_case "self-referential value" `Quick test_self_referential_value;
          Alcotest.test_case "chains" `Quick test_chained_ephemerons;
          Alcotest.test_case "mutual cycle" `Quick test_cycle_of_dead_ephemerons;
        ] );
      ( "interactions",
        [
          Alcotest.test_case "guardian-saved key" `Quick test_guardian_saved_key_counts_as_reachable;
          Alcotest.test_case "old ephemeron, young key" `Quick test_old_ephemeron_young_key;
          Alcotest.test_case "counters" `Quick test_stats_counters;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_ephemeron_iff_key_dead ]);
    ]
