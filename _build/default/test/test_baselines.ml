(* The Section 2 baseline mechanisms: weak sets, weak hashing, Dickey
   register-for-finalization, and Atkins-style header indirection. *)

open Gbc_runtime
module Weak_set = Gbc_baselines.Weak_set
module Weak_hashing = Gbc_baselines.Weak_hashing
module Finalize = Gbc_baselines.Finalize
module Indirect = Gbc_baselines.Indirect

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:2 ()
let heap () = Heap.create ~config:cfg ()
let fx = Word.of_fixnum
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

(* --- weak sets ---------------------------------------------------- *)

let test_weak_set_membership () =
  let h = heap () in
  let s = Weak_set.create h in
  let a = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  let b = Handle.create h (Obj.cons h (fx 2) Word.nil) in
  Weak_set.add s (Handle.get a);
  Weak_set.add s (Handle.get b);
  check_int "two members" 2 (List.length (Weak_set.members s));
  Weak_set.remove s (Handle.get a);
  check_int "one member" 1 (List.length (Weak_set.members s));
  check "the right one" true (Word.equal (List.hd (Weak_set.members s)) (Handle.get b))

let test_weak_set_drops_dead () =
  let h = heap () in
  let s = Weak_set.create h in
  let keep = Handle.create h (Obj.cons h (fx 0) Word.nil) in
  Weak_set.add s (Handle.get keep);
  for i = 1 to 9 do
    Weak_set.add s (Obj.cons h (fx i) Word.nil)
  done;
  full_collect h;
  check_int "dropped discovered" 9 (Weak_set.scan_for_dropped s);
  check_int "survivor" 1 (Weak_set.count s)

let test_weak_set_scan_cost_is_linear () =
  (* The inefficiency guardians fix: discovering 1 death costs a scan of
     all N members. *)
  let h = heap () in
  let s = Weak_set.create h in
  let keep = Handle.create h Word.nil in
  for i = 0 to 99 do
    let x = Obj.cons h (fx i) Word.nil in
    if i > 0 then Handle.set keep (Obj.cons h x (Handle.get keep));
    Weak_set.add s x
  done;
  full_collect h;
  let before = Weak_set.scan_steps s in
  check_int "one death" 1 (Weak_set.scan_for_dropped s);
  check "paid ~N to find it" true (Weak_set.scan_steps s - before >= 100)

(* --- weak hashing -------------------------------------------------- *)

let test_hash_unique_and_stable () =
  let h = heap () in
  let wh = Weak_hashing.create h in
  let a = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  let b = Handle.create h (Obj.cons h (fx 2) Word.nil) in
  let ia = Weak_hashing.hash wh (Handle.get a) in
  let ib = Weak_hashing.hash wh (Handle.get b) in
  check "distinct ids" true (ia <> ib);
  check_int "same id for same object" ia (Weak_hashing.hash wh (Handle.get a));
  full_collect h;
  (* Identity survives moves. *)
  check_int "stable across gc" ia (Weak_hashing.hash wh (Handle.get a));
  check "unhash live" true
    (Word.equal (Option.get (Weak_hashing.unhash wh ia)) (Handle.get a))

let test_unhash_dead_is_false () =
  let h = heap () in
  let wh = Weak_hashing.create h in
  let id = Weak_hashing.hash wh (Obj.cons h (fx 1) Word.nil) in
  full_collect h;
  check "reclaimed" true (Weak_hashing.unhash wh id = None);
  check_int "live count" 0 (Weak_hashing.live_count wh)

let test_hash_does_not_retain () =
  let h = heap () in
  let wh = Weak_hashing.create h in
  let before = Heap.live_words h in
  ignore (Weak_hashing.hash wh (Obj.make_vector h ~len:100 ~init:Word.nil));
  full_collect h;
  check "weak" true (Heap.live_words h < before + 50)

(* --- Dickey register-for-finalization ------------------------------ *)

let test_finalize_runs_thunk () =
  let h = heap () in
  let f = Finalize.create h in
  let ran = ref false in
  Finalize.register f (Obj.cons h (fx 1) Word.nil) ~thunk:(fun () -> ran := true);
  check "not before death" false !ran;
  full_collect h;
  check "ran at collection" true !ran;
  check_int "finalized count" 1 (Finalize.finalized f)

let test_finalize_live_untouched () =
  let h = heap () in
  let f = Finalize.create h in
  let ran = ref false in
  let x = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  Finalize.register f (Handle.get x) ~thunk:(fun () -> ran := true);
  full_collect h;
  full_collect h;
  check "live object not finalized" false !ran;
  check_int "still registered" 1 (Finalize.registered_count f);
  Handle.free x;
  full_collect h;
  check "fires after drop" true !ran

let test_finalize_no_allocation_allowed () =
  (* The restriction the paper criticizes: thunks run during collection and
     must not allocate. *)
  let h = heap () in
  let f = Finalize.create h in
  let observed = ref None in
  Finalize.register f (Obj.cons h (fx 1) Word.nil) ~thunk:(fun () ->
      try ignore (Obj.cons h (fx 1) Word.nil)
      with e -> observed := Some e);
  full_collect h;
  check "allocation rejected inside thunk" true
    (!observed = Some Heap.Allocation_forbidden)

let test_finalize_errors_suppressed () =
  (* Errors must not prevent other thunks from running. *)
  let h = heap () in
  let f = Finalize.create h in
  let second_ran = ref false in
  Finalize.register f (Obj.cons h (fx 1) Word.nil) ~thunk:(fun () -> failwith "boom");
  Finalize.register f (Obj.cons h (fx 2) Word.nil) ~thunk:(fun () -> second_ran := true);
  full_collect h;
  check "second thunk still ran" true !second_ran;
  check_int "error recorded" 1 (List.length (Finalize.errors f))

let test_finalize_scan_cost () =
  (* Cost proportional to registrations at every collection — the
     generation-unfriendliness measured in E1/E8. *)
  let h = heap () in
  let f = Finalize.create h in
  let keep = Handle.create h Word.nil in
  for i = 0 to 99 do
    let x = Obj.cons h (fx i) Word.nil in
    Handle.set keep (Obj.cons h x (Handle.get keep));
    Finalize.register f x ~thunk:(fun () -> ())
  done;
  let before = Finalize.scan_steps f in
  ignore (Collector.collect h ~gen:0);
  check "scan pays O(registered) even when nothing died" true
    (Finalize.scan_steps f - before >= 100)

(* --- Atkins indirection --------------------------------------------- *)

let test_indirect_cleanup () =
  let h = heap () in
  let reg = Indirect.create h in
  let cleaned = ref [] in
  let data = Obj.cons h (fx 42) Word.nil in
  let header = Indirect.wrap reg data in
  check "access works" true (Word.equal (Indirect.access reg header) data);
  check_int "accesses counted" 1 (Indirect.accesses reg);
  (* Keep the data alive independently; drop the header. *)
  let dc = Handle.create h data in
  full_collect h;
  Indirect.scan_for_dropped reg ~cleanup:(fun d ->
      cleaned := Word.to_fixnum (Obj.car h d) :: !cleaned);
  Alcotest.(check (list int)) "cleanup got the data" [ 42 ] !cleaned;
  Handle.free dc

let test_indirect_live_header_not_cleaned () =
  let h = heap () in
  let reg = Indirect.create h in
  let cleaned = ref 0 in
  let header = Handle.create h (Indirect.wrap reg (Obj.cons h (fx 1) Word.nil)) in
  full_collect h;
  Indirect.scan_for_dropped reg ~cleanup:(fun _ -> incr cleaned);
  check_int "no cleanup while held" 0 !cleaned;
  (* The data is reachable through the header. *)
  check_int "data alive" 1
    (Word.to_fixnum (Obj.car h (Indirect.access reg (Handle.get header))));
  Handle.free header;
  full_collect h;
  Indirect.scan_for_dropped reg ~cleanup:(fun _ -> incr cleaned);
  check_int "cleanup after drop" 1 !cleaned

let test_indirect_scan_cost () =
  let h = heap () in
  let reg = Indirect.create h in
  let keep = Handle.create h Word.nil in
  for i = 0 to 49 do
    let header = Indirect.wrap reg (Obj.cons h (fx i) Word.nil) in
    Handle.set keep (Obj.cons h header (Handle.get keep))
  done;
  full_collect h;
  let before = Indirect.scan_steps reg in
  Indirect.scan_for_dropped reg ~cleanup:(fun _ -> ());
  check "O(registry) per scan" true (Indirect.scan_steps reg - before >= 50)

let () =
  Alcotest.run "baselines"
    [
      ( "weak sets (T populations)",
        [
          Alcotest.test_case "membership" `Quick test_weak_set_membership;
          Alcotest.test_case "drops dead" `Quick test_weak_set_drops_dead;
          Alcotest.test_case "linear scan cost" `Quick test_weak_set_scan_cost_is_linear;
        ] );
      ( "weak hashing (hash/unhash)",
        [
          Alcotest.test_case "unique & stable" `Quick test_hash_unique_and_stable;
          Alcotest.test_case "unhash dead" `Quick test_unhash_dead_is_false;
          Alcotest.test_case "does not retain" `Quick test_hash_does_not_retain;
        ] );
      ( "register-for-finalization (Dickey)",
        [
          Alcotest.test_case "thunk runs" `Quick test_finalize_runs_thunk;
          Alcotest.test_case "live untouched" `Quick test_finalize_live_untouched;
          Alcotest.test_case "no allocation (E8)" `Quick test_finalize_no_allocation_allowed;
          Alcotest.test_case "errors suppressed" `Quick test_finalize_errors_suppressed;
          Alcotest.test_case "scan cost" `Quick test_finalize_scan_cost;
        ] );
      ( "header indirection (Atkins)",
        [
          Alcotest.test_case "cleanup" `Quick test_indirect_cleanup;
          Alcotest.test_case "live header" `Quick test_indirect_live_header_not_cleaned;
          Alcotest.test_case "scan cost" `Quick test_indirect_scan_cost;
        ] );
    ]
