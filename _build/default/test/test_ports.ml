(* Ports and guarded ports: the paper's Section 3 example (experiment E5).
   Without guardians, dropped ports leak descriptors and lose buffered
   output; with the port guardian, both are recovered. *)

open Gbc_runtime
module Ctx = Gbc.Ctx
module Port = Gbc.Port
module Guarded_port = Gbc.Guarded_port
module Vfs = Gbc_vfs.Vfs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let ctx () = Ctx.create ~fd_limit:8 ()
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

let test_port_roundtrip () =
  let c = ctx () in
  let p = Handle.create c.Ctx.heap (Port.open_output c "f.txt") in
  Port.write_string c (Handle.get p) "hello";
  (* Small writes stay buffered. *)
  check_str "buffered, not yet visible" "" (Vfs.read_file c.Ctx.vfs "f.txt");
  Port.flush c (Handle.get p);
  check_str "flushed" "hello" (Vfs.read_file c.Ctx.vfs "f.txt");
  Port.write_string c (Handle.get p) " world";
  Port.close c (Handle.get p);
  check_str "close flushes" "hello world" (Vfs.read_file c.Ctx.vfs "f.txt");
  let q = Handle.create c.Ctx.heap (Port.open_input c "f.txt") in
  check "read h" true (Port.read_char c (Handle.get q) = Some 'h');
  Port.close c (Handle.get q)

let test_buffer_autoflush () =
  let c = ctx () in
  let p = Handle.create c.Ctx.heap (Port.open_output c "big.txt") in
  let data = String.init 200 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
  Port.write_string c (Handle.get p) data;
  (* At least the filled buffers reached the file. *)
  check "autoflush happened" true (String.length (Vfs.read_file c.Ctx.vfs "big.txt") >= 128);
  Port.close c (Handle.get p);
  check_str "all flushed" data (Vfs.read_file c.Ctx.vfs "big.txt")

let test_port_survives_gc () =
  let c = ctx () in
  let p = Handle.create c.Ctx.heap (Port.open_output c "gc.txt") in
  Port.write_string c (Handle.get p) "abc";
  full_collect c.Ctx.heap;
  Port.write_string c (Handle.get p) "def";
  Port.close c (Handle.get p);
  check_str "buffer moved with port" "abcdef" (Vfs.read_file c.Ctx.vfs "gc.txt")

let test_closed_port_errors () =
  let c = ctx () in
  let p = Port.open_output c "x" in
  Port.close c p;
  Alcotest.check_raises "write after close" Port.Closed_port (fun () ->
      Port.write_char c p 'a');
  (* Closing twice is harmless. *)
  Port.close c p

let test_unguarded_ports_leak () =
  (* The failure mode the paper motivates: drop ports without closing and
     the system runs out of descriptors. *)
  let c = ctx () in
  let h = c.Ctx.heap in
  let leaked = ref false in
  (try
     for i = 0 to 20 do
       ignore (Port.open_output c (Printf.sprintf "f%d.txt" i));
       full_collect h
     done
   with Vfs.Descriptor_exhausted -> leaked := true);
  check "descriptor exhaustion" true !leaked

let test_guarded_ports_recover () =
  (* Same workload through the guarded opens: dropped ports are closed at
     the next open, so it never exhausts. *)
  let c = ctx () in
  let gp = Guarded_port.create c in
  for i = 0 to 40 do
    let p = Guarded_port.open_output gp (Printf.sprintf "f%d.txt" i) in
    Port.write_string c p (Printf.sprintf "data%d" i);
    full_collect c.Ctx.heap
  done;
  Guarded_port.exit gp;
  check_int "no leaked descriptors" 0 (Vfs.open_count c.Ctx.vfs);
  check "guardian closed them" true (Guarded_port.closed_by_guardian gp >= 40);
  (* Buffered output of dropped ports was flushed, not lost. *)
  check_str "flushed data" "data7" (Vfs.read_file c.Ctx.vfs "f7.txt")

let test_live_port_not_closed () =
  let c = ctx () in
  let gp = Guarded_port.create c in
  let keep = Handle.create c.Ctx.heap (Guarded_port.open_output gp "keep.txt") in
  for i = 0 to 5 do
    ignore (Guarded_port.open_output gp (Printf.sprintf "drop%d.txt" i));
    full_collect c.Ctx.heap
  done;
  check "live port untouched" false (Port.is_closed c.Ctx.heap (Handle.get keep));
  Port.write_string c (Handle.get keep) "still fine";
  Port.close c (Handle.get keep)

let test_collect_handler_integration () =
  (* The paper's collect-request-handler idiom: dropped ports are closed
     after every collection, with no explicit calls. *)
  let c = Ctx.create ~config:(Config.v ~gen0_trigger_words:1024 ()) ~fd_limit:8 () in
  let gp = Guarded_port.create c in
  Guarded_port.install_collect_handler gp;
  for i = 0 to 30 do
    ignore (Guarded_port.open_output gp (Printf.sprintf "h%d.txt" i));
    (* Generate allocation pressure, then declare safepoints. *)
    for j = 0 to 2000 do
      ignore (Obj.cons c.Ctx.heap (Word.of_fixnum j) Word.nil)
    done;
    Runtime.safepoint c.Ctx.heap
  done;
  check "collections happened" true ((Heap.stats c.Ctx.heap).Stats.total.Stats.collections > 0);
  check "handler closed dropped ports" true (Guarded_port.closed_by_guardian gp > 0);
  check "descriptors stay bounded" true (Vfs.open_count c.Ctx.vfs <= 4);
  Runtime.set_collect_request_handler c.Ctx.heap None

let test_input_ports_guarded () =
  let c = ctx () in
  Vfs.write_file c.Ctx.vfs "in.txt" "zy";
  let gp = Guarded_port.create c in
  let p = Guarded_port.open_input gp "in.txt" in
  check "reads" true (Port.read_char c p = Some 'z');
  (* Drop it; next open closes it. *)
  full_collect c.Ctx.heap;
  ignore (Guarded_port.open_input gp "in.txt");
  check_int "only the fresh one open" 1 (Vfs.open_count c.Ctx.vfs)

let () =
  Alcotest.run "ports"
    [
      ( "port",
        [
          Alcotest.test_case "roundtrip" `Quick test_port_roundtrip;
          Alcotest.test_case "autoflush" `Quick test_buffer_autoflush;
          Alcotest.test_case "survives gc" `Quick test_port_survives_gc;
          Alcotest.test_case "closed errors" `Quick test_closed_port_errors;
        ] );
      ( "guarded (E5)",
        [
          Alcotest.test_case "unguarded leak" `Quick test_unguarded_ports_leak;
          Alcotest.test_case "guarded recover" `Quick test_guarded_ports_recover;
          Alcotest.test_case "live port untouched" `Quick test_live_port_not_closed;
          Alcotest.test_case "collect handler" `Quick test_collect_handler_integration;
          Alcotest.test_case "input ports" `Quick test_input_ports_guarded;
        ] );
    ]
