(* The Scheme lexer, reader and printer. *)

open Gbc_scheme

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let roundtrip src = Sexpr.to_string (Reader.read_one src)

let test_atoms () =
  check_str "int" "42" (roundtrip "42");
  check_str "negative" "-7" (roundtrip "-7");
  check_str "symbol" "foo" (roundtrip "foo");
  check_str "weird symbol" "set-car!" (roundtrip "set-car!");
  check_str "true" "#t" (roundtrip "#t");
  check_str "false" "#f" (roundtrip "#f");
  check_str "string" "\"hi\"" (roundtrip "\"hi\"");
  check_str "escape" "\"a\\nb\"" (roundtrip "\"a\\nb\"");
  check_str "char" "#\\a" (roundtrip "#\\a");
  check_str "space char" "#\\space" (roundtrip "#\\space");
  check_str "newline char" "#\\newline" (roundtrip "#\\newline");
  check_str "float" "3.14" (roundtrip "3.14")

let test_lists () =
  check_str "flat" "(1 2 3)" (roundtrip "(1 2 3)");
  check_str "nested" "(1 (2 3) 4)" (roundtrip "( 1 ( 2 3 ) 4 )");
  check_str "dotted" "(1 . 2)" (roundtrip "(1 . 2)");
  check_str "improper" "(1 2 . 3)" (roundtrip "(1 2 . 3)");
  check_str "empty" "()" (roundtrip "()");
  check_str "brackets" "(let ((x 1)) x)" (roundtrip "(let ([x 1]) x)")

let test_quote_sugar () =
  check_str "quote" "(quote x)" (roundtrip "'x");
  check_str "quoted list" "(quote (1 2))" (roundtrip "'(1 2)");
  check_str "nested quote" "(quote (quote x))" (roundtrip "''x");
  check_str "quasiquote" "(quasiquote x)" (roundtrip "`x");
  check_str "unquote" "(unquote x)" (roundtrip ",x");
  check_str "splice" "(unquote-splicing x)" (roundtrip ",@x")

let test_vectors () =
  check_str "vector" "#(1 2 3)" (roundtrip "#(1 2 3)");
  check_str "nested vector" "#(1 (2) #(3))" (roundtrip "#(1 (2) #(3))")

let test_comments_and_whitespace () =
  check_str "line comment" "(1 2)" (roundtrip "(1 ; comment\n 2)");
  check_str "leading" "x" (roundtrip "  \n\t ; hello\n x");
  Alcotest.(check int) "read_all skips comments" 2
    (List.length (Reader.read_all "; one\n1 ; two\n2 ; trailing"))

let test_errors () =
  let fails src =
    match Reader.read_all src with
    | exception Reader.Error _ -> true
    | _ -> false
  in
  check "unbalanced" true (fails "(1 2");
  check "stray paren" true (fails ")");
  check "stray dot" true (fails ".");
  check "bad dotted" true (fails "(1 . 2 3)");
  check "unterminated string" true (fails "\"abc");
  check "bad char" true (fails "#\\notachar")

let test_read_all () =
  let forms = Reader.read_all "(define x 1) (define y 2) (+ x y)" in
  Alcotest.(check int) "three forms" 3 (List.length forms)

(* Printer on heap values (shared structure handled). *)
let test_heap_printer () =
  let open Gbc_runtime in
  let h = Heap.create () in
  let p = Obj.cons h (Word.of_fixnum 1) (Obj.cons h (Word.of_fixnum 2) Word.nil) in
  check_str "list" "(1 2)" (Printer.to_string h p);
  let shared = Obj.cons h (Word.of_fixnum 9) Word.nil in
  let two = Obj.cons h shared (Obj.cons h shared Word.nil) in
  check_str "shared labels" "(#0=(9) #0#)" (Printer.to_string h two);
  let s = Obj.string_of_ocaml h "hi" in
  check_str "write string" "\"hi\"" (Printer.to_string h s);
  check_str "display string" "hi" (Printer.to_string ~display:true h s);
  check_str "char write" "#\\a" (Printer.to_string h (Word.of_char 'a'));
  check_str "char display" "a" (Printer.to_string ~display:true h (Word.of_char 'a'));
  let wp = Obj.weak_cons h (Word.of_fixnum 1) Word.nil in
  check_str "weak pair" "#<weak (1)>" (Printer.to_string h wp);
  let v = Obj.vector_of_list h [ Word.of_fixnum 1; Word.true_ ] in
  check_str "vector" "#(1 #t)" (Printer.to_string h v)

(* Property: reader/printer round-trip on generated data. *)
let sexpr_gen =
  let open QCheck.Gen in
  sized
    (fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun i -> Sexpr.Int i) small_signed_int;
               map (fun b -> Sexpr.Bool b) bool;
               return Sexpr.Null;
               map
                 (fun s -> Sexpr.Sym ("s" ^ string_of_int (abs s)))
                 small_signed_int;
             ]
         else
           frequency
             [
               (2, map2 (fun a b -> Sexpr.Pair (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map (fun l -> Sexpr.Vector (Array.of_list l)) (list_size (int_bound 4) (self (n / 3))));
               (1, map (fun i -> Sexpr.Int i) small_signed_int);
             ]))

let prop_print_read_roundtrip =
  QCheck.Test.make ~name:"print/read roundtrip" ~count:200 (QCheck.make sexpr_gen)
    (fun d ->
      let s = Sexpr.to_string d in
      Sexpr.to_string (Reader.read_one s) = s)

let () =
  Alcotest.run "scheme_reader"
    [
      ( "reader",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "lists" `Quick test_lists;
          Alcotest.test_case "quote sugar" `Quick test_quote_sugar;
          Alcotest.test_case "vectors" `Quick test_vectors;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "read_all" `Quick test_read_all;
        ] );
      ("printer", [ Alcotest.test_case "heap values" `Quick test_heap_printer ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_print_read_roundtrip ]);
    ]
