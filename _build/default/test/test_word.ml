(* Tagging invariants of Word: every class of word is correctly classified
   and round-trips. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let classify w =
  [
    Word.is_fixnum w;
    Word.is_pair_ptr w;
    Word.is_typed_ptr w;
    Word.is_imm w;
  ]

let exactly_one w =
  List.length (List.filter Fun.id (classify w)) = 1

let test_fixnum_roundtrip () =
  List.iter
    (fun n ->
      let w = Word.of_fixnum n in
      check "fixnum class" true (Word.is_fixnum w);
      check_int "roundtrip" n (Word.to_fixnum w))
    [ 0; 1; -1; 42; -42; Word.fixnum_max; Word.fixnum_min ]

let test_char_roundtrip () =
  for c = 0 to 255 do
    let ch = Char.chr c in
    let w = Word.of_char ch in
    check "char class" true (Word.is_char w);
    check "imm class" true (Word.is_imm w);
    Alcotest.(check char) "roundtrip" ch (Word.to_char w)
  done

let test_immediates_distinct () =
  let imms = [ Word.nil; Word.false_; Word.true_; Word.eof; Word.void; Word.unbound; Word.forward_marker ] in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.iter (fun (a, b) -> check "distinct" false (Word.equal a b)) (pairs imms);
  List.iter (fun w -> check "exactly one class" true (exactly_one w)) imms

let test_pointer_tags () =
  List.iter
    (fun addr ->
      let p = Word.pair_ptr addr in
      check "pair class" true (Word.is_pair_ptr p);
      check "pointer" true (Word.is_pointer p);
      check_int "addr" addr (Word.addr p);
      let t = Word.typed_ptr addr in
      check "typed class" true (Word.is_typed_ptr t);
      check_int "addr" addr (Word.addr t);
      check "classes disjoint" false (Word.equal p t);
      check "one class p" true (exactly_one p);
      check "one class t" true (exactly_one t))
    [ 0; 1; 512; 1 lsl 20; (37 lsl 20) lor 123 ]

let test_with_addr_preserves_tag () =
  let p = Word.pair_ptr 100 in
  let p' = Word.with_addr p 200 in
  check "still pair" true (Word.is_pair_ptr p');
  check_int "new addr" 200 (Word.addr p');
  let t = Word.typed_ptr 100 in
  let t' = Word.with_addr t 300 in
  check "still typed" true (Word.is_typed_ptr t');
  check_int "new addr" 300 (Word.addr t')

let test_truthiness () =
  check "false is falsy" false (Word.truthy Word.false_);
  check "nil is truthy" true (Word.truthy Word.nil);
  check "0 is truthy" true (Word.truthy (Word.of_fixnum 0));
  check "true is truthy" true (Word.truthy Word.true_)

let test_immediates_not_pointers () =
  List.iter
    (fun w -> check "not pointer" false (Word.is_pointer w))
    [ Word.nil; Word.false_; Word.true_; Word.eof; Word.void; Word.of_char 'x'; Word.of_fixnum 7 ]

(* Property: classification is total and exclusive for generated words. *)
let prop_fixnum_class =
  QCheck.Test.make ~name:"fixnum words classify uniquely" ~count:1000
    QCheck.(int_range Word.fixnum_min Word.fixnum_max)
    (fun n -> exactly_one (Word.of_fixnum n))

let prop_pair_class =
  QCheck.Test.make ~name:"pair pointers classify uniquely" ~count:1000
    QCheck.(int_bound ((1 lsl 40) - 1))
    (fun addr ->
      let w = Word.pair_ptr addr in
      exactly_one w && Word.addr w = addr)

let prop_char_payload =
  QCheck.Test.make ~name:"char payload isolated" ~count:256 QCheck.(int_bound 255)
    (fun c ->
      let w = Word.of_char (Char.chr c) in
      Word.imm_code w = Word.code_char && Char.code (Word.to_char w) = c)

let () =
  Alcotest.run "word"
    [
      ( "tagging",
        [
          Alcotest.test_case "fixnum roundtrip" `Quick test_fixnum_roundtrip;
          Alcotest.test_case "char roundtrip" `Quick test_char_roundtrip;
          Alcotest.test_case "immediates distinct" `Quick test_immediates_distinct;
          Alcotest.test_case "pointer tags" `Quick test_pointer_tags;
          Alcotest.test_case "with_addr" `Quick test_with_addr_preserves_tag;
          Alcotest.test_case "truthiness" `Quick test_truthiness;
          Alcotest.test_case "immediates not pointers" `Quick test_immediates_not_pointers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fixnum_class; prop_pair_class; prop_char_payload ] );
    ]
