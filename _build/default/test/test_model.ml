(* Differential model checking of the collector + guardian + weak-pair
   semantics.

   A random sequence of mutator operations (allocate pairs and weak pairs,
   mutate fields, drop/alias roots, register objects with guardians,
   retrieve, collect) runs simultaneously against the simulated heap and a
   pure OCaml shadow model implementing the paper's semantics directly
   (strong reachability, the resurrection fixpoint, weak-car breaking).
   After every full collection the two are compared exhaustively:

   - liveness of every node ever allocated,
   - structure reachable from every root,
   - broken/mended state of every weak car,
   - each guardian's pending multiset.

   Node identity is tracked through collections with a weak scanner, which
   itself exercises that hook. *)

open Gbc_runtime

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Shadow model                                                        *)

type mvalue = Imm of int | False | Ref of int  (* node id *)

type kind = Strong | Weak | Eph

type mnode = {
  id : int;
  kind : kind;
  mutable mcar : mvalue;
  mutable mcdr : mvalue;
  mutable car_broken : bool;
  mutable gen : int;  (* model's view of the node's generation *)
  (* heap-side tracking *)
  mutable word : Word.t;
  mutable alive : bool;
}

type mguardian = {
  g_handle : Handle.t;
  mutable registered : (int * int) list;
      (* (node id, entry generation), oldest first; entries climb the
         protected lists along with their objects *)
  mutable pending : int list;  (* multiset of node ids *)
}

type model = {
  heap : Heap.t;
  nodes : (int, mnode) Hashtbl.t;
  mutable next_id : int;
  mutable roots : (Handle.t * int) list;  (* rooted node ids *)
  mutable guardians : mguardian array;
  scanner : int;
}

let create_model () =
  let heap = Heap.create ~config:(Config.v ~segment_words:64 ~max_generation:2 ()) () in
  let nodes = Hashtbl.create 64 in
  let scanner =
    Heap.add_weak_scanner heap (fun lookup ->
        Hashtbl.iter
          (fun _ n ->
            if n.alive then
              match lookup n.word with
              | Some w -> n.word <- w
              | None -> n.alive <- false)
          nodes)
  in
  let m = { heap; nodes; next_id = 0; roots = []; guardians = [||]; scanner } in
  m.guardians <-
    Array.init 3 (fun _ ->
        { g_handle = Handle.create heap (Guardian.make heap); registered = []; pending = [] });
  m

let dispose_model m =
  Heap.remove_weak_scanner m.heap m.scanner;
  List.iter (fun (h, _) -> Handle.free h) m.roots;
  Array.iter (fun g -> Handle.free g.g_handle) m.guardians

let value_word m = function
  | Imm k -> Word.of_fixnum k
  | False -> Word.false_
  | Ref id -> (Hashtbl.find m.nodes id).word

(* Pick an existing live node id, if any, from an int seed. *)
let pick_live m seed =
  let live = Hashtbl.fold (fun id n acc -> if n.alive then id :: acc else acc) m.nodes [] in
  match live with
  | [] -> None
  | _ ->
      let live = List.sort compare live in
      Some (List.nth live (abs seed mod List.length live))

let pick_value m seed =
  if seed mod 3 = 0 then Imm (seed mod 100)
  else match pick_live m seed with Some id -> Ref id | None -> Imm (seed mod 100)

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

type op =
  | Alloc of kind * int * int  (* cell kind, car seed, cdr seed *)
  | SetCar of int * int  (* node seed, value seed *)
  | SetCdr of int * int
  | DropRoot of int
  | AddRoot of int  (* alias an existing node *)
  | Register of int * int  (* guardian index seed, node seed *)
  | Retrieve of int
  | Collect of int  (* oldest generation collected *)

let apply_op m op =
  match op with
  | Alloc (kind, s1, s2) ->
      let vcar = pick_value m s1 and vcdr = pick_value m s2 in
      let id = m.next_id in
      m.next_id <- id + 1;
      let wcar = value_word m vcar and wcdr = value_word m vcdr in
      let word =
        match kind with
        | Strong -> Obj.cons m.heap wcar wcdr
        | Weak -> Obj.weak_cons m.heap wcar wcdr
        | Eph -> Obj.ephemeron_cons m.heap wcar wcdr
      in
      let node =
        { id; kind; mcar = vcar; mcdr = vcdr; car_broken = false; gen = 0; word;
          alive = true }
      in
      Hashtbl.add m.nodes id node;
      m.roots <- (Handle.create m.heap word, id) :: m.roots
  | SetCar (s1, s2) -> (
      match pick_live m s1 with
      | None -> ()
      | Some id ->
          let n = Hashtbl.find m.nodes id in
          let v = pick_value m s2 in
          n.mcar <- v;
          n.car_broken <- false;
          Obj.set_car m.heap n.word (value_word m v))
  | SetCdr (s1, s2) -> (
      match pick_live m s1 with
      | None -> ()
      | Some id ->
          let n = Hashtbl.find m.nodes id in
          let v = pick_value m s2 in
          n.mcdr <- v;
          Obj.set_cdr m.heap n.word (value_word m v))
  | DropRoot s -> (
      match m.roots with
      | [] -> ()
      | roots ->
          let i = abs s mod List.length roots in
          let h, _ = List.nth roots i in
          Handle.free h;
          m.roots <- List.filteri (fun j _ -> j <> i) roots)
  | AddRoot s -> (
      match pick_live m s with
      | None -> ()
      | Some id ->
          let n = Hashtbl.find m.nodes id in
          m.roots <- (Handle.create m.heap n.word, id) :: m.roots)
  | Register (s1, s2) -> (
      match pick_live m s2 with
      | None -> ()
      | Some id ->
          let g = m.guardians.(abs s1 mod Array.length m.guardians) in
          let n = Hashtbl.find m.nodes id in
          Guardian.register m.heap (Handle.get g.g_handle) n.word;
          g.registered <- g.registered @ [ (id, 0) ])
  | Retrieve s -> (
      let g = m.guardians.(abs s mod Array.length m.guardians) in
      match Guardian.retrieve m.heap (Handle.get g.g_handle) with
      | None ->
          if g.pending <> [] then
            Alcotest.failf "guardian empty but model has %d pending"
              (List.length g.pending)
      | Some w -> (
          (* Identify which model node this is. *)
          let found =
            List.find_opt (fun id -> Word.equal (Hashtbl.find m.nodes id).word w) g.pending
          in
          match found with
          | None -> Alcotest.fail "guardian returned an object not pending in the model"
          | Some id ->
              (* Remove one occurrence; the retrieved object stays alive only
                 if otherwise referenced — root it like a program would. *)
              let rec remove_one = function
                | [] -> []
                | x :: rest -> if x = id then rest else x :: remove_one rest
              in
              g.pending <- remove_one g.pending;
              m.roots <- (Handle.create m.heap w, id) :: m.roots))
  | Collect g ->
      (* Model: the paper's semantics for a collection of generations
         [0..g], target = min (g+1) max. *)
      let maxgen = Heap.max_generation m.heap in
      let g = min g maxgen in
      let target = min (g + 1) maxgen in
      let condemned id = (Hashtbl.find m.nodes id).gen <= g in
      (* 1. Liveness: everything in older generations survives by fiat;
         reachability flows from roots, pending queues, and the strong
         fields of old nodes (the remembered set), transitively. *)
      let live = Hashtbl.create 16 in
      let rec reach v =
        match v with
        | Imm _ | False -> ()
        | Ref id ->
            if not (Hashtbl.mem live id) then begin
              let n = Hashtbl.find m.nodes id in
              if n.alive then begin
                Hashtbl.add live id ();
                match n.kind with
                | Strong ->
                    reach n.mcar;
                    reach n.mcdr
                | Weak ->
                    (* weak car is not traced *)
                    reach n.mcdr
                | Eph ->
                    (* neither field is traced eagerly; the ephemeron
                       fixpoint below traces values of live keys *)
                    ()
              end
            end
      in
      (* Ephemeron rule: the value of a live ephemeron whose key is live
         becomes reachable; iterate to a fixpoint. *)
      let ephemeron_fixpoint () =
        let progress = ref true in
        while !progress do
          progress := false;
          Hashtbl.iter
            (fun id n ->
              if n.alive && n.kind = Eph && Hashtbl.mem live id then
                let key_live =
                  match n.mcar with
                  | Imm _ | False -> true
                  | Ref k -> Hashtbl.mem live k
                in
                if key_live then begin
                  (match n.mcar with
                  | Ref k when not (Hashtbl.mem live k) -> ()
                  | _ -> ());
                  let before = Hashtbl.length live in
                  reach n.mcar;
                  reach n.mcdr;
                  if Hashtbl.length live <> before then progress := true
                end)
            m.nodes
        done
      in
      Hashtbl.iter
        (fun id n -> if n.alive && n.gen > g then reach (Ref id))
        m.nodes;
      List.iter (fun (_, id) -> reach (Ref id)) m.roots;
      Array.iter (fun gu -> List.iter (fun id -> reach (Ref id)) gu.pending) m.guardians;
      ephemeron_fixpoint ();
      (* 2. Resurrection.  Entries of protected lists of generations <= g
         are examined; accessibility is decided once, before any
         resurrection (pend-hold/pend-final), so an object inaccessible
         except through the guardian mechanism is queued by EVERY such
         registration.  Surviving entries climb to the target generation.
         Entries in older protected lists are untouched. *)
      let accessible0 = Hashtbl.copy live in
      let fired = ref [] in
      Array.iter
        (fun gu ->
          let still = ref [] in
          List.iter
            (fun (id, egen) ->
              let n = Hashtbl.find m.nodes id in
              if egen > g then still := (id, egen) :: !still
              else if (not n.alive) || Hashtbl.mem accessible0 id then
                still := (id, target) :: !still
              else begin
                gu.pending <- gu.pending @ [ id ];
                fired := id :: !fired
              end)
            gu.registered;
          gu.registered <- List.rev !still)
        m.guardians;
      (* Saved objects (and everything they reference) survive; their
         reachability can resolve further ephemerons. *)
      List.iter (fun id -> reach (Ref id)) !fired;
      ephemeron_fixpoint ();
      (* 3. Weak/ephemeron passes: break live weak cars whose target was
         condemned and died; break both fields of live ephemerons whose key
         was condemned and died. *)
      Hashtbl.iter
        (fun _ n ->
          if n.alive && Hashtbl.mem live n.id then
            match n.kind with
            | Weak -> (
                match n.mcar with
                | Ref t when condemned t && not (Hashtbl.mem live t) ->
                    n.car_broken <- true;
                    n.mcar <- False
                | _ -> ())
            | Eph -> (
                match n.mcar with
                | Ref t when condemned t && not (Hashtbl.mem live t) ->
                    n.car_broken <- true;
                    n.mcar <- False;
                    n.mcdr <- False
                | _ -> ())
            | Strong -> ())
        m.nodes;
      (* 4. Death and promotion. *)
      Hashtbl.iter
        (fun id n ->
          if n.alive && n.gen <= g then
            if Hashtbl.mem live id then n.gen <- target else n.alive <- false)
        m.nodes;
      let predicted = Hashtbl.fold (fun id n acc -> (id, n.alive) :: acc) m.nodes [] in
      ignore (Collector.collect m.heap ~gen:g);
      (* Full structural invariant check after every collection. *)
      (match Verify.verify m.heap with
      | [] -> ()
      | e :: _ -> Alcotest.failf "heap verification: %s (%s)" e.Verify.what e.Verify.where);
      (* After a full collection, everything live must be reachable: the
         census (an independent mark-style traversal) must account for
         every allocated word. *)
      if g = maxgen then begin
        let census = Census.run m.heap in
        if Census.slack census <> 0 then
          Alcotest.failf "census: %d unreachable words survived a full collection"
            (Census.slack census)
      end;
      (* 5. Compare liveness. *)
      List.iter
        (fun (id, model_alive) ->
          let n = Hashtbl.find m.nodes id in
          if n.alive <> model_alive then
            Alcotest.failf "node %d: heap alive=%b, model alive=%b" id n.alive model_alive)
        predicted;
      (* 6. Compare structure, weakness and generation of every live node. *)
      let compare_node id =
        let n = Hashtbl.find m.nodes id in
        if n.alive then begin
          let expect_car = value_word m n.mcar in
          let expect_cdr = value_word m n.mcdr in
          let got_car = Obj.car m.heap n.word in
          if not (Word.equal got_car expect_car) then
            Alcotest.failf "node %d car mismatch" id;
          let got_cdr = Obj.cdr m.heap n.word in
          if not (Word.equal got_cdr expect_cdr) then
            Alcotest.failf "node %d cdr mismatch" id;
          if Obj.is_weak_pair m.heap n.word <> (n.kind = Weak) then
            Alcotest.failf "node %d weakness mismatch" id;
          if Obj.is_ephemeron m.heap n.word <> (n.kind = Eph) then
            Alcotest.failf "node %d ephemeron-ness mismatch" id;
          let hgen = Heap.generation_of_word m.heap n.word in
          if hgen <> n.gen then
            Alcotest.failf "node %d generation: heap %d, model %d" id hgen n.gen
        end
      in
      Hashtbl.iter (fun id n -> if n.alive then compare_node id) m.nodes;
      (* 7. Compare pending queues (as multisets of words). *)
      Array.iteri
        (fun gi gu ->
          let heap_pending =
            Guardian.pending_list m.heap (Handle.get gu.g_handle)
            |> List.map (fun w -> w land max_int)
            |> List.sort compare
          in
          let model_pending =
            List.map (fun id -> (Hashtbl.find m.nodes id).word land max_int) gu.pending
            |> List.sort compare
          in
          if heap_pending <> model_pending then
            Alcotest.failf "guardian %d pending mismatch: heap %d vs model %d" gi
              (List.length heap_pending) (List.length model_pending))
        m.guardians

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      ( 4,
        map3
          (fun k a b ->
            Alloc ((match k mod 3 with 0 -> Strong | 1 -> Weak | _ -> Eph), a, b))
          small_nat small_signed_int small_signed_int );
      (2, map2 (fun a b -> SetCar (a, b)) small_signed_int small_signed_int);
      (2, map2 (fun a b -> SetCdr (a, b)) small_signed_int small_signed_int);
      (3, map (fun a -> DropRoot a) small_signed_int);
      (1, map (fun a -> AddRoot a) small_signed_int);
      (3, map2 (fun a b -> Register (a, b)) small_signed_int small_signed_int);
      (2, map (fun a -> Retrieve a) small_signed_int);
      (2, map (fun g -> Collect (abs g mod 3)) small_signed_int);
    ]

let pp_op = function
  | Alloc (k, a, b) ->
      Printf.sprintf "Alloc(%s,%d,%d)"
        (match k with Strong -> "strong" | Weak -> "weak" | Eph -> "eph")
        a b
  | SetCar (a, b) -> Printf.sprintf "SetCar(%d,%d)" a b
  | SetCdr (a, b) -> Printf.sprintf "SetCdr(%d,%d)" a b
  | DropRoot a -> Printf.sprintf "DropRoot(%d)" a
  | AddRoot a -> Printf.sprintf "AddRoot(%d)" a
  | Register (a, b) -> Printf.sprintf "Register(%d,%d)" a b
  | Retrieve a -> Printf.sprintf "Retrieve(%d)" a
  | Collect g -> Printf.sprintf "Collect(%d)" g

let prop_model =
  QCheck.Test.make ~name:"heap agrees with the shadow model" ~count:200
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
       QCheck.Gen.(list_size (int_range 5 120) op_gen))
    (fun ops ->
      let m = create_model () in
      Fun.protect
        ~finally:(fun () -> dispose_model m)
        (fun () ->
          List.iter (apply_op m) ops;
          (* Always finish with verified full collections. *)
          apply_op m (Collect 2);
          apply_op m (Collect 2);
          true))

let test_long_run () =
  (* One long deterministic pseudo-random run for good measure. *)
  let st = Random.State.make [| 0xBEEF |] in
  let m = create_model () in
  Fun.protect
    ~finally:(fun () -> dispose_model m)
    (fun () ->
      for _ = 1 to 3000 do
        let s () = Random.State.int st 1000 - 500 in
        let op =
          match Random.State.int st 19 with
          | 0 | 1 | 2 | 3 ->
              Alloc
                ( (match Random.State.int st 3 with 0 -> Strong | 1 -> Weak | _ -> Eph),
                  s (),
                  s () )
          | 4 | 5 -> SetCar (s (), s ())
          | 6 | 7 -> SetCdr (s (), s ())
          | 8 | 9 | 10 -> DropRoot (s ())
          | 11 -> AddRoot (s ())
          | 12 | 13 | 14 -> Register (s (), s ())
          | 15 | 16 -> Retrieve (s ())
          | n -> Collect (n mod 3)
        in
        apply_op m op
      done;
      apply_op m (Collect 2));
  check "long run completed" true true

let () =
  Alcotest.run "model"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_model;
          Alcotest.test_case "long deterministic run" `Slow test_long_run;
        ] );
    ]
