(* Free-list recycling via guardians (paper Section 1, experiment E6). *)

open Gbc_runtime
module Free_pool = Gbc.Free_pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:2 ()
let heap () = Heap.create ~config:cfg ()
let fx = Word.of_fixnum
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

let build h = Obj.make_vector h ~len:32 ~init:(fx 7)

let test_builds_when_empty () =
  let h = heap () in
  let pool = Free_pool.create h ~build in
  let a = Free_pool.acquire pool in
  check "a vector" true (Obj.is_vector h a);
  check_int "built one" 1 (Free_pool.built pool);
  check_int "recycled none" 0 (Free_pool.recycled pool)

let test_recycles_dropped () =
  let h = heap () in
  let pool = Free_pool.create h ~build in
  ignore (Free_pool.acquire pool);
  (* Dropped; prove it dead. *)
  full_collect h;
  let b = Free_pool.acquire pool in
  check "got one back" true (Obj.is_vector h b);
  check_int "still built once" 1 (Free_pool.built pool);
  check_int "recycled once" 1 (Free_pool.recycled pool)

let test_live_objects_not_recycled () =
  let h = heap () in
  let pool = Free_pool.create h ~build in
  let a = Handle.create h (Free_pool.acquire pool) in
  full_collect h;
  let b = Free_pool.acquire pool in
  check "distinct objects" false (Word.equal (Handle.get a) b);
  check_int "built twice" 2 (Free_pool.built pool);
  Handle.free a

let test_capacity_discards () =
  let h = heap () in
  let pool = Free_pool.create ~capacity:2 h ~build in
  for _ = 1 to 5 do
    ignore (Free_pool.acquire pool)
  done;
  full_collect h;
  Free_pool.drain pool;
  check_int "kept to capacity" 2 (Free_pool.free_length pool);
  check_int "discarded rest" 3 (Free_pool.discarded pool)

let test_reinit_called () =
  let h = heap () in
  let reinits = ref 0 in
  let pool =
    Free_pool.create h ~build ~reinit:(fun h w ->
        incr reinits;
        Obj.vector_set h w 0 (fx 0))
  in
  let a = Free_pool.acquire pool in
  Obj.vector_set h a 0 (fx 999);
  full_collect h;
  let b = Free_pool.acquire pool in
  check_int "reinit ran" 1 !reinits;
  check_int "scrubbed" 0 (Word.to_fixnum (Obj.vector_ref h b 0))

let test_churn_savings () =
  (* The E6 scenario: heavy churn of expensive objects with at most [k]
     live at a time builds only ~k objects. *)
  let h = heap () in
  let pool = Free_pool.create h ~build in
  for _round = 0 to 49 do
    ignore (Free_pool.acquire pool);
    full_collect h
  done;
  check "few builds" true (Free_pool.built pool <= 3);
  check "mostly recycled" true (Free_pool.recycled pool >= 47)

let () =
  Alcotest.run "free_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "builds" `Quick test_builds_when_empty;
          Alcotest.test_case "recycles" `Quick test_recycles_dropped;
          Alcotest.test_case "live not recycled" `Quick test_live_objects_not_recycled;
          Alcotest.test_case "capacity" `Quick test_capacity_discards;
          Alcotest.test_case "reinit" `Quick test_reinit_called;
          Alcotest.test_case "churn savings (E6)" `Quick test_churn_savings;
        ] );
    ]
