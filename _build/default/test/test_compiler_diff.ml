(* Differential testing of the Scheme compiler + VM against a tiny
   reference interpreter.

   A type-directed generator produces random, closed, terminating programs
   (integers, booleans, strings, integer lists; let/set!/if/begin/lambda
   application/arithmetic/comparisons/list and string operations).  Each
   program is evaluated both by the bytecode VM on the simulated heap and
   by a direct OCaml interpreter over pure values; the printed results must
   agree. *)

module S = Gbc_scheme.Sexpr
module Scheme = Gbc_scheme.Scheme
module Machine = Gbc_scheme.Machine

(* ------------------------------------------------------------------ *)
(* Reference interpreter                                               *)

type rv =
  | RInt of int
  | RBool of bool
  | RStr of string
  | RList of rv list
  | RClos of string * S.t * env

and env = (string * rv ref) list

exception Ref_error of string

let rec rv_print = function
  | RInt n -> string_of_int n
  | RBool true -> "#t"
  | RBool false -> "#f"
  | RStr s -> Printf.sprintf "%S" s
  | RList l -> "(" ^ String.concat " " (List.map rv_print l) ^ ")"
  | RClos _ -> "#<procedure>"

let as_int = function RInt n -> n | _ -> raise (Ref_error "int expected")
let as_list = function RList l -> l | _ -> raise (Ref_error "list expected")
let as_str = function RStr s -> s | _ -> raise (Ref_error "string expected")
let truthy = function RBool false -> false | _ -> true

let rec reval (env : env) (e : S.t) : rv =
  match e with
  | S.Int n -> RInt n
  | S.Bool b -> RBool b
  | S.Str s -> RStr s
  | S.Sym x -> (
      match List.assoc_opt x env with
      | Some r -> !r
      | None -> raise (Ref_error ("unbound " ^ x)))
  | S.Pair (S.Sym "quote", S.Pair (d, S.Null)) -> quote d
  | S.Pair (S.Sym "if", S.Pair (c, S.Pair (t, rest))) -> (
      if truthy (reval env c) then reval env t
      else match rest with S.Pair (f, S.Null) -> reval env f | _ -> RBool false)
  | S.Pair (S.Sym "let", S.Pair (bindings, body)) ->
      let binds =
        List.map
          (fun b ->
            match S.to_list b with
            | Some [ S.Sym x; init ] -> (x, ref (reval env init))
            | _ -> raise (Ref_error "bad let"))
          (Option.get (S.to_list bindings))
      in
      reval_body (binds @ env) body
  | S.Pair (S.Sym "begin", body) -> reval_body env body
  | S.Pair (S.Sym "set!", S.Pair (S.Sym x, S.Pair (e, S.Null))) ->
      (match List.assoc_opt x env with
      | Some r -> r := reval env e
      | None -> raise (Ref_error "set! unbound"));
      RBool false (* void prints nowhere; callers discard *)
  | S.Pair (S.Sym "lambda", S.Pair (S.Pair (S.Sym x, S.Null), S.Pair (body, S.Null))) ->
      RClos (x, body, env)
  | S.Pair (S.Sym "and", args) ->
      let rec loop = function
        | S.Null -> RBool true
        | S.Pair (e, S.Null) -> reval env e
        | S.Pair (e, rest) -> if truthy (reval env e) then loop rest else RBool false
        | _ -> raise (Ref_error "bad and")
      in
      loop args
  | S.Pair (S.Sym "or", args) ->
      let rec loop = function
        | S.Null -> RBool false
        | S.Pair (e, S.Null) -> reval env e
        | S.Pair (e, rest) ->
            let v = reval env e in
            if truthy v then v else loop rest
        | _ -> raise (Ref_error "bad or")
      in
      loop args
  | S.Pair (f, args) ->
      let argv = List.map (reval env) (Option.get (S.to_list args)) in
      apply env f argv
  | _ -> raise (Ref_error ("cannot eval " ^ S.to_string e))

and reval_body env = function
  | S.Pair (e, S.Null) -> reval env e
  | S.Pair (e, rest) ->
      ignore (reval env e);
      reval_body env rest
  | _ -> raise (Ref_error "bad body")

and quote = function
  | S.Int n -> RInt n
  | S.Bool b -> RBool b
  | S.Str s -> RStr s
  | S.Null -> RList []
  | S.Pair (a, d) -> (
      match quote d with
      | RList l -> RList (quote a :: l)
      | _ -> raise (Ref_error "improper quote"))
  | d -> raise (Ref_error ("cannot quote " ^ S.to_string d))

and apply env f argv =
  match f with
  | S.Sym name -> (
      match (name, argv) with
      | "+", l -> RInt (List.fold_left (fun a v -> a + as_int v) 0 l)
      | "-", [ a; b ] -> RInt (as_int a - as_int b)
      | "*", [ a; b ] -> RInt (as_int a * as_int b)
      | "<", [ a; b ] -> RBool (as_int a < as_int b)
      | ">", [ a; b ] -> RBool (as_int a > as_int b)
      | "=", [ a; b ] -> RBool (as_int a = as_int b)
      | "<=", [ a; b ] -> RBool (as_int a <= as_int b)
      | "min", [ a; b ] -> RInt (min (as_int a) (as_int b))
      | "max", [ a; b ] -> RInt (max (as_int a) (as_int b))
      | "abs", [ a ] -> RInt (abs (as_int a))
      | "not", [ a ] -> RBool (not (truthy a))
      | "zero?", [ a ] -> RBool (as_int a = 0)
      | "list", l -> RList l
      | "length", [ l ] -> RInt (List.length (as_list l))
      | "reverse", [ l ] -> RList (List.rev (as_list l))
      | "append", [ a; b ] -> RList (as_list a @ as_list b)
      | "car", [ l ] -> (
          match as_list l with x :: _ -> x | [] -> raise (Ref_error "car of empty"))
      | "cdr", [ l ] -> (
          match as_list l with _ :: r -> RList r | [] -> raise (Ref_error "cdr of empty"))
      | "cons", [ a; d ] -> RList (a :: as_list d)
      | "null?", [ l ] -> RBool (as_list l = [])
      | "memv", [ x; l ] ->
          let rec loop = function
            | [] -> RBool false
            | y :: rest -> if x = y then RList (y :: rest) else loop rest
          in
          loop (as_list l)
      | "string-length", [ s ] -> RInt (String.length (as_str s))
      | "string-append", l -> RStr (String.concat "" (List.map as_str l))
      | "number->string", [ n ] -> RStr (string_of_int (as_int n))
      | "string=?", [ a; b ] -> RBool (String.equal (as_str a) (as_str b))
      | _, _ -> (
          (* not a primitive: a variable holding a closure *)
          match List.assoc_opt name env with
          | Some r -> apply_value !r argv
          | None -> raise (Ref_error ("unknown op " ^ name))))
  | _ -> apply_value (reval env f) argv

and apply_value f argv =
  match (f, argv) with
  | RClos (x, body, cenv), [ v ] -> reval ((x, ref v) :: cenv) body
  | _ -> raise (Ref_error "bad application")

(* ------------------------------------------------------------------ *)
(* Type-directed program generation                                    *)

type ty = TInt | TBool | TStr | TIntList

let sym s = S.Sym s
let app f args = S.Pair (sym f, S.list_of args)

let gen_program =
  let open QCheck.Gen in
  (* Gen.t is a function from Random.State.t; [delay] postpones building a
     branch's sub-generators until the branch is actually selected —
     building them eagerly in every [frequency] list at every level would
     cost time exponential in the size budget. *)
  let delay (f : unit -> 'a QCheck.Gen.t) : 'a QCheck.Gen.t = fun st -> f () st in
  (* Variables in scope, by type. *)
  let rec gen ty env n =
    if n <= 0 then base ty env
    else
      let compound =
        match ty with
        | TInt ->
            [
              (3, delay (fun () -> map2 (fun a b -> app "+" [ a; b ]) (gen TInt env ((n - 1) / 2)) (gen TInt env ((n - 1) / 2))));
              (2, delay (fun () -> map2 (fun a b -> app "-" [ a; b ]) (gen TInt env ((n - 1) / 2)) (gen TInt env ((n - 1) / 2))));
              (1, delay (fun () -> map2 (fun a b -> app "*" [ a; b ]) (gen TInt env (n - 1)) (int_range (-5) 5 >|= fun k -> S.Int k)));
              (1, delay (fun () -> gen TIntList env (n - 1) >|= fun l -> app "length" [ l ]));
              (1, delay (fun () -> gen TStr env (n - 1) >|= fun s -> app "string-length" [ s ]));
              (2, delay (fun () -> map2 (fun a b -> app "min" [ a; b ]) (gen TInt env ((n - 1) / 2)) (gen TInt env ((n - 1) / 2))));
              (1, delay (fun () -> gen TInt env (n - 1) >|= fun a -> app "abs" [ a ]));
            ]
        | TBool ->
            [
              (3, delay (fun () -> map2 (fun a b -> app "<" [ a; b ]) (gen TInt env ((n - 1) / 2)) (gen TInt env ((n - 1) / 2))));
              (2, delay (fun () -> map2 (fun a b -> app "=" [ a; b ]) (gen TInt env ((n - 1) / 2)) (gen TInt env ((n - 1) / 2))));
              (1, delay (fun () -> gen TBool env (n - 1) >|= fun a -> app "not" [ a ]));
              (1, delay (fun () -> gen TIntList env (n - 1) >|= fun l -> app "null?" [ l ]));
              ( 1,
                delay (fun () ->
                    map2 (fun a b -> app "string=?" [ a; b ]) (gen TStr env ((n - 1) / 2))
                      (gen TStr env ((n - 1) / 2))) );
              ( 1,
                delay (fun () ->
                    map2
                      (fun a b -> S.Pair (sym "and", S.list_of [ a; b ]))
                      (gen TBool env ((n - 1) / 2)) (gen TBool env ((n - 1) / 2))) );
              ( 1,
                delay (fun () ->
                    map2
                      (fun a b -> S.Pair (sym "or", S.list_of [ a; b ]))
                      (gen TBool env ((n - 1) / 2)) (gen TBool env ((n - 1) / 2))) );
            ]
        | TStr ->
            [
              ( 2,
                delay (fun () ->
                    map2 (fun a b -> app "string-append" [ a; b ]) (gen TStr env ((n - 1) / 2))
                      (gen TStr env ((n - 1) / 2))) );
              (1, delay (fun () -> gen TInt env (n - 1) >|= fun a -> app "number->string" [ a ]));
            ]
        | TIntList ->
            [
              ( 3,
                delay (fun () ->
                    list_size (int_bound 4) (gen TInt env ((n - 1) / 4)) >|= fun els ->
                    app "list" els) );
              (2, delay (fun () -> map2 (fun a l -> app "cons" [ a; l ]) (gen TInt env ((n - 1) / 2)) (gen TIntList env ((n - 1) / 2))));
              (1, delay (fun () -> gen TIntList env (n - 1) >|= fun l -> app "reverse" [ l ]));
              ( 1,
                delay (fun () ->
                    map2 (fun a b -> app "append" [ a; b ]) (gen TIntList env ((n - 1) / 2))
                      (gen TIntList env ((n - 1) / 2))) );
              (1, delay (fun () -> gen TIntList env (n - 2) >|= fun l -> app "cdr" [ app "cons" [ S.Int 0; l ] ]));
            ]
      in
      let generic =
        [
          (* (if bool t f) *)
          ( 2,
            delay (fun () ->
                map3
                  (fun c t f -> app "if" [ c; t; f ])
                  (gen TBool env ((n - 1) / 3)) (gen ty env ((n - 1) / 3)) (gen ty env ((n - 1) / 3))) );
          (* (let ([x int]) body) *)
          ( 2,
            delay (fun () ->
                let var = "v" ^ string_of_int (List.length env) in
                map2
                  (fun init body ->
                    S.Pair
                      (sym "let", S.Pair (S.list_of [ S.list_of [ sym var; init ] ], S.Pair (body, S.Null))))
                  (gen TInt env ((n - 1) / 2))
                  (gen ty ((var, TInt) :: env) ((n - 1) / 2))) );
          (* (begin (set! x int) body) with x an int var in scope *)
          ( (if List.exists (fun (_, t) -> t = TInt) env then 2 else 0),
            delay (fun () ->
                let int_vars = List.filter (fun (_, t) -> t = TInt) env in
                int_vars |> List.map fst |> oneofl >>= fun x ->
                map2
                  (fun v body -> app "begin" [ app "set!" [ sym x; v ]; body ])
                  (gen TInt env ((n - 1) / 2))
                  (gen ty env ((n - 1) / 2))) );
          (* ((lambda (x) body) int) *)
          ( 1,
            delay (fun () ->
                let var = "f" ^ string_of_int (List.length env) in
                map2
                  (fun arg body ->
                    S.Pair
                      ( S.Pair
                          (sym "lambda", S.Pair (S.list_of [ sym var ], S.Pair (body, S.Null))),
                        S.list_of [ arg ] ))
                  (gen TInt env ((n - 1) / 2))
                  (gen ty ((var, TInt) :: env) ((n - 1) / 2))) );
        ]
      in
      frequency (List.filter (fun (w, _) -> w > 0) (compound @ generic))
  and base ty env =
    let vars = List.filter (fun (_, t) -> t = ty) env in
    let var_gens = List.map (fun (x, _) -> (2, return (sym x))) vars in
    let lit =
      match ty with
      | TInt -> [ (2, map (fun n -> S.Int n) (int_range (-100) 100)) ]
      | TBool -> [ (2, map (fun b -> S.Bool b) bool) ]
      | TStr ->
          [
            ( 2,
              map (fun n -> S.Str (String.init (n mod 5) (fun i -> Char.chr (97 + ((n + i) mod 26)))))
                (int_bound 30) );
          ]
      | TIntList ->
          [
            ( 2,
              map
                (fun els -> S.Pair (sym "quote", S.Pair (S.list_of (List.map (fun n -> S.Int n) els), S.Null)))
                (list_size (int_bound 3) (int_range (-9) 9)) );
          ]
    in
    frequency (var_gens @ lit)
  in
  let open QCheck.Gen in
  oneofl [ TInt; TBool; TStr; TIntList ] >>= fun ty ->
  sized_size (int_range 1 40) (fun n -> gen ty [] n)

(* ------------------------------------------------------------------ *)

let machine = lazy (Scheme.create ())

let prop_vm_matches_reference =
  QCheck.Test.make ~name:"VM agrees with the reference interpreter" ~count:500
    (QCheck.make ~print:S.to_string gen_program)
    (fun prog ->
      let reference =
        match reval [] prog with
        | v -> rv_print v
        | exception Ref_error msg -> "reference-error: " ^ msg
      in
      let m = Lazy.force machine in
      let vm =
        match Machine.eval_datum m prog with
        | w -> Gbc_scheme.Printer.to_string (Machine.heap m) w
        | exception Machine.Error msg -> "vm-error: " ^ msg
      in
      if String.length reference >= 15 && String.sub reference 0 15 = "reference-error" then
        QCheck.assume_fail () (* generator should not produce errors; skip *)
      else if String.equal reference vm then true
      else
        QCheck.Test.fail_reportf "program: %s@.reference: %s@.vm: %s" (S.to_string prog)
          reference vm)

(* The same differential check under constant collection pressure. *)
let prop_vm_matches_reference_with_gc =
  QCheck.Test.make ~name:"VM agrees under collection pressure" ~count:200
    (QCheck.make ~print:S.to_string gen_program)
    (fun prog ->
      let reference =
        match reval [] prog with
        | v -> rv_print v
        | exception Ref_error _ -> ""
      in
      QCheck.assume (reference <> "");
      let config = Gbc_runtime.Config.v ~gen0_trigger_words:256 () in
      let m = Gbc_scheme.Scheme.create ~config () in
      let vm =
        match Machine.eval_datum m prog with
        | w -> Gbc_scheme.Printer.to_string (Machine.heap m) w
        | exception Machine.Error msg -> "vm-error: " ^ msg
      in
      Machine.dispose m;
      String.equal reference vm)

let () =
  Alcotest.run "compiler_diff"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_vm_matches_reference; prop_vm_matches_reference_with_gc ] );
    ]
