(* Experiment E10: the paper's Section 3 REPL transcripts and Scheme-level
   guardian examples, run through the VM and compared against the printed
   results in the paper. *)

open Gbc_scheme

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Each test gets a fresh machine: the transcripts rely on global state. *)
let fresh () = Scheme.create ()

let ev m src = Scheme.eval m src

(* The transcripts say "at some point after this binding is nullified";
   a full collection is that point in our deterministic setting. *)
let gc = "(collect 4)"

let transcript_basic () =
  let m = fresh () in
  ignore (ev m "(define G (make-guardian))");
  ignore (ev m "(define x (cons 'a 'b))");
  ignore (ev m "(G x)");
  check_str "(G) before drop" "#f" (ev m "(G)");
  ignore (ev m "(set! x #f)");
  ignore (ev m gc);
  check_str "(G) after drop" "(a . b)" (ev m "(G)");
  check_str "(G) exhausted" "#f" (ev m "(G)")

let transcript_double_registration () =
  let m = fresh () in
  ignore (ev m "(define G (make-guardian)) (define x (cons 'a 'b)) (G x) (G x) (set! x #f)");
  ignore (ev m gc);
  check_str "first" "(a . b)" (ev m "(G)");
  check_str "second" "(a . b)" (ev m "(G)");
  check_str "third" "#f" (ev m "(G)")

let transcript_two_guardians () =
  let m = fresh () in
  ignore
    (ev m
       "(define G (make-guardian)) (define H (make-guardian))\n        (define x (cons 'a 'b)) (G x) (H x) (set! x #f)");
  ignore (ev m gc);
  check_str "(G)" "(a . b)" (ev m "(G)");
  check_str "(H)" "(a . b)" (ev m "(H)")

let transcript_guardian_in_guardian () =
  let m = fresh () in
  ignore
    (ev m
       "(define G (make-guardian)) (define H (make-guardian))\n        (define x (cons 'a 'b)) (G H) (H x) (set! x #f) (set! H #f)");
  ignore (ev m gc);
  check_str "((G))" "(a . b)" (ev m "((G))")

let transcript_rep_interface () =
  (* Section 5: (g obj rep) returns rep instead of obj. *)
  let m = fresh () in
  ignore
    (ev m
       "(define G (make-guardian)) (define x (cons 'big 'object))\n        (G x 'small-agent) (set! x #f)");
  ignore (ev m gc);
  check_str "agent returned" "small-agent" (ev m "(G)")

let accessible_never_returned () =
  let m = fresh () in
  ignore (ev m "(define G (make-guardian)) (define x (cons 1 2)) (G x)");
  ignore (ev m gc);
  ignore (ev m gc);
  check_str "still #f" "#f" (ev m "(G)");
  check_str "x intact" "(1 . 2)" (ev m "x")

let saved_object_usable () =
  (* "objects that have been retrieved from a guardian have no special
     status": mutate it, re-register it, retrieve it again. *)
  let m = fresh () in
  ignore (ev m "(define G (make-guardian)) (G (cons 1 2))");
  ignore (ev m gc);
  ignore (ev m "(define y (G))");
  check_str "mutable" "(99 . 2)" (ev m "(set-car! y 99) y");
  ignore (ev m "(G y) (set! y #f)");
  ignore (ev m gc);
  check_str "again" "(99 . 2)" (ev m "(G)")

let weak_pairs_interop () =
  let m = fresh () in
  ignore (ev m "(define G (make-guardian)) (define x (cons 'a 'b))");
  ignore (ev m "(define wp (weak-cons x 'payload)) (G x) (set! x #f)");
  ignore (ev m gc);
  (* Guardian saved x, so the weak car is intact and eq to the saved one. *)
  check_str "weak car intact" "#t" (ev m "(define saved (G)) (eq? (car wp) saved)");
  ignore (ev m "(set! saved #f)");
  ignore (ev m gc);
  check_str "now broken" "#f" (ev m "(car wp)")

let transport_guardian_paper_code () =
  let m = fresh () in
  ignore (ev m "(define tg (make-transport-guardian)) (define x (cons 1 2)) (tg x)");
  check_str "nothing before gc" "#f" (ev m "(tg)");
  ignore (ev m "(collect 0)");
  check_str "transported" "#t" (ev m "(eq? (tg) x)");
  check_str "once per collection" "#f" (ev m "(tg)");
  ignore (ev m "(collect 0)");
  (* x was promoted to generation 1 by the first collection; the re-registered
     marker was promoted along with it, so a second gen-0 collection that
     does not move x reports nothing... *)
  ignore (ev m "(collect 0)");
  check_str "old object quiet under minor gc" "#f" (ev m "(tg)");
  (* ...but a collection of its generation reports it again. *)
  ignore (ev m "(collect 4)");
  check_str "reported on full gc" "#t" (ev m "(eq? (tg) x)");
  (* Dead objects are dropped silently. *)
  ignore (ev m "(set! x #f)");
  ignore (ev m "(collect 4)");
  check_str "dead dropped" "#f" (ev m "(tg)")

let guarded_hash_table_figure_1 () =
  let m = fresh () in
  ignore
    (ev m
       {|
(define make-guarded-hash-table
  (lambda (hash size)
    (let ([g (make-guardian)]
          [v (make-vector size '())])
      (lambda (key value)
        (let loop ([z (g)])
          (if z
              (let ([h (hash z size)])
                (let ([bucket (vector-ref v h)])
                  (vector-set! v h (remq (assq z bucket) bucket))
                  (loop (g))))
              (void)))
        (let ([h (hash key size)])
          (let ([bucket (vector-ref v h)])
            (let ([a (assq key bucket)])
              (if a
                  (cdr a)
                  (let ([a (weak-cons key value)])
                    (vector-set! v h (cons a bucket))
                    (g key)
                    (cdr a))))))))))
(define tbl (make-guarded-hash-table (lambda (k size) (modulo (car k) size)) 16))
(define k1 (cons 1 'one))
(define k2 (cons 2 'two))
|});
  check_str "insert k1" "v1" (ev m "(tbl k1 'v1)");
  check_str "insert k2" "v2" (ev m "(tbl k2 'v2)");
  check_str "k1 present" "v1" (ev m "(tbl k1 'other)");
  ignore (ev m "(set! k1 #f)");
  ignore (ev m gc);
  (* Access expunges k1's association; k2 is still there. *)
  check_str "k2 survives expunge" "v2" (ev m "(tbl k2 'x)");
  (* A fresh key with k1's old hash gets a fresh entry. *)
  check_str "k1 slot reusable" "v1b" (ev m "(define k1b (cons 1 'one)) (tbl k1b 'v1b)")

let guarded_ports_paper_code () =
  let m = fresh () in
  ignore
    (ev m
       {|
(define port-guardian (make-guardian))
(define close-dropped-ports
  (lambda ()
    (let ([p (port-guardian)])
      (if p
          (begin
            (if (output-port? p)
                (begin
                  (flush-output-port p)
                  (close-output-port p))
                (close-input-port p))
            (close-dropped-ports))
          (void)))))
(define guarded-open-input-file
  (lambda (pathname)
    (close-dropped-ports)
    (let ([p (open-input-file pathname)])
      (port-guardian p)
      p)))
(define guarded-open-output-file
  (lambda (pathname)
    (close-dropped-ports)
    (let ([p (open-output-file pathname)])
      (port-guardian p)
      p)))
(define guarded-exit
  (lambda ()
    (close-dropped-ports)))
|});
  ignore (ev m "(define p (guarded-open-output-file \"paper.txt\")) (display \"unflushed\" p)");
  ignore (ev m "(set! p #f)");
  ignore (ev m gc);
  ignore (ev m "(define q (guarded-open-output-file \"other.txt\"))");
  let vfs = Gbc.Ctx.vfs (Machine.ctx m) in
  check_str "dropped port flushed" "unflushed" (Gbc.Vfs.read_file vfs "paper.txt");
  Alcotest.(check int) "only q open" 1 (Gbc.Vfs.open_count vfs);
  ignore (ev m "(set! q #f)");
  ignore (ev m gc);
  ignore (ev m "(guarded-exit)");
  Alcotest.(check int) "exit closes the rest" 0 (Gbc.Vfs.open_count vfs)

let collect_request_handler_idiom () =
  (* The paper's idiom: install a handler that collects and then runs
     close-dropped-ports — from Scheme. *)
  let m = fresh () in
  ignore
    (ev m
       {|
(define port-guardian (make-guardian))
(define closed-count 0)
(define close-dropped-ports
  (lambda ()
    (let ([p (port-guardian)])
      (if p
          (begin
            (set! closed-count (+ closed-count 1))
            (if (output-port? p)
                (begin (flush-output-port p) (close-output-port p))
                (close-input-port p))
            (close-dropped-ports))
          (void)))))
(collect-request-handler
  (lambda ()
    (collect)
    (close-dropped-ports)))
|});
  (* Open and drop ports, generating enough garbage to trigger collect
     requests at safepoints. *)
  ignore
    (ev m
       {|
(let loop ([i 0])
  (unless (= i 20)
    (let ([p (open-output-file (string-append "f" (number->string i)))])
      (port-guardian p)
      (display "data" p))
    (let churn ([j 0])
      (unless (= j 3000) (cons j j) (churn (+ j 1))))
    (loop (+ i 1))))
|});
  check "handler closed dropped ports" true (int_of_string (ev m "closed-count") > 0);
  let vfs = Gbc.Ctx.vfs (Machine.ctx m) in
  check "descriptors bounded" true (Gbc.Vfs.open_count vfs < 20)

let prelude_guarded_hash_table () =
  (* Figure 1 is also a prelude library function. *)
  let m = fresh () in
  ignore
    (ev m
       "(define tbl (make-guarded-hash-table (lambda (k size) (modulo (car k) size)) 8))\n\
        (define k1 (cons 1 'a)) (define k2 (cons 2 'b))");
  check_str "insert" "one" (ev m "(tbl k1 'one)");
  check_str "existing" "one" (ev m "(tbl k1 'other)");
  check_str "insert 2" "two" (ev m "(tbl k2 'two)");
  ignore (ev m "(set! k1 #f)");
  ignore (ev m gc);
  check_str "k2 survives" "two" (ev m "(tbl k2 'x)")

let ephemeron_prims () =
  let m = fresh () in
  ignore (ev m "(define k (cons 1 2)) (define e (ephemeron-cons k (cons k 'payload)))");
  check_str "ephemeron?" "#t" (ev m "(ephemeron-pair? e)");
  check_str "pair? is true" "#t" (ev m "(pair? e)");
  check_str "not weak-pair?" "#f" (ev m "(weak-pair? e)");
  ignore (ev m gc);
  check_str "key intact while live" "#t" (ev m "(eq? (car e) k)");
  check_str "value intact" "payload" (ev m "(cdr (cdr e))");
  (* Drop the key: despite the value referencing it, both break. *)
  ignore (ev m "(set! k #f)");
  ignore (ev m gc);
  check_str "key broken" "#f" (ev m "(car e)");
  check_str "value broken" "#f" (ev m "(cdr e)")

let scheme_will_executors () =
  let m = fresh () in
  ignore
    (ev m
       "(define we (make-will-executor))\n\
        (define log '())\n\
        (define x (cons 'precious 'resource))\n\
        (will-register we x (lambda (obj) (set! log (cons (car obj) log)) 'ran))");
  check_str "not ready while alive" "#f" (ev m "(will-execute we)");
  ignore (ev m "(set! x #f)");
  ignore (ev m gc);
  check_str "runs with the saved object" "ran" (ev m "(will-execute we)");
  check_str "will saw contents" "(precious)" (ev m "log");
  check_str "only once" "#f" (ev m "(will-execute we)")

let scheme_will_multiple () =
  let m = fresh () in
  ignore
    (ev m
       "(define we (make-will-executor))\n\
        (define order '())\n\
        (define x (cons 1 2))\n\
        (will-register we x (lambda (obj) (set! order (cons 'first order))))\n\
        (will-register we x (lambda (obj) (set! order (cons 'second order))))\n\
        (set! x #f)");
  ignore (ev m gc);
  ignore (ev m "(will-execute we)");
  ignore (ev m "(will-execute we)");
  (* newest first, like Racket *)
  check_str "order" "(first second)" (ev m "order")

let cancel_by_dropping_guardian () =
  let m = fresh () in
  ignore (ev m "(define G (make-guardian)) (G (cons 1 2)) (G (cons 3 4)) (set! G #f)");
  ignore (ev m gc);
  (* Nothing observable: just ensure the system survives and the objects
     were reclaimed (no resurrections recorded). *)
  let stats = Gbc_runtime.Heap.stats (Machine.heap m) in
  Alcotest.(check int) "no resurrections" 0
    stats.Gbc_runtime.Stats.last.Gbc_runtime.Stats.guardian_resurrections

let () =
  Alcotest.run "scheme_guardians"
    [
      ( "paper transcripts (E10)",
        [
          Alcotest.test_case "basic" `Quick transcript_basic;
          Alcotest.test_case "double registration" `Quick transcript_double_registration;
          Alcotest.test_case "two guardians" `Quick transcript_two_guardians;
          Alcotest.test_case "guardian in guardian" `Quick transcript_guardian_in_guardian;
          Alcotest.test_case "rep interface (§5)" `Quick transcript_rep_interface;
          Alcotest.test_case "accessible never returned" `Quick accessible_never_returned;
          Alcotest.test_case "no special status" `Quick saved_object_usable;
          Alcotest.test_case "cancel by dropping" `Quick cancel_by_dropping_guardian;
        ] );
      ( "weak interop",
        [ Alcotest.test_case "weak pairs + guardians" `Quick weak_pairs_interop ] );
      ( "paper code",
        [
          Alcotest.test_case "transport guardian" `Quick transport_guardian_paper_code;
          Alcotest.test_case "Figure 1 hash table" `Quick guarded_hash_table_figure_1;
          Alcotest.test_case "guarded ports" `Quick guarded_ports_paper_code;
          Alcotest.test_case "collect-request-handler" `Quick collect_request_handler_idiom;
        ] );
      ( "extensions in scheme",
        [
          Alcotest.test_case "prelude guarded table" `Quick prelude_guarded_hash_table;
          Alcotest.test_case "ephemeron prims" `Quick ephemeron_prims;
          Alcotest.test_case "will executors" `Quick scheme_will_executors;
          Alcotest.test_case "multiple wills" `Quick scheme_will_multiple;
        ] );
    ]
