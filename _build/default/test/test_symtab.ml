(* Symbol interning and the Friedman-Wise oblist-entry elimination. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let heap () = Heap.create ()

let test_interning () =
  let h = heap () in
  let st = Symtab.create h in
  let a = Symtab.intern st "foo" in
  let b = Symtab.intern st "foo" in
  let c = Symtab.intern st "bar" in
  check "same symbol" true (Word.equal a b);
  check "different symbol" false (Word.equal a c);
  Alcotest.(check string) "name" "foo" (Obj.symbol_name_string h a);
  check_int "two entries" 2 (Symtab.count st)

let test_interning_survives_gc () =
  let h = heap () in
  let st = Symtab.create h in
  let a = Handle.create h (Symtab.intern st "keep") in
  ignore (Collector.collect h ~gen:0);
  let b = Symtab.intern st "keep" in
  check "same identity after gc" true (Word.equal (Handle.get a) b);
  Handle.free a

let test_dead_symbols_pruned () =
  (* The Friedman-Wise behaviour: symbols referenced from nowhere are
     reclaimed and their oblist entries removed. *)
  let h = heap () in
  let st = Symtab.create h in
  let keep = Handle.create h (Symtab.intern st "live") in
  for i = 0 to 9 do
    ignore (Symtab.intern st (Printf.sprintf "dead%d" i))
  done;
  check_int "all present" 11 (Symtab.count st);
  ignore (Collector.collect h ~gen:(Heap.max_generation h));
  check_int "dead pruned" 1 (Symtab.count st);
  check "live kept" true (Symtab.mem st "live");
  check "dead gone" false (Symtab.mem st "dead3");
  (* Re-interning after pruning yields a fresh, working symbol. *)
  let d = Symtab.intern st "dead3" in
  Alcotest.(check string) "reborn" "dead3" (Obj.symbol_name_string h d);
  Handle.free keep

let test_symbol_global_slot () =
  let h = heap () in
  let st = Symtab.create h in
  let s = Symtab.intern st "var" in
  check_int "initially unset" (-1) (Obj.symbol_global h s);
  Obj.symbol_set_global h s 42;
  check_int "set" 42 (Obj.symbol_global h s)

let prop_intern_identity =
  QCheck.Test.make ~name:"intern is idempotent per name" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) (string_gen_of_size (QCheck.Gen.int_range 1 8) QCheck.Gen.printable))
    (fun names ->
      let h = heap () in
      let st = Symtab.create h in
      List.for_all
        (fun n -> Word.equal (Symtab.intern st n) (Symtab.intern st n))
        names)

let () =
  Alcotest.run "symtab"
    [
      ( "interning",
        [
          Alcotest.test_case "basic" `Quick test_interning;
          Alcotest.test_case "survives gc" `Quick test_interning_survives_gc;
          Alcotest.test_case "Friedman-Wise pruning" `Quick test_dead_symbols_pruned;
          Alcotest.test_case "global slot" `Quick test_symbol_global_slot;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_intern_identity ]);
    ]
