(* Will executors and weak eq tables (extensions over guardians). *)

open Gbc_runtime
module Will_executor = Gbc.Will_executor
module Weak_eq_table = Gbc.Weak_eq_table

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:2 ()
let heap () = Heap.create ~config:cfg ()
let fx = Word.of_fixnum
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

(* --- weak eq table -------------------------------------------------- *)

let test_weak_eq_basic () =
  let h = heap () in
  let t = Weak_eq_table.create h ~size:16 in
  let k = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  Weak_eq_table.set t (Handle.get k) (fx 10);
  check_int "lookup" 10 (Word.to_fixnum (Option.get (Weak_eq_table.lookup t (Handle.get k))));
  Weak_eq_table.set t (Handle.get k) (fx 20);
  check_int "update" 20 (Word.to_fixnum (Option.get (Weak_eq_table.lookup t (Handle.get k))));
  (* Survives collections (rehash on epoch change). *)
  full_collect h;
  check_int "after gc" 20 (Word.to_fixnum (Option.get (Weak_eq_table.lookup t (Handle.get k))));
  Weak_eq_table.remove t (Handle.get k);
  check "removed" true (Weak_eq_table.lookup t (Handle.get k) = None);
  Handle.free k

let test_weak_eq_does_not_retain_keys () =
  let h = heap () in
  let t = Weak_eq_table.create h ~size:16 in
  let baseline = Heap.live_words h in
  for i = 0 to 9 do
    Weak_eq_table.set t (Obj.cons h (fx i) Word.nil) (Obj.make_vector h ~len:50 ~init:Word.nil)
  done;
  full_collect h;
  full_collect h;
  (* Keys and values gone; only buckets remain. *)
  check "reclaimed" true (Heap.live_words h < baseline + 100);
  ignore (Weak_eq_table.lookup t (Obj.cons h (fx 0) Word.nil));
  check "count pruned toward zero" true (Weak_eq_table.count t <= 10)

let test_weak_eq_no_key_in_value_leak () =
  (* The reason entries are ephemerons. *)
  let h = heap () in
  let t = Weak_eq_table.create h ~size:16 in
  let key = Obj.cons h (fx 7) Word.nil in
  (* value references the key *)
  Weak_eq_table.set t key (Obj.cons h key Word.nil);
  full_collect h;
  full_collect h;
  ignore (Weak_eq_table.lookup t (Obj.cons h (fx 0) Word.nil));
  (* Both key and value died despite the self-reference. *)
  check "collapsed" true (Weak_eq_table.count t <= 0)

(* --- will executor -------------------------------------------------- *)

let test_will_runs_on_death () =
  let h = heap () in
  let we = Will_executor.create h in
  let ran = ref [] in
  Will_executor.register we (Obj.cons h (fx 1) (fx 2)) ~will:(fun h obj ->
      ran := Word.to_fixnum (Obj.car h obj) :: !ran);
  check "not ready before gc" false (Will_executor.execute we);
  full_collect h;
  check "ready after gc" true (Will_executor.execute we);
  Alcotest.(check (list int)) "will saw the object" [ 1 ] !ran;
  check "only once" false (Will_executor.execute we);
  check_int "executed" 1 (Will_executor.executed we)

let test_will_not_run_while_alive () =
  let h = heap () in
  let we = Will_executor.create h in
  let obj = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  let ran = ref false in
  Will_executor.register we (Handle.get obj) ~will:(fun _ _ -> ran := true);
  full_collect h;
  full_collect h;
  check "nothing ready" false (Will_executor.execute we);
  check "will pending" true (Will_executor.pending_wills we = 1);
  Handle.free obj;
  full_collect h;
  check "now ready" true (Will_executor.execute we);
  check "ran" true !ran

let test_multiple_wills_newest_first () =
  let h = heap () in
  let we = Will_executor.create h in
  let order = ref [] in
  let obj = Obj.cons h (fx 9) Word.nil in
  Will_executor.register we obj ~will:(fun _ _ -> order := 1 :: !order);
  Will_executor.register we obj ~will:(fun _ _ -> order := 2 :: !order);
  Will_executor.register we obj ~will:(fun _ _ -> order := 3 :: !order);
  full_collect h;
  check_int "three ran" 3 (Will_executor.execute_all we);
  (* newest (3) first *)
  Alcotest.(check (list int)) "order" [ 3; 2; 1 ] (List.rev !order)

let test_will_can_allocate_and_resurrect () =
  (* Unlike collector-run finalizers, wills run in the mutator: they may
     allocate, collect, and even keep the object. *)
  let h = heap () in
  let we = Will_executor.create h in
  let kept = Handle.create h Word.nil in
  Will_executor.register we (Obj.cons h (fx 5) Word.nil) ~will:(fun h obj ->
      (* allocation inside the will *)
      Handle.set kept (Obj.cons h obj (Handle.get kept));
      full_collect h);
  full_collect h;
  check "ran" true (Will_executor.execute we);
  check_int "object resurrected by its will" 5
    (Word.to_fixnum (Obj.car h (Obj.car h (Handle.get kept))))

let test_many_objects () =
  let h = heap () in
  let we = Will_executor.create h in
  let count = ref 0 in
  for i = 0 to 49 do
    Will_executor.register we (Obj.cons h (fx i) Word.nil) ~will:(fun _ _ -> incr count)
  done;
  full_collect h;
  check_int "all ready" 50 (Will_executor.execute_all we);
  check_int "all ran" 50 !count;
  check_int "none left" 0 (Will_executor.pending_wills we)

let () =
  Alcotest.run "wills"
    [
      ( "weak eq table",
        [
          Alcotest.test_case "basic" `Quick test_weak_eq_basic;
          Alcotest.test_case "keys not retained" `Quick test_weak_eq_does_not_retain_keys;
          Alcotest.test_case "no key-in-value leak" `Quick test_weak_eq_no_key_in_value_leak;
        ] );
      ( "will executor",
        [
          Alcotest.test_case "runs on death" `Quick test_will_runs_on_death;
          Alcotest.test_case "not while alive" `Quick test_will_not_run_while_alive;
          Alcotest.test_case "newest first" `Quick test_multiple_wills_newest_first;
          Alcotest.test_case "allocate and resurrect" `Quick test_will_can_allocate_and_resurrect;
          Alcotest.test_case "many objects" `Quick test_many_objects;
        ] );
    ]
