test/test_scheme_reader.mli:
