test/test_scheme_guardians.mli:
