test/test_free_pool.mli:
