test/test_scheme_guardians.ml: Alcotest Gbc Gbc_runtime Gbc_scheme Machine Scheme
