test/test_table_props.mli:
