test/test_scheme_eval.ml: Alcotest Compile Config Gbc_runtime Gbc_scheme Heap Lazy List Machine Scheme Stats String
