test/test_weak.ml: Alcotest Collector Config Gbc_runtime Guardian Handle Heap List Obj Option QCheck QCheck_alcotest Stats Weak_pair Word
