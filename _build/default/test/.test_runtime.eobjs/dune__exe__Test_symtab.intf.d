test/test_symtab.mli:
