test/test_tconc.ml: Alcotest Collector Gbc_runtime Handle Heap List Obj Option Printf QCheck QCheck_alcotest Queue Tconc Word
