test/test_scheme_files.mli:
