test/test_table_props.ml: Alcotest Collector Config Gbc Gbc_runtime Handle Hashtbl Heap List Obj Printf QCheck QCheck_alcotest String Word
