test/test_wills.mli:
