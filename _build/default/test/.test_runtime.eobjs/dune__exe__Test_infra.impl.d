test/test_infra.ml: Alcotest Array Census Collector Config Ephemeron Gbc_runtime Guardian Handle Heap List Obj Stats Trace Verify Weak_pair Word
