test/test_compiler_diff.ml: Alcotest Char Gbc_runtime Gbc_scheme Lazy List Option Printf QCheck QCheck_alcotest String
