test/test_ephemeron.ml: Alcotest Collector Config Ephemeron Gbc_runtime Guardian Handle Heap List Obj Option QCheck QCheck_alcotest Stats Verify Weak_pair Word
