test/test_scheme_eval.mli:
