test/test_ephemeron.mli:
