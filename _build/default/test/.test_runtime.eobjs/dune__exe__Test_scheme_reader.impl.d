test/test_scheme_reader.ml: Alcotest Array Gbc_runtime Gbc_scheme Heap List Obj Printer QCheck QCheck_alcotest Reader Sexpr Word
