test/test_vfs.ml: Alcotest Gbc_vfs List Printf QCheck QCheck_alcotest String
