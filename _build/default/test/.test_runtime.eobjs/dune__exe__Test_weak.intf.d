test/test_weak.mli:
