test/test_collector.ml: Alcotest Collector Config Fun Gbc_runtime Heap List Obj QCheck QCheck_alcotest Runtime Stats Verify Word
