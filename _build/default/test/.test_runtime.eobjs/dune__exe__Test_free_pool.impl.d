test/test_free_pool.ml: Alcotest Collector Config Gbc Gbc_runtime Handle Heap Obj Word
