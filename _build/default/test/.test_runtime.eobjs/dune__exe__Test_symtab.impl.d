test/test_symtab.ml: Alcotest Collector Gbc_runtime Handle Heap List Obj Printf QCheck QCheck_alcotest Symtab Word
