test/test_tables.ml: Alcotest Collector Config Gbc Gbc_runtime Handle Heap List Obj Option Word
