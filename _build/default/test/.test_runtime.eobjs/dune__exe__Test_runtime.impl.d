test/test_runtime.ml: Alcotest Collector Gbc_runtime Guardian Heap List Obj Stats Weak_pair Word
