test/test_ports.mli:
