test/test_tconc.mli:
