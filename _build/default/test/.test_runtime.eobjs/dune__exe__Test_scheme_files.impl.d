test/test_scheme_files.ml: Alcotest Filename Gbc_scheme Machine Scheme Sys
