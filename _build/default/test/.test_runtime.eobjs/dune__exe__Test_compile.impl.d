test/test_compile.ml: Alcotest Array Compile Format Gbc_runtime Gbc_scheme Hashtbl Instr Lazy List Machine Reader Scheme String Word
