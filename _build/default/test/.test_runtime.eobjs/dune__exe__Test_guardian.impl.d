test/test_guardian.ml: Alcotest Collector Config Fun Gbc_runtime Guardian Handle Heap List Obj Option QCheck QCheck_alcotest Stats Word
