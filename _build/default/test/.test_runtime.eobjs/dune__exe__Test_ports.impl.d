test/test_ports.ml: Alcotest Char Collector Config Gbc Gbc_runtime Gbc_vfs Handle Heap Obj Printf Runtime Stats String Word
