test/test_collector.mli:
