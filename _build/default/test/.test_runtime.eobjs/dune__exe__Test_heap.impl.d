test/test_heap.ml: Alcotest Collector Config Gbc_runtime Handle Heap List Obj Printf QCheck QCheck_alcotest Space Word
