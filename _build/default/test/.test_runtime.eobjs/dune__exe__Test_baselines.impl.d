test/test_baselines.ml: Alcotest Collector Config Gbc_baselines Gbc_runtime Handle Heap List Obj Option Word
