test/test_compiler_diff.mli:
