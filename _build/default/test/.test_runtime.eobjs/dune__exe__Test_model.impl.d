test/test_model.ml: Alcotest Array Census Collector Config Fun Gbc_runtime Guardian Handle Hashtbl Heap List Obj Printf QCheck QCheck_alcotest Random String Verify Word
