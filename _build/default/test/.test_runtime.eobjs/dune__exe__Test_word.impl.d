test/test_word.ml: Alcotest Char Fun Gbc_runtime List QCheck QCheck_alcotest Word
