(* The compiler: structural properties of the emitted bytecode — tail
   calls, assignment conversion (boxing), closure capture, clause
   selection — plus the disassembler. *)

open Gbc_scheme

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine = lazy (Scheme.create ())

(* Compile one datum on a scratch machine and return every code block it
   produced, innermost last. *)
let compile_codes src =
  let m = Lazy.force machine in
  let before = ref 0 in
  (* count codes by compiling and diffing ids *)
  let linker = Machine.linker m in
  let d = Reader.read_one src in
  let codes = Compile.compile_toplevel linker d in
  ignore before;
  codes

(* All instructions of all clauses of all code blocks reachable from the
   top-level blocks (following Make_closure). *)
let all_instrs src =
  let m = Lazy.force machine in
  let codes = compile_codes src in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec walk (code : Instr.code) =
    List.iter
      (fun (c : Instr.clause) ->
        Array.iter
          (fun i ->
            out := i :: !out;
            match i with
            | Instr.Make_closure { code_id; _ } ->
                if not (Hashtbl.mem seen code_id) then begin
                  Hashtbl.add seen code_id ();
                  walk (Machine.code m code_id)
                end
            | _ -> ())
          c.Instr.instrs)
      code.Instr.clauses
  in
  List.iter walk codes;
  List.rev !out

let count pred l = List.length (List.filter pred l)

let is_tail_call = function Instr.Tail_call _ -> true | _ -> false
let is_call = function Instr.Call _ -> true | _ -> false
let is_box = function Instr.Box_local _ -> true | _ -> false
let is_unbox = function Instr.Unbox -> true | _ -> false
let is_set_box = function Instr.Local_set_box _ | Instr.Free_set_box _ -> true | _ -> false

let test_tail_call_in_loop () =
  let instrs = all_instrs "(define (loop n) (if (zero? n) 'done (loop (- n 1))))" in
  check "self call is a tail call" true (count is_tail_call instrs >= 1);
  (* zero? and (- n 1) are non-tail calls *)
  check "tests are non-tail" true (count is_call instrs >= 1)

let test_non_tail_recursion () =
  let instrs = all_instrs "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))" in
  (* the recursive call sits under +: it must NOT be a tail call; the
     outer (+ ...) application is the tail call *)
  check "+ application is the only tail call" true (count is_tail_call instrs = 1)

let test_boxing_only_when_assigned () =
  let boxed = all_instrs "(define (f x) (set! x 1) x)" in
  check "assigned param boxed" true (count is_box boxed = 1);
  check "set! via box" true (count is_set_box boxed = 1);
  check "read via unbox" true (count is_unbox boxed >= 1);
  let unboxed = all_instrs "(define (g x) (+ x x))" in
  check "unassigned param not boxed" true (count is_box unboxed = 0);
  check "no unbox for plain vars" true (count is_unbox unboxed = 0)

let test_capture_shares_box () =
  (* A captured assigned variable must be captured as its box: both the
     inner closure and the outer frame see updates. *)
  let instrs =
    all_instrs
      "(define (counter) (let ([n 0]) (lambda () (set! n (+ n 1)) n)))"
  in
  check "box created" true (count is_box instrs >= 1);
  check "free set through box" true
    (count (function Instr.Free_set_box _ -> true | _ -> false) instrs >= 1)

let test_case_lambda_clauses () =
  let m = Lazy.force machine in
  let codes =
    Compile.compile_toplevel (Machine.linker m)
      (Reader.read_one "(case-lambda [() 0] [(a) a] [(a . rest) rest])")
  in
  (* find the Make_closure and inspect its code *)
  let rec find_closure = function
    | [] -> None
    | (code : Instr.code) :: rest -> (
        let found =
          List.find_map
            (fun (c : Instr.clause) ->
              Array.fold_left
                (fun acc i ->
                  match (acc, i) with
                  | None, Instr.Make_closure { code_id; _ } -> Some code_id
                  | acc, _ -> acc)
                None c.Instr.instrs)
            code.Instr.clauses
        in
        match found with Some id -> Some (Machine.code m id) | None -> find_closure rest)
  in
  match find_closure codes with
  | None -> Alcotest.fail "no closure emitted"
  | Some code ->
      check_int "three clauses" 3 (List.length code.Instr.clauses);
      let arities =
        List.map (fun (c : Instr.clause) -> (c.Instr.required, c.Instr.rest)) code.Instr.clauses
      in
      Alcotest.(check (list (pair int bool)))
        "arities" [ (0, false); (1, false); (1, true) ] arities

let test_constants_vs_immediates () =
  (* Small literals inline as Imm; structured ones go to the constants
     table. *)
  let imm = all_instrs "42" in
  check "fixnum inline" true
    (List.exists (function Instr.Imm _ -> true | _ -> false) imm);
  check "no const entry" true
    (not (List.exists (function Instr.Const _ -> true | _ -> false) imm));
  let const = all_instrs "'(a b c)" in
  check "list literal via constants" true
    (List.exists (function Instr.Const _ -> true | _ -> false) const)

let test_disassembler_output () =
  let m = Lazy.force machine in
  ignore (Machine.eval_string m "(define (dtest x) (+ x 1))");
  let out = Scheme.eval_output m "(disassemble dtest)" in
  let contains needle =
    let nh = String.length out and nn = String.length needle in
    let rec loop i = i + nn <= nh && (String.sub out i nn = needle || loop (i + 1)) in
    loop 0
  in
  check "names the code" true (contains "dtest");
  check "shows arity" true (contains "1 arg");
  check "shows a tail call" true (contains "tailcall");
  check "shows locals" true (contains "local 0");
  let prim_out = Scheme.eval_output m "(disassemble car)" in
  let contains_prim =
    let nh = String.length prim_out in
    let needle = "primitive" in
    let nn = String.length needle in
    let rec loop i = i + nn <= nh && (String.sub prim_out i nn = needle || loop (i + 1)) in
    loop 0
  in
  check "primitives identified" true contains_prim

let test_branch_targets_valid () =
  (* Every jump target must be a valid instruction index; every clause ends
     in Return/Halt/Jump/Tail_call. *)
  List.iter
    (fun src ->
      let m = Lazy.force machine in
      let codes = Compile.compile_toplevel (Machine.linker m) (Reader.read_one src) in
      let rec check_code (code : Instr.code) =
        List.iter
          (fun (c : Instr.clause) ->
            let n = Array.length c.Instr.instrs in
            Array.iter
              (fun i ->
                match i with
                | Instr.Branch_false t | Instr.Jump t ->
                    check "target in range" true (t >= 0 && t <= n)
                | Instr.Make_closure { code_id; _ } ->
                    check_code (Machine.code m code_id)
                | _ -> ())
              c.Instr.instrs;
            match c.Instr.instrs.(n - 1) with
            | Instr.Return | Instr.Halt | Instr.Jump _ | Instr.Tail_call _ -> ()
            | i ->
                Alcotest.failf "clause falls off the end with %s"
                  (Format.asprintf "%a" Instr.pp_instr i))
          code.Instr.clauses
      in
      List.iter check_code codes)
    [
      "(if 1 2 3)";
      "(cond [#f 1] [2] [else 3])";
      "(define (f x) (case x [(1) 'a] [(2 3) 'b] [else 'c]))";
      "(define (g l) (let loop ([l l]) (if (null? l) '() (loop (cdr l)))))";
      "(and 1 2 (or 3 4) (when 5 6))";
    ]

(* --- optimizer -------------------------------------------------------- *)

let imm_value = function Instr.Imm w -> Some w | _ -> None

let test_constant_folding () =
  let open Gbc_runtime in
  let folded src expect =
    let instrs = all_instrs src in
    (* the whole expression must reduce to one Imm + Halt *)
    check "no calls left" true (count is_call instrs = 0 && count is_tail_call instrs = 0);
    match List.find_map imm_value instrs with
    | Some w -> check_int src expect (Word.to_fixnum w)
    | None -> Alcotest.failf "%s: no immediate emitted" src
  in
  folded "(+ 1 2 3)" 6;
  folded "(* 6 7)" 42;
  folded "(- 10 4)" 6;
  folded "(- 5)" (-5);
  folded "(min 3 9)" 3;
  folded "(abs -8)" 8;
  folded "(+ (* 2 3) (- 10 4))" 12;
  folded "(if (< 1 2) 10 20)" 10;
  folded "(if (> 1 2) 10 20)" 20;
  folded "(if (= 1 1 1) (+ 1 1) 0)" 2

let test_folding_respects_shadowing () =
  (* (let ([+ f]) (+ 1 2)) must NOT fold. *)
  let instrs = all_instrs "(define (sh f) (let ([+ f]) (+ 1 2)))" in
  check "call survives" true (count is_tail_call instrs + count is_call instrs >= 2);
  (* semantics double-check *)
  let m = Lazy.force machine in
  Alcotest.(check string) "shadowed" "shadowed"
    (Scheme.eval m "(let ([+ (lambda (a b) 'shadowed)]) (+ 1 2))")

let test_folding_preserves_errors () =
  (* division and overflow-prone operators are never folded *)
  let instrs = all_instrs "(quotient 1 0)" in
  check "quotient not folded" true (count is_call instrs + count is_tail_call instrs >= 1);
  let m = Lazy.force machine in
  (match Scheme.eval m "(quotient 1 0)" with
  | exception Machine.Error _ -> ()
  | v -> Alcotest.failf "expected error, got %s" v)

let test_dead_branch_elimination () =
  (* The untaken branch's code must not be emitted. *)
  let instrs = all_instrs "(if #t 'yes (this-is-never-compiled))" in
  check "dead global ref gone" true
    (not (List.exists (function Instr.Global_ref _ -> true | _ -> false) instrs))

let test_begin_cleanup () =
  let open Gbc_runtime in
  let instrs = all_instrs "(define (bg) (begin 1 'x (begin 2 3) 42))" in
  (* All effect-free prefix forms are dropped: the only fixnum immediate
     left is the final 42 (the define wrapper also emits a void). *)
  let fixnum_imms =
    List.filter_map imm_value instrs
    |> List.filter Word.is_fixnum |> List.map Word.to_fixnum
  in
  Alcotest.(check (list int)) "only the tail survives" [ 42 ] fixnum_imms

let () =
  Alcotest.run "compile"
    [
      ( "codegen",
        [
          Alcotest.test_case "tail call in loop" `Quick test_tail_call_in_loop;
          Alcotest.test_case "non-tail recursion" `Quick test_non_tail_recursion;
          Alcotest.test_case "boxing when assigned" `Quick test_boxing_only_when_assigned;
          Alcotest.test_case "capture shares box" `Quick test_capture_shares_box;
          Alcotest.test_case "case-lambda clauses" `Quick test_case_lambda_clauses;
          Alcotest.test_case "constants vs immediates" `Quick test_constants_vs_immediates;
          Alcotest.test_case "branch targets" `Quick test_branch_targets_valid;
        ] );
      ("disassembler", [ Alcotest.test_case "output" `Quick test_disassembler_output ]);
      ( "optimizer",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "respects shadowing" `Quick test_folding_respects_shadowing;
          Alcotest.test_case "preserves errors" `Quick test_folding_preserves_errors;
          Alcotest.test_case "dead branches" `Quick test_dead_branch_elimination;
          Alcotest.test_case "begin cleanup" `Quick test_begin_cleanup;
        ] );
    ]
