(* Guarded hash tables (Figure 1 / E2, E3), eq tables and transport
   guardians (E4). *)

open Gbc_runtime
module Guarded_table = Gbc.Guarded_table
module Eq_table = Gbc.Eq_table
module Transport_guardian = Gbc.Transport_guardian

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:3 ()
let heap () = Heap.create ~config:cfg ()
let fx = Word.of_fixnum
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

(* Keys are pairs (id . id): collectable objects with a GC-stable content
   hash. *)
let key h i = Obj.cons h (fx i) (fx i)
let stable_hash h w = if Word.is_pair_ptr w then Word.to_fixnum (Obj.car h w) else 0

let make_table ?guarded h = Guarded_table.create ?guarded h ~hash:stable_hash ~size:16

let test_basic_access () =
  let h = heap () in
  let t = make_table h in
  let k1 = Handle.create h (key h 1) in
  let k2 = Handle.create h (key h 2) in
  check_int "insert 1" 10 (Word.to_fixnum (Guarded_table.access t (Handle.get k1) (fx 10)));
  check_int "insert 2" 20 (Word.to_fixnum (Guarded_table.access t (Handle.get k2) (fx 20)));
  (* Figure 1 semantics: existing key returns the existing value. *)
  check_int "existing" 10 (Word.to_fixnum (Guarded_table.access t (Handle.get k1) (fx 99)));
  check_int "count" 2 (Guarded_table.count t);
  check "lookup" true (Guarded_table.lookup t (Handle.get k2) <> None);
  check "lookup missing" true (Guarded_table.lookup t (key h 3) = None)

let test_set_replaces () =
  let h = heap () in
  let t = make_table h in
  let k = Handle.create h (key h 1) in
  Guarded_table.set t (Handle.get k) (fx 1);
  Guarded_table.set t (Handle.get k) (fx 2);
  check_int "replaced" 2 (Word.to_fixnum (Option.get (Guarded_table.lookup t (Handle.get k))));
  check_int "count 1" 1 (Guarded_table.count t)

let test_dead_keys_removed () =
  let h = heap () in
  let t = make_table h in
  let live = Handle.create h (key h 1) in
  Guarded_table.set t (Handle.get live) (fx 100);
  for i = 2 to 20 do
    Guarded_table.set t (key h i) (fx (i * 10))
  done;
  check_int "full" 20 (Guarded_table.count t);
  full_collect h;
  (* Next access expunges the dead 19. *)
  check_int "live still there" 100
    (Word.to_fixnum (Option.get (Guarded_table.lookup t (Handle.get live))));
  check_int "only live left" 1 (Guarded_table.count t);
  check_int "expunged" 19 (Guarded_table.expunged t)

let test_unguarded_leaks () =
  (* The contrast for E3: without the shaded Figure-1 code the associations
     of dead keys stay forever. *)
  let h = heap () in
  let t = make_table ~guarded:false h in
  for i = 0 to 19 do
    Guarded_table.set t (key h i) (fx i)
  done;
  full_collect h;
  ignore (Guarded_table.lookup t (key h 100));
  check_int "nothing removed" 20 (Guarded_table.count t);
  (* The keys really are gone: their weak cars broke. *)
  check_int "stale entries" 20 (Guarded_table.stale_count t)

let test_table_does_not_retain_keys () =
  let h = heap () in
  let t = make_table h in
  let words_before = Heap.live_words h in
  for i = 0 to 9 do
    Guarded_table.set t (key h i) (Obj.make_vector h ~len:20 ~init:Word.nil)
  done;
  full_collect h;
  ignore (Guarded_table.lookup t (key h 50));
  full_collect h;
  full_collect h;
  (* Keys and their big values were reclaimed; only table spine remains. *)
  check "values reclaimed" true (Heap.live_words h < words_before + 100)

let test_reinsert_after_death () =
  let h = heap () in
  let t = make_table h in
  Guarded_table.set t (key h 7) (fx 1);
  full_collect h;
  (* Same logical key (same hash, different object). *)
  let k = Handle.create h (key h 7) in
  Guarded_table.set t (Handle.get k) (fx 2);
  check_int "fresh entry" 2 (Word.to_fixnum (Option.get (Guarded_table.lookup t (Handle.get k))));
  check_int "exactly one" 1 (Guarded_table.count t)

let test_expunge_cost_proportional_to_deaths () =
  (* E2: the cost of an access is O(dead keys since last access), not
     O(table size). *)
  let h = heap () in
  let t = make_table h in
  let keep = Handle.create h Word.nil in
  for i = 0 to 199 do
    let k = key h i in
    Handle.set keep (Obj.cons h k (Handle.get keep));
    Guarded_table.set t k (fx i)
  done;
  full_collect h;
  ignore (Guarded_table.lookup t (key h 1000));
  let steps_no_deaths = Guarded_table.expunge_steps t in
  check_int "no deaths, no expunge work" 0 steps_no_deaths;
  (* Kill 3 keys. *)
  let rec drop l n = if n = 0 then l else drop (Obj.cdr h l) (n - 1) in
  Handle.set keep (drop (Handle.get keep) 3);
  full_collect h;
  ignore (Guarded_table.lookup t (key h 1000));
  check_int "three deaths expunged" 3 (Guarded_table.expunged t);
  check "work bounded by bucket lengths, not table size" true
    (Guarded_table.expunge_steps t < 200)

(* ------------------------------------------------------------------ *)
(* Transport guardians                                                 *)

let test_transport_reports_moves () =
  let h = heap () in
  let tg = Transport_guardian.create h in
  let x = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  Transport_guardian.register tg (Handle.get x);
  check "quiet before gc" true (Transport_guardian.poll tg = None);
  ignore (Collector.collect h ~gen:0);
  (match Transport_guardian.poll tg with
  | Some (obj, _) -> check "the moved object" true (Word.equal obj (Handle.get x))
  | None -> Alcotest.fail "expected a transport report");
  check "one report per collection" true (Transport_guardian.poll tg = None)

let test_transport_ages_with_object () =
  (* Generation-friendliness: once the object is old, minor collections no
     longer report it. *)
  let h = heap () in
  let tg = Transport_guardian.create h in
  let x = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  Transport_guardian.register tg (Handle.get x);
  (* Age object and marker together: each full poll re-registers. *)
  ignore (Collector.collect h ~gen:0);
  ignore (Transport_guardian.poll tg);
  ignore (Collector.collect h ~gen:1);
  ignore (Transport_guardian.poll tg);
  ignore (Collector.collect h ~gen:2);
  while Transport_guardian.poll tg <> None do () done;
  check "object now old" true (Heap.generation_of_word h (Handle.get x) >= 2);
  (* A minor collection does not move it and must not report it. *)
  ignore (Collector.collect h ~gen:0);
  check "old object not reported by minor gc" true (Transport_guardian.poll tg = None);
  (* But a full collection does. *)
  full_collect h;
  check "full gc reports it" true (Transport_guardian.poll tg <> None)

let test_transport_drops_dead () =
  let h = heap () in
  let tg = Transport_guardian.create h in
  Transport_guardian.register tg (Obj.cons h (fx 1) Word.nil);
  full_collect h;
  check "dead object never reported" true (Transport_guardian.poll tg = None)

let test_transport_does_not_retain () =
  let h = heap () in
  let tg = Transport_guardian.create h in
  let before = Heap.live_words h in
  Transport_guardian.register tg (Obj.make_vector h ~len:100 ~init:Word.nil);
  full_collect h;
  ignore (Transport_guardian.poll tg);
  full_collect h;
  check "registered object reclaimable" true (Heap.live_words h < before + 50)

(* ------------------------------------------------------------------ *)
(* Eq tables                                                           *)

let eq_roundtrip strategy () =
  let h = heap () in
  let t = Eq_table.create h ~strategy ~size:8 in
  let keys = List.init 20 (fun i -> Handle.create h (Obj.cons h (fx i) Word.nil)) in
  List.iteri (fun i k -> Eq_table.set t (Handle.get k) (fx (i * 100))) keys;
  check_int "count" 20 (Eq_table.count t);
  (* Collections move every key; lookups must still succeed. *)
  ignore (Collector.collect h ~gen:0);
  List.iteri
    (fun i k ->
      match Eq_table.lookup t (Handle.get k) with
      | Some v -> check_int "value" (i * 100) (Word.to_fixnum v)
      | None -> Alcotest.fail "lost key after collection")
    keys;
  full_collect h;
  full_collect h;
  List.iteri
    (fun i k ->
      check_int "after full gcs" (i * 100)
        (Word.to_fixnum (Option.get (Eq_table.lookup t (Handle.get k)))))
    keys;
  (* Update and remove still work. *)
  let k0 = List.hd keys in
  Eq_table.set t (Handle.get k0) (fx 1);
  check_int "updated" 1 (Word.to_fixnum (Option.get (Eq_table.lookup t (Handle.get k0))));
  Eq_table.remove t (Handle.get k0);
  check "removed" true (Eq_table.lookup t (Handle.get k0) = None);
  check_int "count after remove" 19 (Eq_table.count t)

let test_transport_rehash_cheaper_for_old_keys () =
  (* E4: with keys promoted old, a minor collection costs the full-rehash
     table O(table) and the transport table ~0. *)
  let n = 200 in
  let run strategy =
    let h = heap () in
    let t = Eq_table.create h ~strategy ~size:64 in
    let keys = List.init n (fun i -> Handle.create h (Obj.cons h (fx i) Word.nil)) in
    List.iteri (fun i k -> Eq_table.set t (Handle.get k) (fx i)) keys;
    (* Promote keys to an old generation, resolving transports each time. *)
    ignore (Collector.collect h ~gen:0);
    ignore (Eq_table.lookup t (Handle.get (List.hd keys)));
    ignore (Collector.collect h ~gen:1);
    ignore (Eq_table.lookup t (Handle.get (List.hd keys)));
    ignore (Collector.collect h ~gen:2);
    ignore (Eq_table.lookup t (Handle.get (List.hd keys)));
    let before = Eq_table.rehash_work t in
    (* Now a minor collection that does not move the old keys. *)
    ignore (Collector.collect h ~gen:0);
    ignore (Eq_table.lookup t (Handle.get (List.hd keys)));
    Eq_table.rehash_work t - before
  in
  let full = run `Full_rehash in
  let transport = run `Transport in
  check_int "full rehash pays the whole table" 200 full;
  check_int "transport pays nothing for old keys" 0 transport

let () =
  Alcotest.run "tables"
    [
      ( "guarded table (Figure 1)",
        [
          Alcotest.test_case "access" `Quick test_basic_access;
          Alcotest.test_case "set" `Quick test_set_replaces;
          Alcotest.test_case "dead keys removed" `Quick test_dead_keys_removed;
          Alcotest.test_case "unguarded leaks" `Quick test_unguarded_leaks;
          Alcotest.test_case "does not retain keys" `Quick test_table_does_not_retain_keys;
          Alcotest.test_case "reinsert" `Quick test_reinsert_after_death;
          Alcotest.test_case "expunge cost (E2)" `Quick test_expunge_cost_proportional_to_deaths;
        ] );
      ( "transport guardian",
        [
          Alcotest.test_case "reports moves" `Quick test_transport_reports_moves;
          Alcotest.test_case "ages with object" `Quick test_transport_ages_with_object;
          Alcotest.test_case "drops dead" `Quick test_transport_drops_dead;
          Alcotest.test_case "does not retain" `Quick test_transport_does_not_retain;
        ] );
      ( "eq table",
        [
          Alcotest.test_case "roundtrip (full rehash)" `Quick (eq_roundtrip `Full_rehash);
          Alcotest.test_case "roundtrip (transport)" `Quick (eq_roundtrip `Transport);
          Alcotest.test_case "transport cheaper (E4)" `Quick
            test_transport_rehash_cheaper_for_old_keys;
        ] );
    ]
