(* Tconc queues (paper Figures 2-4) and the lock-freedom interleaving
   checker (DESIGN.md D3 / experiment E9). *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fx = Word.of_fixnum
let heap () = Heap.create ()

let to_ints h tc = List.map Word.to_fixnum (Tconc.to_list h tc)

let test_empty () =
  let h = heap () in
  let tc = Tconc.make h in
  check "fresh empty" true (Tconc.is_empty h tc);
  check_int "length 0" 0 (Tconc.length h tc);
  check "dequeue empty" true (Tconc.dequeue h tc = None)

let test_fifo () =
  let h = heap () in
  let tc = Tconc.make h in
  List.iter (fun i -> Tconc.mutator_enqueue h tc (fx i)) [ 1; 2; 3 ];
  check_int "length" 3 (Tconc.length h tc);
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] (to_ints h tc);
  check_int "deq 1" 1 (Word.to_fixnum (Option.get (Tconc.dequeue h tc)));
  check_int "deq 2" 2 (Word.to_fixnum (Option.get (Tconc.dequeue h tc)));
  Tconc.mutator_enqueue h tc (fx 4);
  check_int "deq 3" 3 (Word.to_fixnum (Option.get (Tconc.dequeue h tc)));
  check_int "deq 4" 4 (Word.to_fixnum (Option.get (Tconc.dequeue h tc)));
  check "empty again" true (Tconc.dequeue h tc = None)

let test_survives_gc () =
  let h = heap () in
  let c = Handle.create h (Tconc.make h) in
  List.iter (fun i -> Tconc.mutator_enqueue h (Handle.get c) (fx i)) [ 1; 2; 3 ];
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:1);
  Alcotest.(check (list int)) "contents survive" [ 1; 2; 3 ] (to_ints h (Handle.get c))

let test_dequeued_cell_cleared () =
  (* The abandoned front cell's fields are cleared so an old cell does not
     retain young storage (paper Section 4). *)
  let h = heap () in
  let tc = Tconc.make h in
  let front_cell = Obj.car h tc in
  Tconc.mutator_enqueue h tc (fx 1);
  ignore (Tconc.dequeue h tc);
  check "car cleared" true (Word.is_false (Obj.car h front_cell));
  check "cdr cleared" true (Word.is_false (Obj.cdr h front_cell))

(* --- interleaving: atomic collector enqueue at every point of the
       mutator's step-decomposed dequeue ------------------------------- *)

let interleave_enqueue_in_dequeue ~initial ~pause_at =
  let h = heap () in
  let tc = Tconc.make h in
  List.iter (fun i -> Tconc.mutator_enqueue h tc (fx i)) initial;
  let d = Tconc.Dequeue.start tc in
  let steps_done = ref 0 in
  let result = ref None in
  let finished = ref false in
  while not !finished do
    if !steps_done = pause_at then
      (* The collector interrupts here and appends atomically. *)
      Tconc.enqueue_with h ~alloc_pair:(fun a b -> Obj.cons h a b) tc (fx 99);
    match Tconc.Dequeue.step h d with
    | `More -> incr steps_done
    | `Done r ->
        result := r;
        finished := true
  done;
  (* If we never reached pause_at (early Done), enqueue afterwards so the
     final queue check still applies. *)
  if !steps_done < pause_at && pause_at <= Tconc.Dequeue.total_steps then
    Tconc.enqueue_with h ~alloc_pair:(fun a b -> Obj.cons h a b) tc (fx 99);
  (Option.map Word.to_fixnum !result, to_ints h tc)

let test_interleaving_nonempty () =
  (* Queue [1;2]: whatever the interruption point, dequeue yields 1 and the
     queue ends as [2;99]. *)
  for pause = 0 to Tconc.Dequeue.total_steps do
    let result, remaining = interleave_enqueue_in_dequeue ~initial:[ 1; 2 ] ~pause_at:pause in
    check_int (Printf.sprintf "pause %d: dequeued front" pause) 1 (Option.get result);
    Alcotest.(check (list int))
      (Printf.sprintf "pause %d: remaining" pause)
      [ 2; 99 ] remaining
  done

let test_interleaving_empty () =
  (* Empty queue: the element appended mid-dequeue must never be lost, and
     the dequeue result is either None (append came after the emptiness
     check) or the fresh element. *)
  for pause = 0 to Tconc.Dequeue.total_steps do
    let result, remaining = interleave_enqueue_in_dequeue ~initial:[] ~pause_at:pause in
    match result with
    | None ->
        Alcotest.(check (list int))
          (Printf.sprintf "pause %d: element kept" pause)
          [ 99 ] remaining
    | Some v ->
        check_int (Printf.sprintf "pause %d: got fresh element" pause) 99 v;
        Alcotest.(check (list int)) (Printf.sprintf "pause %d: empty" pause) [] remaining
  done

let test_interleaving_single () =
  (* Queue [1]: near-empty is the delicate case — the cell being consumed is
     also the cell the collector appends through. *)
  for pause = 0 to Tconc.Dequeue.total_steps do
    let result, remaining = interleave_enqueue_in_dequeue ~initial:[ 1 ] ~pause_at:pause in
    check_int (Printf.sprintf "pause %d: dequeued" pause) 1 (Option.get result);
    Alcotest.(check (list int)) (Printf.sprintf "pause %d: rest" pause) [ 99 ] remaining
  done

(* --- the other direction: a full dequeue interposed between the steps of
       a step-decomposed enqueue — publish-last is safe, publish-first is
       not ---------------------------------------------------------------- *)

let enqueue_with_dequeue_at ~order ~initial ~pause_at =
  let h = heap () in
  let tc = Tconc.make h in
  List.iter (fun i -> Tconc.mutator_enqueue h tc (fx i)) initial;
  let e = Tconc.Enqueue.start h ~order tc (fx 99) in
  let dequeued = ref [] in
  (* A dequeued non-fixnum is the half-installed cell's don't-care value:
     report it as the phantom -1. *)
  let observe w = if Word.is_fixnum w then Word.to_fixnum w else -1 in
  for s = 0 to Tconc.Enqueue.total_steps - 1 do
    if s = pause_at then begin
      match Tconc.dequeue h tc with
      | Some w -> dequeued := observe w :: !dequeued
      | None -> ()
    end;
    ignore (Tconc.Enqueue.step h e)
  done;
  let remaining =
    (* Robust traversal: a broken ordering can leave the queue structurally
       corrupt (header pointing at a non-pair); report -2 when that
       happens instead of crashing. *)
    let last = Obj.cdr h tc in
    let rec loop cell acc fuel =
      if fuel = 0 then List.rev (-2 :: acc)
      else if Word.equal cell last then List.rev acc
      else if not (Word.is_pair_ptr cell) then List.rev (-2 :: acc)
      else loop (Obj.cdr h cell) (observe (Obj.car h cell) :: acc) (fuel - 1)
    in
    loop (Obj.car h tc) [] 20
  in
  (List.rev !dequeued, remaining)

let test_publish_last_safe () =
  (* With the paper's ordering, a dequeue at any point either sees the old
     queue or the completed queue; nothing bogus ever appears. *)
  List.iter
    (fun initial ->
      for pause = 0 to Tconc.Enqueue.total_steps - 1 do
        let dequeued, remaining =
          enqueue_with_dequeue_at ~order:`Publish_last ~initial ~pause_at:pause
        in
        let all = dequeued @ remaining in
        Alcotest.(check (list int))
          (Printf.sprintf "pause %d: no loss, no phantom" pause)
          (initial @ [ 99 ]) all
      done)
    [ []; [ 1 ]; [ 1; 2 ] ]

let test_publish_first_unsafe () =
  (* The broken ordering lets the mutator dequeue the don't-care value of
     the half-installed cell.  The checker must catch at least one unsafe
     interleaving (this is what makes Figure 3's ordering essential). *)
  let violations = ref 0 in
  List.iter
    (fun initial ->
      for pause = 0 to Tconc.Enqueue.total_steps - 1 do
        let dequeued, remaining =
          enqueue_with_dequeue_at ~order:`Publish_first ~initial ~pause_at:pause
        in
        let all = dequeued @ remaining in
        if all <> initial @ [ 99 ] then incr violations
      done)
    [ []; [ 1 ]; [ 1; 2 ] ];
  check "broken ordering detected" true (!violations > 0)

(* --- property: random interleaved mutator/collector traffic ---------- *)

let prop_mixed_traffic =
  QCheck.Test.make ~name:"random enqueue/dequeue traffic is FIFO" ~count:200
    QCheck.(list (option (int_range 0 1000)))
    (fun ops ->
      let h = heap () in
      let tc = Tconc.make h in
      let model = Queue.create () in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some v ->
              (* collector-style append *)
              Tconc.enqueue_with h ~alloc_pair:(fun a b -> Obj.cons h a b) tc (fx v);
              Queue.add v model
          | None -> (
              match (Tconc.dequeue h tc, Queue.take_opt model) with
              | None, None -> ()
              | Some w, Some v -> if Word.to_fixnum w <> v then ok := false
              | _ -> ok := false))
        ops;
      !ok && to_ints h tc = List.of_seq (Queue.to_seq model))

let () =
  Alcotest.run "tconc"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "fifo" `Quick test_fifo;
          Alcotest.test_case "survives gc" `Quick test_survives_gc;
          Alcotest.test_case "dequeued cell cleared" `Quick test_dequeued_cell_cleared;
        ] );
      ( "interleavings",
        [
          Alcotest.test_case "enqueue during dequeue (nonempty)" `Quick test_interleaving_nonempty;
          Alcotest.test_case "enqueue during dequeue (empty)" `Quick test_interleaving_empty;
          Alcotest.test_case "enqueue during dequeue (single)" `Quick test_interleaving_single;
          Alcotest.test_case "publish-last is safe" `Quick test_publish_last_safe;
          Alcotest.test_case "publish-first is caught" `Quick test_publish_first_unsafe;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_mixed_traffic ]);
    ]
