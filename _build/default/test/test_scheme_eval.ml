(* Language semantics of the Scheme system: special forms, closures, tail
   calls, assignment, the numeric tower, library procedures, ports, and
   error behaviour. *)

open Gbc_scheme

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let m = lazy (Scheme.create ())

let ev src = Scheme.eval (Lazy.force m) src

let t name src expected =
  Alcotest.test_case name `Quick (fun () -> check_str src expected (ev src))

let fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match ev src with
      | exception Machine.Error _ -> ()
      | exception Compile.Error _ -> ()
      | v -> Alcotest.failf "expected error, got %s" v)

let basics =
  [
    t "int" "42" "42";
    t "negative" "-5" "-5";
    t "bool" "#t" "#t";
    t "char" "#\\z" "#\\z";
    t "string" "\"hi\"" "\"hi\"";
    t "quote" "'(a b)" "(a b)";
    t "quote dotted" "'(a . b)" "(a . b)";
    t "vector literal" "'#(1 2)" "#(1 2)";
    t "float" "2.5" "2.5";
    t "if true" "(if #t 1 2)" "1";
    t "if false" "(if #f 1 2)" "2";
    t "if one-armed" "(if #f 1)" "#f";
    t "truthiness of 0" "(if 0 'yes 'no)" "yes";
    t "truthiness of nil" "(if '() 'yes 'no)" "yes";
    t "begin" "(begin 1 2 3)" "3";
  ]

let arithmetic =
  [
    t "add" "(+ 1 2 3 4)" "10";
    t "add none" "(+)" "0";
    t "sub" "(- 10 3 2)" "5";
    t "neg" "(- 5)" "-5";
    t "mul" "(* 2 3 4)" "24";
    t "quotient" "(quotient 17 5)" "3";
    t "remainder" "(remainder 17 5)" "2";
    t "modulo neg" "(modulo -7 3)" "2";
    t "remainder neg" "(remainder -7 3)" "-1";
    t "lt chain" "(< 1 2 3)" "#t";
    t "lt chain false" "(< 1 3 2)" "#f";
    t "eq nums" "(= 2 2 2)" "#t";
    t "zero?" "(zero? 0)" "#t";
    t "float add" "(+ 1.5 2.5)" "4.";
    t "mixed" "(* 2 1.5)" "3.";
    t "float div" "(/ 1.0 4)" "0.25";
    t "int div" "(/ 7 2)" "3";
    t "char->integer" "(char->integer #\\A)" "65";
    t "integer->char" "(integer->char 97)" "#\\a";
    t "number->string" "(number->string 42)" "\"42\"";
    t "abs" "(abs -3)" "3";
    t "min/max" "(list (min 1 2) (max 1 2))" "(1 2)";
    t "even/odd" "(list (even? 4) (odd? 4))" "(#t #f)";
    fails "div by zero" "(/ 1 0)";
    fails "add non-number" "(+ 1 'a)";
  ]

let bindings =
  [
    t "let" "(let ([x 1] [y 2]) (+ x y))" "3";
    t "let shadows" "(let ([x 1]) (let ([x 2]) x))" "2";
    t "let*" "(let* ([x 1] [y (+ x 1)]) y)" "2";
    t "letrec" "(letrec ([e? (lambda (n) (if (zero? n) #t (o? (- n 1))))] [o? (lambda (n) (if (zero? n) #f (e? (- n 1))))]) (e? 10))" "#t";
    t "named let" "(let f ([n 5] [acc 1]) (if (zero? n) acc (f (- n 1) (* acc n))))" "120";
    t "define/use" "(define forty 40) (+ forty 2)" "42";
    t "set! global" "(define gv 1) (set! gv 9) gv" "9";
    t "set! local" "(let ([x 1]) (set! x 5) x)" "5";
    t "closure capture" "(define (adder n) (lambda (x) (+ x n))) ((adder 3) 4)" "7";
    t "shared mutable capture"
      "(define (counter) (let ([n 0]) (lambda () (set! n (+ n 1)) n))) (define c1 (counter)) (c1) (c1) (c1)"
      "3";
    t "two counters independent"
      "(define ca (counter)) (define cb (counter)) (ca) (ca) (cb) (list (ca) (cb))" "(3 2)";
    t "internal define" "(define (g x) (define y 10) (+ x y)) (g 5)" "15";
    t "internal define fn" "(define (h x) (define (dbl v) (* 2 v)) (dbl x)) (h 21)" "42";
    fails "unbound" "this-is-unbound";
    fails "set! unbound" "(set! never-defined 1)";
  ]

let control =
  [
    t "cond" "(cond [#f 1] [#t 2] [else 3])" "2";
    t "cond else" "(cond [#f 1] [else 3])" "3";
    t "cond test-only" "(cond [#f] [42] [else 1])" "42";
    t "cond empty" "(cond [#f 1])" "#f";
    t "case" "(case (+ 1 1) [(1) 'one] [(2) 'two] [else 'many])" "two";
    t "case else" "(case 9 [(1) 'one] [else 'many])" "many";
    t "and" "(and 1 2 3)" "3";
    t "and short" "(and 1 #f (error \"not reached\"))" "#f";
    t "and empty" "(and)" "#t";
    t "or" "(or #f #f 3)" "3";
    t "or short" "(or 2 (error \"not reached\"))" "2";
    t "or empty" "(or)" "#f";
    t "when" "(when (= 1 1) 'a 'b)" "b";
    t "when false" "(when #f 'x)" "#f";
    t "unless" "(unless (= 1 2) 'ok)" "ok";
    t "do loop" "(do ([i 0 (+ i 1)] [acc '() (cons i acc)]) ((= i 3) acc))" "(2 1 0)";
    t "deep tail recursion"
      "(define (count n) (if (zero? n) 'done (count (- n 1)))) (count 100000)" "done";
    t "mutual tail recursion"
      "(define (pp n) (if (zero? n) 'even (qq (- n 1)))) (define (qq n) (if (zero? n) 'odd (pp (- n 1)))) (pp 99999)"
      "odd";
  ]

let procedures =
  [
    t "lambda rest" "((lambda args args) 1 2 3)" "(1 2 3)";
    t "lambda req+rest" "((lambda (a . rest) (cons a rest)) 1 2 3)" "(1 2 3)";
    t "case-lambda dispatch"
      "(define cl (case-lambda [() 0] [(a) 1] [(a b) 2] [(a b . r) 'many])) (list (cl) (cl 'x) (cl 'x 'y) (cl 1 2 3 4))"
      "(0 1 2 many)";
    t "apply" "(apply + '(1 2 3))" "6";
    t "apply spread" "(apply list 1 2 '(3 4))" "(1 2 3 4)";
    t "procedure?" "(list (procedure? car) (procedure? (lambda (x) x)) (procedure? 5))"
      "(#t #t #f)";
    t "higher order" "(map (lambda (f) (f 10)) (list 1+ 1- (lambda (x) (* x x))))" "(11 9 100)";
    fails "too few args" "((lambda (a b) a) 1)";
    fails "apply non-proc" "(5 6)";
    fails "case-lambda no clause" "((case-lambda [(a) a]) 1 2)";
  ]

let data =
  [
    t "cons/car/cdr" "(car (cons 1 2))" "1";
    t "set-car!" "(define pr (cons 1 2)) (set-car! pr 9) pr" "(9 . 2)";
    t "set-cdr! cycle" "(define cy (list 1)) (set-cdr! cy cy) (car (cdr (cdr cy)))" "1";
    t "list ops" "(list (length '(a b c)) (reverse '(1 2 3)) (append '(1) '(2) '(3)))"
      "(3 (3 2 1) (1 2 3))";
    t "memq" "(memq 'c '(a b c d))" "(c d)";
    t "memv" "(memv 2 '(1 2 3))" "(2 3)";
    t "member" "(member \"b\" '(\"a\" \"b\"))" "(\"b\")";
    t "assq" "(assq 'b '((a 1) (b 2)))" "(b 2)";
    t "remq" "(remq 'b '(a b c b))" "(a c)";
    t "filter" "(filter even? '(1 2 3 4 5 6))" "(2 4 6)";
    t "fold-left" "(fold-left + 0 '(1 2 3 4))" "10";
    t "iota" "(iota 5)" "(0 1 2 3 4)";
    t "map 2-list" "(map + '(1 2 3) '(10 20 30))" "(11 22 33)";
    t "list-ref" "(list-ref '(a b c) 2)" "c";
    t "eq? symbols" "(eq? 'a 'a)" "#t";
    t "eq? fresh pairs" "(eq? (cons 1 2) (cons 1 2))" "#f";
    t "eqv? numbers" "(eqv? 100000 100000)" "#t";
    t "equal? deep" "(equal? '(1 (2 #(3))) '(1 (2 #(3))))" "#t";
    t "equal? strings" "(equal? \"ab\" \"ab\")" "#t";
    t "vectors" "(define v (make-vector 3 'x)) (vector-set! v 1 'y) (vector->list v)" "(x y x)";
    t "vector fn" "(vector 1 2 3)" "#(1 2 3)";
    t "list->vector" "(list->vector '(1 2))" "#(1 2)";
    t "strings" "(string-append \"foo\" \"bar\")" "\"foobar\"";
    t "string ops" "(list (string-length \"abc\") (string-ref \"abc\" 1))" "(3 #\\b)";
    t "substring" "(substring \"hello\" 1 3)" "\"el\"";
    t "symbol<->string" "(string->symbol (symbol->string 'hello))" "hello";
    t "boxes" "(define bx (box 1)) (set-box! bx 2) (unbox bx)" "2";
    t "predicates" "(list (pair? '(1)) (pair? '()) (null? '()) (symbol? 'a) (string? \"s\") (char? #\\a) (vector? '#(1)))"
      "(#t #f #t #t #t #t #t)";
    fails "car of non-pair" "(car 5)";
    fails "vector-ref range" "(vector-ref (make-vector 2) 5)";
  ]

let continuations =
  [
    t "call/cc unused" "(+ 1 (call/cc (lambda (k) 10)))" "11";
    t "call/cc escape" "(+ 1 (call/cc (lambda (k) (k 10) 99)))" "11";
    t "long name" "(call-with-current-continuation (lambda (k) (k 'ok)))" "ok";
    t "escape from map"
      "(call/cc (lambda (ret) (map (lambda (x) (if (= x 3) (ret 'three) x)) '(1 2 3 4))))"
      "three";
    t "early exit helper"
      "(define (find-first pred l)\n\
      \  (call/cc (lambda (return)\n\
      \    (for-each (lambda (x) (when (pred x) (return x))) l)\n\
      \    'not-found)))\n\
       (list (find-first even? '(1 3 4 5)) (find-first even? '(1 3 5)))"
      "(4 not-found)";
    t "re-entrant loop in one form"
      "(define trip 0)\n\
       (let ([k+v (call/cc (lambda (k) (cons k 0)))])\n\
      \  (set! trip (+ trip 1))\n\
      \  (if (< (cdr k+v) 3)\n\
      \      ((car k+v) (cons (car k+v) (+ (cdr k+v) 1)))\n\
      \      (list 'value (cdr k+v) 'trips trip)))"
      "(value 3 trips 4)";
    t "continuation is a procedure" "(call/cc procedure?)" "#t";
    t "tail call/cc"
      "(define (f) (call/cc (lambda (k) (k 42))))\n(f)" "42";
    t "generator ping-pong"
      "(define (make-gen lst)\n\
      \  (define return #f)\n\
      \  (define (next)\n\
      \    (call/cc (lambda (r) (set! return r) (resume 'go))))\n\
      \  (define resume\n\
      \    (lambda (ignored)\n\
      \      (for-each (lambda (x) (call/cc (lambda (k) (set! resume k) (return x)))) lst)\n\
      \      (return 'done)))\n\
      \  next)\n\
       (define gen (make-gen '(a b c)))\n\
       (list (gen) (gen) (gen) (gen))"
      "(a b c done)";
    t "continuation survives gc"
      "(define kk #f)\n\
       (define out (+ 1000 (call/cc (lambda (k) (set! kk k) 0))))\n\
       (collect 4)\n\
       out"
      "1000";
    fails "wrong arity to continuation" "(call/cc (lambda (k) (k 1 2)))";
    t "dynamic-wind normal"
      "(define dwl '()) (define (dwn x) (set! dwl (cons x dwl)))\n\
       (dynamic-wind (lambda () (dwn 'in)) (lambda () (dwn 'body) 'r) (lambda () (dwn 'out)))\n\
       (reverse dwl)"
      "(in body out)";
    t "dynamic-wind escape runs after"
      "(define dwl2 '()) (define (dwn2 x) (set! dwl2 (cons x dwl2)))\n\
       (call/cc (lambda (escape)\n\
      \  (dynamic-wind (lambda () (dwn2 'in))\n\
      \                (lambda () (dwn2 'body) (escape 'gone) (dwn2 'unreached))\n\
      \                (lambda () (dwn2 'out)))))\n\
       (reverse dwl2)"
      "(in body out)";
    t "dynamic-wind re-entry rewinds"
      "(define dwl3 '()) (define (dwn3 x) (set! dwl3 (cons x dwl3)))\n\
       (define kdw #f) (define ndw 0)\n\
       (dynamic-wind\n\
      \  (lambda () (dwn3 'in))\n\
      \  (lambda () (call/cc (lambda (k) (set! kdw k))) (set! ndw (+ ndw 1)) (dwn3 (cons 'body ndw)))\n\
      \  (lambda () (dwn3 'out)))\n\
       (when (< ndw 2) (kdw 'again))\n\
       (reverse dwl3)"
      "(in (body . 1) out in (body . 2) out)";
    t "nested winds unwind in order"
      "(define dwl4 '()) (define (dwn4 x) (set! dwl4 (cons x dwl4)))\n\
       (call/cc (lambda (escape)\n\
      \  (dynamic-wind (lambda () (dwn4 'in1)) (lambda ()\n\
      \    (dynamic-wind (lambda () (dwn4 'in2)) (lambda () (escape 'x))\n\
      \                  (lambda () (dwn4 'out2))))\n\
      \    (lambda () (dwn4 'out1)))))\n\
       (reverse dwl4)"
      "(in1 in2 out2 out1)";
    t "call-with-output-file closes on exit"
      "(call-with-output-file \"cwof.txt\" (lambda (p) (display '(1 2) p)))\n\
       (call-with-input-file \"cwof.txt\" (lambda (p) (read p)))"
      "(1 2)";
    t "call-with-output-file closes on escape"
      "(call/cc (lambda (esc)\n\
      \  (call-with-output-file \"cwof2.txt\" (lambda (p) (display 'partial p) (esc 'out)))))\n\
       (call-with-input-file \"cwof2.txt\" (lambda (p) (read p)))"
      "partial";
  ]

let quasiquote =
  [
    t "plain" "`(1 2 3)" "(1 2 3)";
    t "unquote" "(let ([x 5]) `(a ,x b))" "(a 5 b)";
    t "splice" "`(1 ,@(list 2 3) 4)" "(1 2 3 4)";
    t "splice end" "`(1 ,@(list 2 3))" "(1 2 3)";
    t "nested structure" "(let ([x 1]) `((,x) #(,x ,(+ x 1))))" "((1) #(1 2))";
    t "nested quasiquote" "`(a `(b ,(c)))" "(a (quasiquote (b (unquote (c)))))";
    t "double depth unquote" "(let ([x 9]) `(a `(b ,,x)))" "(a (quasiquote (b (unquote 9))))";
    t "atom" "`x" "x";
    fails "unquote outside" ",x";
  ]

let reading =
  [
    Alcotest.test_case "read from port" `Quick (fun () ->
        let mach = Lazy.force m in
        ignore
          (Machine.eval_string mach
             "(define rp-out (open-output-file \"data.scm\"))\n\
              (display \"(1 two \\\"three\\\") 42 final\" rp-out)\n\
              (close-output-port rp-out)\n\
              (define rp (open-input-file \"data.scm\"))");
        check_str "datum 1" "(1 two \"three\")" (ev "(read rp)");
        check_str "datum 2" "42" (ev "(read rp)");
        check_str "datum 3" "final" (ev "(read rp)");
        check_str "eof" "#t" (ev "(eof-object? (read rp))");
        ignore (ev "(close-input-port rp)"));
    Alcotest.test_case "peek-char does not consume" `Quick (fun () ->
        let mach = Lazy.force m in
        ignore
          (Machine.eval_string mach
             "(define pk-out (open-output-file \"pk.txt\"))\n\
              (display \"xy\" pk-out) (close-output-port pk-out)\n\
              (define pk (open-input-file \"pk.txt\"))");
        check_str "peek" "#\\x" (ev "(peek-char pk)");
        check_str "peek again" "#\\x" (ev "(peek-char pk)");
        check_str "read" "#\\x" (ev "(read-char pk)");
        check_str "next" "#\\y" (ev "(read-char pk)");
        check_str "peek eof" "#t" (ev "(eof-object? (peek-char pk))"));
  ]

let extended_prims =
  [
    t "char=?" "(char=? #\\a #\\a)" "#t";
    t "char<?" "(char<? #\\a #\\b)" "#t";
    t "char-upcase" "(char-upcase #\\a)" "#\\A";
    t "char-alphabetic?" "(list (char-alphabetic? #\\a) (char-alphabetic? #\\1))" "(#t #f)";
    t "char-numeric?" "(char-numeric? #\\7)" "#t";
    t "char-whitespace?" "(char-whitespace? #\\space)" "#t";
    t "string<?" "(string<? \"abc\" \"abd\")" "#t";
    t "string-copy distinct" "(let* ([s \"abc\"] [c (string-copy s)]) (list (equal? s c) (eq? s c)))" "(#t #f)";
    t "string->list" "(string->list \"abc\")" "(#\\a #\\b #\\c)";
    t "list->string" "(list->string '(#\\h #\\i))" "\"hi\"";
    t "string->number int" "(string->number \"42\")" "42";
    t "string->number float" "(string->number \"2.5\")" "2.5";
    t "string->number bad" "(string->number \"nope\")" "#f";
    t "string fn" "(string #\\a #\\b)" "\"ab\"";
    t "vector-fill!" "(let ([v (make-vector 3 0)]) (vector-fill! v 'x) v)" "#(x x x)";
    t "gensym distinct" "(eq? (gensym) (gensym))" "#f";
    t "sort" "(sort < '(5 2 8 1 9 3))" "(1 2 3 5 8 9)";
    t "sort stable strings" "(sort (lambda (a b) (< (string-length a) (string-length b))) '(\"bb\" \"a\" \"ccc\" \"dd\"))"
      "(\"a\" \"bb\" \"dd\" \"ccc\")";
    t "list-copy distinct" "(let* ([l '(1 2)] [c (list-copy l)]) (list (equal? l c) (eq? l c)))"
      "(#t #f)";
    t "last-pair" "(last-pair '(1 2 3))" "(3)";
    t "vector-map" "(vector-map (lambda (x) (* x x)) #(1 2 3))" "#(1 4 9)";
    t "string-join" "(string-join \", \" '(\"x\" \"y\" \"z\"))" "\"x, y, z\"";
    t "string ports write" "(write-to-string '(1 #\\a \"s\"))" "\"(1 #\\\\a \\\"s\\\")\"";
    t "string ports read" "(read-from-string \"(a (b c))\")" "(a (b c))";
    t "output string port"
      "(let ([p (open-output-string)]) (display 'hello p) (display \" \" p) (display 42 p) (get-output-string p))"
      "\"hello 42\"";
    t "input string port"
      "(let ([p (open-input-string \"xy\")]) (let* ([a (read-char p)] [b (read-char p)] [c (read-char p)]) (list a b (eof-object? c))))"
      "(#\\x #\\y #t)";
  ]

let records =
  [
    t "define-record-type basics"
      "(define-record-type point (make-point x y) point?\n\
      \  (x point-x set-point-x!) (y point-y))\n\
       (define rp (make-point 3 4))\n\
       (list (point? rp) (point? 5) (point-x rp) (point-y rp) (record? rp))"
      "(#t #f 3 4 #t)";
    t "record mutation" "(set-point-x! rp 9) (point-x rp)" "9";
    t "records survive gc" "(collect 4) (list (point-x rp) (point-y rp))" "(9 4)";
    t "missing ctor fields default to #f"
      "(define-record-type cell (make-cell a) cell? (a cell-a) (b cell-b set-cell-b!))\n\
       (define rc (make-cell 1))\n\
       (list (cell-a rc) (cell-b rc) (begin (set-cell-b! rc 2) (cell-b rc)))"
      "(1 #f 2)";
    t "distinct record types"
      "(define-record-type dot (make-dot v) dot? (v dot-v))\n\
       (list (point? (make-dot 1)) (dot? rp))"
      "(#f #f)";
    fails "wrong-type accessor" "(point-x (make-dot 1))";
    fails "accessor on non-record" "(point-x 42)";
  ]

let hashtables =
  [
    t "eq-hashtable across collections"
      "(define eht (make-eq-hashtable))\n\
       (define ek1 (cons 1 1)) (define ek2 'symk)\n\
       (hashtable-set! eht ek1 'one)\n\
       (hashtable-set! eht ek2 'two)\n\
       (collect 4) (collect 4)\n\
       (list (hashtable-ref eht ek1 'miss) (hashtable-ref eht ek2 'miss))"
      "(one two)";
    t "update" "(hashtable-set! eht ek1 'uno) (hashtable-ref eht ek1 'miss)" "uno";
    t "size/contains/delete"
      "(list (hashtable-size eht) (hashtable-contains? eht ek1)\n\
      \      (begin (hashtable-delete! eht ek1) (hashtable-contains? eht ek1))\n\
      \      (hashtable-size eht))"
      "(2 #t #f 1)";
    t "misses give default" "(hashtable-ref eht (cons 5 5) 'default)" "default";
    t "many keys, many collections"
      "(define ht2 (make-eq-hashtable))\n\
       (define keys (map (lambda (i) (cons i i)) (iota 100)))\n\
       (for-each (lambda (k) (hashtable-set! ht2 k (car k))) keys)\n\
       (collect 4)\n\
       (fold-left + 0 (map (lambda (k) (hashtable-ref ht2 k -1000)) keys))"
      "4950";
  ]

let gc_stress =
  [
    Alcotest.test_case "evaluation under constant collection" `Quick (fun () ->
        (* A machine whose collect trigger fires every ~512 words: every few
           VM calls cause a collection, exercising the stack/closure/consts
           scanners continuously. *)
        let open Gbc_runtime in
        let config = Config.v ~gen0_trigger_words:512 ~max_generation:3 () in
        let mach = Gbc_scheme.Scheme.create ~config () in
        let r =
          Gbc_scheme.Scheme.eval mach
            "(define (build n) (if (zero? n) '() (cons (vector n (number->string n)) (build (- n 1)))))\n\
             (define data (build 2000))\n\
             (define (checksum l)\n\
               (if (null? l) 0\n\
                   (+ (vector-ref (car l) 0)\n\
                      (string-length (vector-ref (car l) 1))\n\
                      (checksum (cdr l)))))\n\
             (checksum data)"
        in
        (* sum 1..500 + total digits *)
        let digits n = String.length (string_of_int n) in
        let expect =
          List.fold_left (fun a n -> a + n + digits n) 0 (List.init 2000 (fun i -> i + 1))
        in
        check_str "checksum" (string_of_int expect) r;
        check "many collections happened" true
          ((Heap.stats (Machine.heap mach)).Stats.total.Stats.collections > 10);
        Machine.dispose mach);
    Alcotest.test_case "closures survive collections" `Quick (fun () ->
        let open Gbc_runtime in
        let config = Config.v ~gen0_trigger_words:512 () in
        let mach = Gbc_scheme.Scheme.create ~config () in
        let r =
          Gbc_scheme.Scheme.eval mach
            "(define (make-adders n)\n\
               (if (zero? n) '() (cons (lambda (x) (+ x n)) (make-adders (- n 1)))))\n\
             (define adders (make-adders 100))\n\
             (fold-left + 0 (map (lambda (f) (f 1000)) adders))"
        in
        check_str "sum" (string_of_int ((100 * 1000) + (100 * 101 / 2))) r;
        Machine.dispose mach);
    Alcotest.test_case "guardians inside stressed machine" `Quick (fun () ->
        let open Gbc_runtime in
        let config = Config.v ~gen0_trigger_words:1024 ~max_generation:2 () in
        let mach = Gbc_scheme.Scheme.create ~config () in
        let r =
          Gbc_scheme.Scheme.eval mach
            "(define G (make-guardian))\n\
             (define (churn n)\n\
               (unless (zero? n)\n\
                 (G (cons n n))\n\
                 (churn (- n 1))))\n\
             (churn 200)\n\
             (collect 2) (collect 2)\n\
             (define (drain acc) (let ([x (G)]) (if x (drain (+ acc 1)) acc)))\n\
             (drain 0)"
        in
        check_str "all 200 recovered" "200" r;
        Machine.dispose mach);
  ]

let output =
  [
    Alcotest.test_case "display/write/newline" `Quick (fun () ->
        let out =
          Scheme.eval_output (Lazy.force m)
            "(display \"x=\") (display 42) (newline) (write #\\a) (write \"s\")"
        in
        check_str "console" "x=42\n#\\a\"s\"" out);
    Alcotest.test_case "ports from scheme" `Quick (fun () ->
        let mach = Lazy.force m in
        ignore
          (Machine.eval_string mach
             "(define po (open-output-file \"t.txt\"))\n              (display 'written po) (flush-output-port po) (close-output-port po)\n              (define pi (open-input-file \"t.txt\"))");
        check_str "read back" "#\\w" (ev "(read-char pi)");
        check_str "second" "#\\r" (ev "(read-char pi)");
        ignore (ev "(close-input-port pi)");
        check_str "eof detect" "#t"
          (ev "(define pj (open-input-file \"t.txt\")) (do ([c (read-char pj) (read-char pj)] [n 0 (+ n 1)]) ((eof-object? c) (= n 7)))"));
  ]

let gc_integration =
  [
    t "collect runs" "(begin (collect) (collect 2) 'ok)" "ok";
    t "gc-count positive" "(> (gc-count) 0)" "#t";
    t "eq-hash fixnum stable" "(= (eq-hash 42) (eq-hash 42))" "#t";
    t "data survives collections"
      "(define keepme (list 1 2 (vector 'a \"b\") (cons 3.5 #\\c))) (collect 4) (collect 4) keepme"
      "(1 2 #(a \"b\") (3.5 . #\\c))";
    t "deep structure survives"
      "(define (build n) (if (zero? n) '() (cons n (build (- n 1))))) (define big (build 1000)) (collect 4) (length big)"
      "1000";
    t "allocation pressure triggers gc"
      "(define before (gc-count)) (let loop ([i 0]) (unless (= i 100000) (cons i i) (loop (+ i 1)))) (> (gc-count) before)"
      "#t";
  ]

let errors =
  [
    t "with-error-handler catches" "(with-error-handler (lambda (m) 'caught) (lambda () (car 5)))"
      "caught";
    t "with-error-handler passthrough" "(with-error-handler (lambda (m) 'no) (lambda () 'ok))"
      "ok";
    t "handler receives message"
      "(with-error-handler (lambda (m) (string? m)) (lambda () (error \"boom\")))" "#t";
    t "machine usable after caught error"
      "(with-error-handler (lambda (m) 'x) (lambda () (vector-ref (vector) 5)))\n(+ 1 2)" "3";
    t "nested handlers"
      "(with-error-handler (lambda (m) 'outer)\n\
      \  (lambda ()\n\
      \    (with-error-handler (lambda (m) 'inner) (lambda () (car '())))))"
      "inner";
    t "error inside handler propagates to outer"
      "(with-error-handler (lambda (m) 'outer)\n\
      \  (lambda ()\n\
      \    (with-error-handler (lambda (m) (cdr 7)) (lambda () (car '())))))"
      "outer";
    t "failing cleanup does not stop others (paper design question)"
      "(define Ge (make-guardian)) (define ge-good 0)\n\
       (Ge (cons 'bad 1)) (Ge (cons 'good 2)) (Ge (cons 'good 3))\n\
       (collect 4)\n\
       (define (run-cleanups)\n\
      \  (let ([x (Ge)])\n\
      \    (when x\n\
      \      (with-error-handler (lambda (m) 'suppressed)\n\
      \        (lambda ()\n\
      \          (when (eq? (car x) 'bad) (error \"cleanup failed\"))\n\
      \          (set! ge-good (+ ge-good 1))))\n\
      \      (run-cleanups))))\n\
       (run-cleanups)\n\
       ge-good"
      "2";
    Alcotest.test_case "error primitive" `Quick (fun () ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
          loop 0
        in
        match ev "(error \"custom\" 'irritant 42)" with
        | exception Machine.Error msg -> check "message content" true (contains msg "custom")
        | v -> Alcotest.failf "expected error, got %s" v);
    Alcotest.test_case "machine recovers after error" `Quick (fun () ->
        let mach = Lazy.force m in
        (try ignore (Machine.eval_string mach "(car 5)") with Machine.Error _ -> Machine.reset mach);
        check_str "still works" "4" (ev "(+ 2 2)"));
  ]

let () =
  Alcotest.run "scheme_eval"
    [
      ("basics", basics);
      ("arithmetic", arithmetic);
      ("bindings", bindings);
      ("control", control);
      ("procedures", procedures);
      ("data", data);
      ("continuations", continuations);
      ("quasiquote", quasiquote);
      ("reading", reading);
      ("extended prims", extended_prims);
      ("records", records);
      ("hashtables", hashtables);
      ("gc stress", gc_stress);
      ("output", output);
      ("gc integration", gc_integration);
      ("errors", errors);
    ]
