lib/vfs/vfs.ml: Array Buffer Hashtbl String
