lib/vfs/vfs.mli:
