(** An in-memory filesystem with a bounded file-descriptor table.

    The paper's motivating example is ports: "a port may not be closed
    explicitly by a user program before the last reference to it is dropped.
    This can tie up system resources and may result in data associated with
    output ports remaining unwritten until the system exits."  To reproduce
    that experiment deterministically we substitute the operating system
    with this small virtual filesystem: it enforces a descriptor limit,
    counts every open/close, and can report exactly how many descriptors
    were leaked and how many buffered bytes were never flushed. *)

exception Descriptor_exhausted
exception Bad_descriptor of int
exception No_such_file of string

type mode = Read | Write | Append

type file = {
  file_name : string;
  mutable content : Buffer.t;
}

type descriptor = {
  fd : int;
  file : file;
  mode : mode;
  mutable pos : int;  (** read position (input descriptors) *)
  mutable open_ : bool;
}

type t = {
  files : (string, file) Hashtbl.t;
  mutable table : descriptor option array;
  fd_limit : int;
  mutable open_count : int;
  mutable max_open : int;  (** high-water mark *)
  mutable total_opens : int;
  mutable total_closes : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
}

let create ?(fd_limit = 64) () =
  {
    files = Hashtbl.create 16;
    table = Array.make (min fd_limit 64) None;
    fd_limit;
    open_count = 0;
    max_open = 0;
    total_opens = 0;
    total_closes = 0;
    bytes_written = 0;
    bytes_read = 0;
  }

let file_exists t name = Hashtbl.mem t.files name

let find_file t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None -> raise (No_such_file name)

let get_or_create_file t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None ->
      let f = { file_name = name; content = Buffer.create 64 } in
      Hashtbl.add t.files name f;
      f

(** Whole contents of [name] as a string (test/verification helper). *)
let read_file t name = Buffer.contents (find_file t name).content

let write_file t name data =
  let f = get_or_create_file t name in
  Buffer.clear f.content;
  Buffer.add_string f.content data

let remove_file t name = Hashtbl.remove t.files name

(* ------------------------------------------------------------------ *)
(* Descriptors                                                         *)

let free_slot t =
  let n = Array.length t.table in
  let rec scan i = if i >= n then None else if t.table.(i) = None then Some i else scan (i + 1) in
  match scan 0 with
  | Some i -> Some i
  | None ->
      if n >= t.fd_limit then None
      else begin
        let table = Array.make (min t.fd_limit (2 * n)) None in
        Array.blit t.table 0 table 0 n;
        t.table <- table;
        Some n
      end

let openfile t name mode =
  if t.open_count >= t.fd_limit then raise Descriptor_exhausted;
  match free_slot t with
  | None -> raise Descriptor_exhausted
  | Some fd ->
      let file =
        match mode with
        | Read -> find_file t name
        | Write ->
            let f = get_or_create_file t name in
            Buffer.clear f.content;
            f
        | Append -> get_or_create_file t name
      in
      let d = { fd; file; mode; pos = 0; open_ = true } in
      t.table.(fd) <- Some d;
      t.open_count <- t.open_count + 1;
      t.total_opens <- t.total_opens + 1;
      if t.open_count > t.max_open then t.max_open <- t.open_count;
      fd

let descriptor t fd =
  if fd < 0 || fd >= Array.length t.table then raise (Bad_descriptor fd);
  match t.table.(fd) with
  | Some d when d.open_ -> d
  | _ -> raise (Bad_descriptor fd)

let close t fd =
  let d = descriptor t fd in
  d.open_ <- false;
  t.table.(fd) <- None;
  t.open_count <- t.open_count - 1;
  t.total_closes <- t.total_closes + 1

let is_open t fd =
  fd >= 0
  && fd < Array.length t.table
  && match t.table.(fd) with Some d -> d.open_ | None -> false

let write t fd s =
  let d = descriptor t fd in
  if d.mode = Read then raise (Bad_descriptor fd);
  Buffer.add_string d.file.content s;
  t.bytes_written <- t.bytes_written + String.length s

let read_char t fd =
  let d = descriptor t fd in
  if d.mode <> Read then raise (Bad_descriptor fd);
  let contents = Buffer.contents d.file.content in
  if d.pos >= String.length contents then None
  else begin
    let c = contents.[d.pos] in
    d.pos <- d.pos + 1;
    t.bytes_read <- t.bytes_read + 1;
    Some c
  end

let peek_char t fd =
  let d = descriptor t fd in
  if d.mode <> Read then raise (Bad_descriptor fd);
  let contents = Buffer.contents d.file.content in
  if d.pos >= String.length contents then None else Some contents.[d.pos]

(** Unconsumed remainder of an input descriptor's file. *)
let remaining t fd =
  let d = descriptor t fd in
  if d.mode <> Read then raise (Bad_descriptor fd);
  let contents = Buffer.contents d.file.content in
  String.sub contents d.pos (String.length contents - d.pos)

(** Advance an input descriptor by [n] characters (used by [read]). *)
let advance t fd n =
  let d = descriptor t fd in
  if d.mode <> Read then raise (Bad_descriptor fd);
  let len = Buffer.length d.file.content in
  d.pos <- min len (d.pos + n);
  t.bytes_read <- t.bytes_read + n

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)

let open_count t = t.open_count
let max_open t = t.max_open
let total_opens t = t.total_opens
let total_closes t = t.total_closes
let bytes_written t = t.bytes_written
let bytes_read t = t.bytes_read

(** Descriptors still open: the leak count at end of run. *)
let leaked t = t.open_count
