(** An in-memory filesystem with a bounded file-descriptor table.

    Substitutes the operating system in the port experiments: it enforces a
    descriptor limit, counts every open/close, and reports exactly how many
    descriptors leaked and how many buffered bytes were never flushed. *)

exception Descriptor_exhausted
exception Bad_descriptor of int
exception No_such_file of string

type mode = Read | Write | Append

type t

val create : ?fd_limit:int -> unit -> t
(** [fd_limit] defaults to 64. *)

(** {1 Whole-file operations} *)

val file_exists : t -> string -> bool

val read_file : t -> string -> string
(** @raise No_such_file *)

val write_file : t -> string -> string -> unit
val remove_file : t -> string -> unit

(** {1 Descriptors} *)

val openfile : t -> string -> mode -> int
(** [Write] truncates/creates, [Append] creates, [Read] requires the file.
    @raise Descriptor_exhausted at the limit
    @raise No_such_file for [Read] on a missing file *)

val close : t -> int -> unit
(** @raise Bad_descriptor if not open. *)

val is_open : t -> int -> bool

val write : t -> int -> string -> unit
(** @raise Bad_descriptor on closed or read-only descriptors. *)

val read_char : t -> int -> char option
(** [None] at end of file.
    @raise Bad_descriptor on closed or write-only descriptors. *)

val peek_char : t -> int -> char option
(** Like {!read_char} without consuming. *)

val remaining : t -> int -> string
(** Unconsumed remainder of an input descriptor's file. *)

val advance : t -> int -> int -> unit
(** Advance an input descriptor by [n] characters. *)

(** {1 Accounting} *)

val open_count : t -> int
val max_open : t -> int
val total_opens : t -> int
val total_closes : t -> int
val bytes_written : t -> int
val bytes_read : t -> int

val leaked : t -> int
(** Descriptors still open: the leak count at end of run. *)
