(** Ephemeron pairs: conditional weakness (a post-paper Chez Scheme
    extension, included here as the natural next step of the paper's weak
    machinery).

    An ephemeron holds a key weakly and a value {e conditionally}: the
    value keeps things alive only while the key is reachable through some
    other path.  When the key dies, both fields become [#f].  This fixes
    the leak weak pairs have when a value references its own key (e.g. a
    weak table whose values mention their keys): with a weak pair the
    key→value→key cycle is retained forever; with an ephemeron it
    collapses.

    The collector resolves ephemerons with a fixpoint interleaved with the
    Cheney sweep and the guardian pass, so a key saved by a guardian counts
    as reachable and keeps its ephemeron intact. *)

let cons = Obj.ephemeron_cons
let is_ephemeron = Obj.is_ephemeron
let key = Obj.car
let value = Obj.cdr
let set_key = Obj.set_car
let set_value = Obj.set_cdr

(** True once the key has been reclaimed (both fields read [#f]). *)
let broken h w = Word.is_false (Obj.car h w) && Word.is_false (Obj.cdr h w)
