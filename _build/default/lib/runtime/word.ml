(** Tagged machine words of the simulated heap.

    Every slot of the simulated heap, every root, and every value the
    mutator manipulates is a [Word.t] — an OCaml [int] carrying a Chez-style
    low-bit tag:

    {v
      bit 0 = 0                   fixnum, value = w asr 1
      bits [0..2] = 0b001         pair pointer,  address = w asr 3
      bits [0..2] = 0b011         typed-object pointer, address = w asr 3
      bits [0..2] = 0b101         immediate; bits [3..10] = code,
                                  bits [11..] = payload (characters)
      bits [0..2] = 0b111         reserved (never constructed)
    v}

    Weak pairs carry the ordinary pair tag; they are distinguished by the
    {e space} of the segment they live in, exactly as in the paper.

    Addresses are segment-strided: [address = (segment lsl stride_bits) lor
    offset], see {!Store}. *)

type t = int

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b

(* ------------------------------------------------------------------ *)
(* Fixnums                                                             *)

let fixnum_min = min_int asr 1
let fixnum_max = max_int asr 1

let of_fixnum n =
  assert (n >= fixnum_min && n <= fixnum_max);
  n lsl 1

let is_fixnum w = w land 1 = 0
let to_fixnum w =
  assert (is_fixnum w);
  w asr 1

(* ------------------------------------------------------------------ *)
(* Pointers                                                            *)

let tag_mask = 0b111
let pair_tag = 0b001
let typed_tag = 0b011
let imm_tag = 0b101

let is_pair_ptr w = w land tag_mask = pair_tag
let is_typed_ptr w = w land tag_mask = typed_tag
let is_pointer w = w land 1 = 1 && w land tag_mask <> imm_tag

let pair_ptr addr = (addr lsl 3) lor pair_tag
let typed_ptr addr = (addr lsl 3) lor typed_tag

let addr w =
  assert (is_pointer w);
  w lsr 3

(* Rebuild a pointer with the same tag but a new address: used by the
   collector when forwarding. *)
let with_addr w addr = (addr lsl 3) lor (w land tag_mask)

(* ------------------------------------------------------------------ *)
(* Immediates                                                          *)

let imm code payload = (payload lsl 11) lor (code lsl 3) lor imm_tag
let is_imm w = w land tag_mask = imm_tag
let imm_code w = (w lsr 3) land 0xff
let imm_payload w = w lsr 11

let code_nil = 0
let code_false = 1
let code_true = 2
let code_eof = 3
let code_void = 4
let code_unbound = 5
let code_char = 6

(* The forwarding marker is written by the collector over the first word of
   a copied object; it must be distinguishable from every word a mutator can
   store.  Immediate code 7 is reserved for it and never constructed
   elsewhere. *)
let code_forward = 7

let nil = imm code_nil 0
let false_ = imm code_false 0
let true_ = imm code_true 0
let eof = imm code_eof 0
let void = imm code_void 0
let unbound = imm code_unbound 0
let forward_marker = imm code_forward 0

let of_bool b = if b then true_ else false_

let of_char c = imm code_char (Char.code c)
let is_char w = is_imm w && imm_code w = code_char
let to_char w =
  assert (is_char w);
  Char.chr (imm_payload w land 0xff)

let is_nil w = w = nil
let is_false w = w = false_
let is_true w = w = true_

(* Scheme truthiness: everything except #f. *)
let truthy w = w <> false_

let pp ppf w =
  if is_fixnum w then Format.fprintf ppf "fx:%d" (to_fixnum w)
  else if is_pair_ptr w then Format.fprintf ppf "pair@%d" (addr w)
  else if is_typed_ptr w then Format.fprintf ppf "obj@%d" (addr w)
  else if is_char w then Format.fprintf ppf "char:%C" (to_char w)
  else if is_nil w then Format.pp_print_string ppf "()"
  else if is_false w then Format.pp_print_string ppf "#f"
  else if is_true w then Format.pp_print_string ppf "#t"
  else if w = eof then Format.pp_print_string ppf "#eof"
  else if w = void then Format.pp_print_string ppf "#void"
  else if w = unbound then Format.pp_print_string ppf "#unbound"
  else if w = forward_marker then Format.pp_print_string ppf "#fwd"
  else Format.fprintf ppf "imm:%d" w
