(** Weak pairs (paper Sections 2 and 4).

    A weak pair is an ordinary pair except that its car is a weak pointer:
    the collector does not trace it, and if the car's referent is reclaimed
    the car is replaced with [#f].  Weak pairs answer [true] to [pair?] and
    are manipulated with the ordinary pair operations; they are
    distinguished only by living in the weak-pair space.

    The weak pass runs {e after} the guardian pass, so a weak pointer to an
    object saved by a guardian is not broken. *)

val cons : Heap.t -> Word.t -> Word.t -> Word.t
(** [cons h car cdr]: car weak, cdr strong. *)

val is_weak_pair : Heap.t -> Word.t -> bool
val car : Heap.t -> Word.t -> Word.t
val cdr : Heap.t -> Word.t -> Word.t
val set_car : Heap.t -> Word.t -> Word.t -> unit
val set_cdr : Heap.t -> Word.t -> Word.t -> unit

val broken : Heap.t -> Word.t -> bool
(** True when the car has been broken by the collector (indistinguishable
    from a car the program set to [#f], as in the paper). *)
