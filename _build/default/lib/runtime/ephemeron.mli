(** Ephemeron pairs: conditional weakness (post-paper Chez Scheme
    extension).

    The key is held weakly; the value keeps objects alive only while the
    key is reachable through some other path.  When the key dies, both
    fields become [#f].  Unlike a weak pair, a value that references its
    own key does not leak. *)

val cons : Heap.t -> Word.t -> Word.t -> Word.t
val is_ephemeron : Heap.t -> Word.t -> bool
val key : Heap.t -> Word.t -> Word.t
val value : Heap.t -> Word.t -> Word.t
val set_key : Heap.t -> Word.t -> Word.t -> unit
val set_value : Heap.t -> Word.t -> Word.t -> unit

val broken : Heap.t -> Word.t -> bool
(** True once the key has been reclaimed. *)
