(** Tconcs: the queue representation behind guardians (paper Figures 2–4).

    A tconc is a list plus a header pair whose car points at the first cell
    and whose cdr points at the last (spare) cell; the queue is empty when
    both header fields point at the same cell.  The protocols need no
    critical sections: the collector appends by publishing the header's cdr
    {e last}; the mutator removes from the front touching only the header's
    car. *)

val make : Heap.t -> Word.t
(** A fresh empty tconc (the header pair). *)

val is_empty : Heap.t -> Word.t -> bool
val length : Heap.t -> Word.t -> int

val to_list : Heap.t -> Word.t -> Word.t list
(** Elements currently queued, front first. *)

val enqueue_with :
  Heap.t -> alloc_pair:(Word.t -> Word.t -> Word.t) -> Word.t -> Word.t -> unit
(** Collector-side append (Figure 3).  [alloc_pair] abstracts where the
    fresh last cell comes from: the collector allocates it in the target
    generation; tests use ordinary allocation. *)

val mutator_enqueue : Heap.t -> Word.t -> Word.t -> unit
(** Append using ordinary generation-0 allocation. *)

val dequeue : Heap.t -> Word.t -> Word.t option
(** Mutator-side removal (Figure 4), atomic version.  The abandoned front
    cell's fields are cleared to avoid needless storage retention. *)

(** Step-decomposed mutator dequeue: tests interleave an atomic collector
    append between any two steps and check linearizability. *)
module Dequeue : sig
  type t

  val start : Word.t -> t
  val step : Heap.t -> t -> [ `More | `Done of Word.t option ]
  val total_steps : int
end

(** Step-decomposed collector append, for the reverse direction.
    [`Publish_first] is the broken store ordering the checker exposes
    (DESIGN.md D3). *)
module Enqueue : sig
  type order = [ `Publish_last | `Publish_first ]
  type t

  val start : Heap.t -> order:order -> Word.t -> Word.t -> t
  val total_steps : int

  val step : Heap.t -> t -> bool
  (** Execute the next store; true when finished. *)
end
