(** Heap invariant verifier: a debugging walk over the whole heap checking
    the structural invariants the collector relies on — segment table
    sanity, object parse, pointer validity, space discipline, the
    remembered-set invariant, and protected-list well-formedness. *)

type error = { what : string; where : string }

val verify : Heap.t -> error list
(** Empty when the heap is consistent.  Must not be called during a
    collection. *)

val check_exn : Heap.t -> unit
(** @raise Failure listing every violation. *)
