(** Wall-clock time, for collection pause reporting. *)

val now_ns : unit -> float
