(** Object layer: typed views over heap words.

    Pairs and weak pairs are bare two-word cells living in the pair and
    weak-pair spaces.  Everything else is a {e typed object}: a fixnum
    header word encoding [(field_count << 8) | type_code] followed by
    [field_count] field words.  Typed objects containing pointers live in
    the typed space; pointer-free bodies (strings, bytevectors) live in the
    data space and are copied without being traced.

    All pointer-field mutators apply the write barrier
    ({!Heap.note_mutation}), so old-to-young stores are remembered. *)

(* ------------------------------------------------------------------ *)
(* Type codes                                                          *)

let code_vector = 0
let code_string = 1
let code_symbol = 2
let code_box = 3
let code_closure = 4
let code_port = 5
let code_guardian = 6
let code_bytevector = 7
let code_flonum = 8
let code_record = 9

let code_continuation = 10

(* A one-word filler emitted after zero-field objects so that every real
   object spans at least two words — the collector overwrites the first two
   words of a copied object with the forwarding marker and address.  Pads
   parse as zero-length objects, so sweeps skip them naturally. *)
let code_pad = 11

let type_name = function
  | 0 -> "vector"
  | 1 -> "string"
  | 2 -> "symbol"
  | 3 -> "box"
  | 4 -> "closure"
  | 5 -> "port"
  | 6 -> "guardian"
  | 7 -> "bytevector"
  | 8 -> "flonum"
  | 9 -> "record"
  | 10 -> "continuation"
  | 11 -> "pad"
  | _ -> "unknown"

let header ~len ~code = Word.of_fixnum ((len lsl 8) lor code)
let header_len h = Word.to_fixnum h lsr 8
let header_code h = Word.to_fixnum h land 0xff

(* ------------------------------------------------------------------ *)
(* Pairs                                                               *)

let cons h a d =
  let addr = Heap.alloc h ~space:Space.Pair 2 in
  Heap.store h addr a;
  Heap.store h (addr + 1) d;
  Word.pair_ptr addr

(** Weak pair: car is a weak pointer; distinguished solely by living in the
    weak-pair space. *)
let weak_cons h a d =
  let addr = Heap.alloc h ~space:Space.Weak 2 in
  Heap.store h addr a;
  Heap.store h (addr + 1) d;
  Word.pair_ptr addr

(** Ephemeron pair: the car (key) is weak, and the cdr (value) is traced
    only while the key is otherwise reachable; both fields are broken to
    [#f] when the key dies.  Unlike a weak pair, an ephemeron does not leak
    when the value references its own key. *)
let ephemeron_cons h k v =
  let addr = Heap.alloc h ~space:Space.Ephemeron 2 in
  Heap.store h addr k;
  Heap.store h (addr + 1) v;
  Word.pair_ptr addr

let is_pair h w = Word.is_pair_ptr w && (Heap.info_of_word h w).space = Space.Pair
let is_weak_pair h w = Word.is_pair_ptr w && (Heap.info_of_word h w).space = Space.Weak

let is_ephemeron h w =
  Word.is_pair_ptr w && (Heap.info_of_word h w).space = Space.Ephemeron

(** [pair? x] in the paper's sense: weak pairs answer true and are
    manipulated with the normal list operations. *)
let is_any_pair _h w = Word.is_pair_ptr w

let car h w =
  assert (Word.is_pair_ptr w);
  Heap.load h (Word.addr w)

let cdr h w =
  assert (Word.is_pair_ptr w);
  Heap.load h (Word.addr w + 1)

let set_car h w v =
  assert (Word.is_pair_ptr w);
  let addr = Word.addr w in
  Heap.store h addr v;
  Heap.note_mutation h ~addr ~value:v

let set_cdr h w v =
  assert (Word.is_pair_ptr w);
  let addr = Word.addr w + 1 in
  Heap.store h addr v;
  Heap.note_mutation h ~addr ~value:v

(* ------------------------------------------------------------------ *)
(* Generic typed objects                                               *)

(** Allocate a typed object with [len] fields, all initialized to [init].
    [data] selects the untraced data space. *)
let make_typed h ~code ?(data = false) ~len ~init () =
  let space = if data then Space.Data else Space.Typed in
  let size = max (len + 1) 2 in
  let addr = Heap.alloc h ~space size in
  Heap.store h addr (header ~len ~code);
  for i = 1 to len do
    Heap.store h (addr + i) init
  done;
  if size > len + 1 then Heap.store h (addr + len + 1) (header ~len:0 ~code:code_pad);
  Word.typed_ptr addr

let is_typed w = Word.is_typed_ptr w

let typed_code h w =
  assert (Word.is_typed_ptr w);
  header_code (Heap.load h (Word.addr w))

let typed_len h w =
  assert (Word.is_typed_ptr w);
  header_len (Heap.load h (Word.addr w))

let has_code h w code = Word.is_typed_ptr w && typed_code h w = code

let field h w i =
  assert (Word.is_typed_ptr w);
  assert (i >= 0 && i < typed_len h w);
  Heap.load h (Word.addr w + 1 + i)

let set_field h w i v =
  assert (Word.is_typed_ptr w);
  assert (i >= 0 && i < typed_len h w);
  let addr = Word.addr w + 1 + i in
  Heap.store h addr v;
  Heap.note_mutation h ~addr ~value:v

(* Field store for data-space objects: no pointers, no barrier needed. *)
let set_raw_field h w i v =
  assert (Word.is_typed_ptr w);
  assert (i >= 0 && i < typed_len h w);
  Heap.store h (Word.addr w + 1 + i) v

(* ------------------------------------------------------------------ *)
(* Vectors                                                             *)

let make_vector h ~len ~init = make_typed h ~code:code_vector ~len ~init ()
let is_vector h w = has_code h w code_vector

let vector_length h w =
  assert (is_vector h w);
  typed_len h w

let vector_ref = field
let vector_set = set_field

let vector_of_list h ws =
  let v = make_vector h ~len:(List.length ws) ~init:Word.nil in
  List.iteri (fun i w -> vector_set h v i w) ws;
  v

(* ------------------------------------------------------------------ *)
(* Strings (data space, one character per word)                        *)

let make_string h ~len ~fill =
  make_typed h ~code:code_string ~data:true ~len ~init:(Word.of_char fill) ()

let is_string h w = has_code h w code_string

let string_length h w =
  assert (is_string h w);
  typed_len h w

let string_ref h w i = Word.to_char (field h w i)
let string_set h w i c = set_raw_field h w i (Word.of_char c)

let string_of_ocaml h s =
  let len = String.length s in
  let w = make_string h ~len ~fill:' ' in
  String.iteri (fun i c -> string_set h w i c) s;
  w

let string_to_ocaml h w =
  let len = string_length h w in
  String.init len (fun i -> string_ref h w i)

(* ------------------------------------------------------------------ *)
(* Bytevectors (data space, one byte per word)                         *)

let make_bytevector h ~len ~fill =
  make_typed h ~code:code_bytevector ~data:true ~len ~init:(Word.of_fixnum fill) ()

let is_bytevector h w = has_code h w code_bytevector

let bytevector_length h w =
  assert (is_bytevector h w);
  typed_len h w

let bytevector_ref h w i = Word.to_fixnum (field h w i)

let bytevector_set h w i b =
  assert (b >= 0 && b < 256);
  set_raw_field h w i (Word.of_fixnum b)

(* ------------------------------------------------------------------ *)
(* Boxes                                                               *)

let make_box h v = make_typed h ~code:code_box ~len:1 ~init:v ()
let is_box h w = has_code h w code_box
let box_ref h w = field h w 0
let box_set h w v = set_field h w 0 v

(* ------------------------------------------------------------------ *)
(* Flonums (data space; IEEE bits split across two words)              *)

let make_flonum h f =
  let bits = Int64.bits_of_float f in
  let lo = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical bits 32) in
  let w = make_typed h ~code:code_flonum ~data:true ~len:2 ~init:(Word.of_fixnum 0) () in
  set_raw_field h w 0 (Word.of_fixnum lo);
  set_raw_field h w 1 (Word.of_fixnum hi);
  w

let is_flonum h w = has_code h w code_flonum

let flonum_value h w =
  let lo = Int64.of_int (Word.to_fixnum (field h w 0)) in
  let hi = Int64.of_int (Word.to_fixnum (field h w 1)) in
  Int64.float_of_bits (Int64.logor (Int64.shift_left hi 32) lo)

(* ------------------------------------------------------------------ *)
(* Symbols: [name] string + a mutable slot for the global-variable cell
   index used by the Scheme VM (-1 when unbound).                      *)

let make_symbol h ~name =
  let w = make_typed h ~code:code_symbol ~len:2 ~init:Word.nil () in
  set_field h w 0 name;
  set_field h w 1 (Word.of_fixnum (-1));
  w

let is_symbol h w = has_code h w code_symbol
let symbol_name h w = field h w 0
let symbol_name_string h w = string_to_ocaml h (symbol_name h w)
let symbol_global h w = Word.to_fixnum (field h w 1)
let symbol_set_global h w i = set_field h w 1 (Word.of_fixnum i)

(* ------------------------------------------------------------------ *)
(* Records: field 0 is a tag word, the rest are payload. *)

let make_record h ~tag ~len ~init =
  let w = make_typed h ~code:code_record ~len:(len + 1) ~init () in
  set_field h w 0 tag;
  w

let is_record h w = has_code h w code_record
let record_tag h w = field h w 0
let record_length h w = typed_len h w - 1
let record_ref h w i = field h w (i + 1)
let record_set h w i v = set_field h w (i + 1) v

(* ------------------------------------------------------------------ *)
(* Lists                                                               *)

let rec list_of h ws = match ws with [] -> Word.nil | w :: rest -> cons h w (list_of h rest)

let rec to_list h w =
  if Word.is_nil w then []
  else begin
    assert (Word.is_pair_ptr w);
    car h w :: to_list h (cdr h w)
  end

let list_length h w =
  let rec loop w n = if Word.is_nil w then n else loop (cdr h w) (n + 1) in
  loop w 0

(* ------------------------------------------------------------------ *)
(* Eq hashing: identity on words.  Address-based for pointers, hence
   unstable across collections — the instability the paper's transport
   guardians exist to manage. *)

let eq_hash (w : Word.t) = w land max_int

(** Size in words of the object [w] points at (header included). *)
let size_in_words h w =
  if Word.is_pair_ptr w then 2
  else begin
    assert (Word.is_typed_ptr w);
    1 + typed_len h w
  end
