(** Heap census: non-moving reachability analysis (à la Chez Scheme's
    [object-counts]).  Follows the collector's rules — weak cars untraced,
    ephemeron values behind a key-liveness fixpoint — so after a full
    collection the reachable words equal the heap's live words. *)

type counts = {
  mutable pairs : int;
  mutable weak_pairs : int;
  mutable ephemerons : int;
  mutable typed : int array;  (** indexed by {!Obj} type code *)
  mutable objects : int;
  mutable words : int;
}

type t = {
  reachable : counts;
  heap_live_words : int;
}

val run : ?include_protected:bool -> Heap.t -> t
(** [include_protected] (default true) treats guardian registrations as
    roots, matching what a collection preserves. *)

val slack : t -> int
(** Allocated-but-unreachable words: garbage awaiting collection. *)

val pp : Format.formatter -> t -> unit
