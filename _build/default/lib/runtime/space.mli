(** Heap spaces.

    Following the paper (and Chez Scheme's segmented memory system), every
    segment belongs to a space that determines how the collector sweeps
    it. *)

type t =
  | Pair  (** two-word cells, both fields traced *)
  | Weak
      (** two-word cells whose car is a weak pointer: only the cdr is
          traced; cars are mended or broken in a second pass {e after} the
          guardian pass *)
  | Ephemeron
      (** two-word key/value cells: the value is traced only while the key
          is otherwise reachable; both are broken when the key dies (a
          post-paper Chez Scheme extension) *)
  | Typed  (** header-prefixed objects with traced pointer fields *)
  | Data
      (** header-prefixed pointer-free bodies (strings, bytevectors):
          copied, never traced *)

val count : int
val to_index : t -> int
val of_index : int -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
