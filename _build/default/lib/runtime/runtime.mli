(** Collection scheduling: safepoints, the generation schedule, and the
    collect-request handler (paper Section 3).

    Mutator allocation never collects; code that holds no unrooted words
    calls {!safepoint}, and once enough generation-0 allocation has
    accumulated a collect request fires.  A program may install its own
    collect-request handler — e.g. to run [close-dropped-ports] after each
    collection, as in the paper — in which case the handler is responsible
    for calling {!collect_auto} (or not). *)

val collect : ?gen:int -> Heap.t -> Collector.outcome
(** Collect generations [0..gen] (default 0) immediately. *)

val scheduled_generation : radix:int -> max_generation:int -> int -> int
(** Oldest generation due at the given request count: generation 0 every
    time, generation [g] every [radix]{^ g} requests. *)

val collect_auto : Heap.t -> Collector.outcome
(** Collect according to the schedule, advancing the request counter. *)

val set_collect_request_handler : Heap.t -> (Heap.t -> unit) option -> unit

val request_collect : Heap.t -> unit
(** Run the installed handler, or [collect_auto] when none is installed. *)

val safepoint : Heap.t -> unit
(** Declare that the caller holds no unrooted heap words; serve a collect
    request if allocation since the last collection exceeds the trigger. *)
