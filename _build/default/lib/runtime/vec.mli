(** Growable arrays (OCaml 5.1 has no [Dynarray]). *)

module Int : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val is_empty : t -> bool
  val clear : t -> unit
  val push : t -> int -> unit
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val pop : t -> int
  val truncate : t -> int -> unit
  val iter : t -> f:(int -> unit) -> unit
  val iteri : t -> f:(int -> int -> unit) -> unit
  val to_list : t -> int list
end

module Poly : sig
  type 'a t

  val create : ?capacity:int -> dummy:'a -> unit -> 'a t
  (** [dummy] fills unused slots so cleared elements do not retain
      host-heap references. *)

  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val clear : 'a t -> unit
  val push : 'a t -> 'a -> unit
  val get : 'a t -> int -> 'a
  val set : 'a t -> int -> 'a -> unit
  val pop : 'a t -> 'a
  val iter : 'a t -> f:('a -> unit) -> unit
  val to_list : 'a t -> 'a list
end
