(** Object layer: typed views over heap words.

    Pairs and weak pairs are bare two-word cells in the pair and weak-pair
    spaces.  Everything else is a {e typed object}: a fixnum header word
    encoding [(field_count << 8) | type_code] followed by the fields.
    Zero-field objects are padded to two words (see {!code_pad}) so the
    collector's forwarding marker and address always fit.

    All pointer-field mutators apply the write barrier
    ({!Heap.note_mutation}). *)

(** {1 Type codes} *)

val code_vector : int
val code_string : int
val code_symbol : int
val code_box : int
val code_closure : int
val code_port : int
val code_guardian : int
val code_bytevector : int
val code_flonum : int
val code_record : int

val code_continuation : int
(** Reified VM continuations (layout owned by the Scheme machine). *)

val code_pad : int
(** One-word filler after zero-field objects; parses as a zero-length
    object so sweeps skip it naturally. *)

val type_name : int -> string
val header : len:int -> code:int -> Word.t
val header_len : Word.t -> int
val header_code : Word.t -> int

(** {1 Pairs} *)

val cons : Heap.t -> Word.t -> Word.t -> Word.t
val weak_cons : Heap.t -> Word.t -> Word.t -> Word.t

val ephemeron_cons : Heap.t -> Word.t -> Word.t -> Word.t
(** Key/value cell: the value is traced only while the key is otherwise
    reachable; both become [#f] when the key dies.  Unlike a weak pair, an
    ephemeron does not leak when the value references its own key. *)

val is_pair : Heap.t -> Word.t -> bool
val is_weak_pair : Heap.t -> Word.t -> bool
val is_ephemeron : Heap.t -> Word.t -> bool

val is_any_pair : Heap.t -> Word.t -> bool
(** [pair?] in the paper's sense: weak pairs answer true. *)

val car : Heap.t -> Word.t -> Word.t
val cdr : Heap.t -> Word.t -> Word.t
val set_car : Heap.t -> Word.t -> Word.t -> unit
val set_cdr : Heap.t -> Word.t -> Word.t -> unit

(** {1 Generic typed objects} *)

val make_typed :
  Heap.t -> code:int -> ?data:bool -> len:int -> init:Word.t -> unit -> Word.t
(** [data] selects the untraced data space. *)

val is_typed : Word.t -> bool
val typed_code : Heap.t -> Word.t -> int
val typed_len : Heap.t -> Word.t -> int
val has_code : Heap.t -> Word.t -> int -> bool
val field : Heap.t -> Word.t -> int -> Word.t
val set_field : Heap.t -> Word.t -> int -> Word.t -> unit

val set_raw_field : Heap.t -> Word.t -> int -> Word.t -> unit
(** Field store without the write barrier — data-space objects only. *)

(** {1 Vectors} *)

val make_vector : Heap.t -> len:int -> init:Word.t -> Word.t
val is_vector : Heap.t -> Word.t -> bool
val vector_length : Heap.t -> Word.t -> int
val vector_ref : Heap.t -> Word.t -> int -> Word.t
val vector_set : Heap.t -> Word.t -> int -> Word.t -> unit
val vector_of_list : Heap.t -> Word.t list -> Word.t

(** {1 Strings (data space, one character per word)} *)

val make_string : Heap.t -> len:int -> fill:char -> Word.t
val is_string : Heap.t -> Word.t -> bool
val string_length : Heap.t -> Word.t -> int
val string_ref : Heap.t -> Word.t -> int -> char
val string_set : Heap.t -> Word.t -> int -> char -> unit
val string_of_ocaml : Heap.t -> string -> Word.t
val string_to_ocaml : Heap.t -> Word.t -> string

(** {1 Bytevectors} *)

val make_bytevector : Heap.t -> len:int -> fill:int -> Word.t
val is_bytevector : Heap.t -> Word.t -> bool
val bytevector_length : Heap.t -> Word.t -> int
val bytevector_ref : Heap.t -> Word.t -> int -> int
val bytevector_set : Heap.t -> Word.t -> int -> int -> unit

(** {1 Boxes} *)

val make_box : Heap.t -> Word.t -> Word.t
val is_box : Heap.t -> Word.t -> bool
val box_ref : Heap.t -> Word.t -> Word.t
val box_set : Heap.t -> Word.t -> Word.t -> unit

(** {1 Flonums (data space, IEEE bits in two words)} *)

val make_flonum : Heap.t -> float -> Word.t
val is_flonum : Heap.t -> Word.t -> bool
val flonum_value : Heap.t -> Word.t -> float

(** {1 Symbols} *)

val make_symbol : Heap.t -> name:Word.t -> Word.t
(** [name] is a heap string.  Interning lives in {!Symtab}. *)

val is_symbol : Heap.t -> Word.t -> bool
val symbol_name : Heap.t -> Word.t -> Word.t
val symbol_name_string : Heap.t -> Word.t -> string

val symbol_global : Heap.t -> Word.t -> int
(** Global-variable cell id of the symbol, or -1. *)

val symbol_set_global : Heap.t -> Word.t -> int -> unit

(** {1 Records} *)

val make_record : Heap.t -> tag:Word.t -> len:int -> init:Word.t -> Word.t
val is_record : Heap.t -> Word.t -> bool
val record_tag : Heap.t -> Word.t -> Word.t
val record_length : Heap.t -> Word.t -> int
val record_ref : Heap.t -> Word.t -> int -> Word.t
val record_set : Heap.t -> Word.t -> int -> Word.t -> unit

(** {1 Lists} *)

val list_of : Heap.t -> Word.t list -> Word.t
val to_list : Heap.t -> Word.t -> Word.t list
val list_length : Heap.t -> Word.t -> int

(** {1 Hashing and sizing} *)

val eq_hash : Word.t -> int
(** Identity hash: address-based for pointers, hence unstable across
    collections — the instability transport guardians manage. *)

val size_in_words : Heap.t -> Word.t -> int
(** Size of the pointed-to object, header included. *)
