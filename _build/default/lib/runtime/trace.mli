(** Collection tracing: a bounded ring of per-collection records. *)

type record = {
  ordinal : int;
  generation : int;  (** oldest generation collected *)
  words_copied : int;
  objects_copied : int;
  entries_visited : int;
  resurrections : int;
  weak_broken : int;
  ephemerons_broken : int;
  live_words_after : int;
}

type t

val attach : ?capacity:int -> Heap.t -> t
(** Start recording; every collection appends one record, keeping the most
    recent [capacity] (default 64). *)

val detach : t -> unit

val records : t -> record list
(** Oldest first. *)

val total_recorded : t -> int
val pp_record : Format.formatter -> record -> unit
val pp : Format.formatter -> t -> unit
