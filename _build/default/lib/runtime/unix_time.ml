(** Wall-clock time in nanoseconds, for collection pause reporting. *)

let now_ns () = Unix.gettimeofday () *. 1e9
