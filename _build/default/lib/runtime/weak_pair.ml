(** Weak pairs (paper Sections 2 and 4).

    A weak pair is an ordinary pair except that its car is a weak pointer:
    the collector does not trace it, and if the car's referent is reclaimed
    the car is replaced with [#f].  Weak pairs answer [true] to [pair?] and
    are manipulated with the ordinary list operations; they are
    distinguished only by living in the weak-pair space.

    The weak pass runs {e after} the guardian pass, so a weak pointer to an
    object saved by a guardian is not broken — the interaction that makes
    guarded hash tables and transport guardians work. *)

let cons = Obj.weak_cons
let is_weak_pair = Obj.is_weak_pair
let car = Obj.car
let cdr = Obj.cdr
let set_car = Obj.set_car
let set_cdr = Obj.set_cdr

(** True when the car has been broken by the collector.  (Indistinguishable
    from a car that was set to [#f] by the program, as in the paper.) *)
let broken h w = Word.is_false (Obj.car h w)
