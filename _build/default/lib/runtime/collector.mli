(** The generation-based stop-and-copy collector, with the paper's guardian
    and weak-pair passes.

    A collection of generation [g] collects generations [0..g] into the
    target generation chosen by the promotion policy.  Phases: condemn,
    root scan + remembered-set scan, Cheney sweep to a fixpoint, the
    {b guardian pass} (paper Section 4: pend-hold / pend-final /
    kleene-sweep), the {b weak pass} (after the guardian pass, so weak
    pointers to saved objects survive), weak scanners, reclamation. *)

type outcome = {
  generation : int;  (** oldest generation collected *)
  target : int;
  duration_ns : float;
}

val forwarded : Heap.t -> Word.t -> bool
(** True when the word needs no further copying: immediates, pointers into
    generations not being collected, and already-copied objects. *)

val forward_address : Heap.t -> Word.t -> Word.t
(** New location of a forwarded word ([w] itself if it never moved).  Only
    meaningful when [forwarded] holds. *)

val copy : Heap.t -> target:int -> Word.t -> Word.t
(** Copy the object to the target generation if it is an uncopied pointer
    into from-space; returns the (possibly unchanged) word.  Collector
    internal, exposed for tests. *)

val collect : ?weak_pass_first:bool -> Heap.t -> gen:int -> outcome
(** Run a collection of generations [0..gen].

    [weak_pass_first] (default false) swaps the guardian and weak passes;
    it exists {e only} so tests can demonstrate that the paper's order is
    essential (a weak pointer to a guardian-saved object would be broken).

    @raise Invalid_argument if already collecting or [gen] is out of
    range. *)
