(** Heap census: a non-moving reachability analysis over the simulated
    heap, in the spirit of Chez Scheme's [object-counts].

    Traversal follows the collector's own rules — weak cars are not
    traversed, ephemeron values only count once their key has been reached
    (computed as a fixpoint) — so immediately after a {e full} collection,
    the words reachable from the roots plus the protected lists equal the
    heap's live words exactly.  The test suites use that as yet another
    oracle against the copying collector. *)

type counts = {
  mutable pairs : int;
  mutable weak_pairs : int;
  mutable ephemerons : int;
  mutable typed : int array;  (** indexed by {!Obj} type code *)
  mutable objects : int;
  mutable words : int;
}

let empty_counts () =
  {
    pairs = 0;
    weak_pairs = 0;
    ephemerons = 0;
    typed = Array.make 16 0;
    objects = 0;
    words = 0;
  }

type t = {
  reachable : counts;
  heap_live_words : int;  (** total allocated words at census time *)
}

let slack t = t.heap_live_words - t.reachable.words
(** Words allocated but not reachable: garbage awaiting collection (plus
    pad words after zero-field objects). *)

(** Run a census.  [include_protected] (default true) also treats guardian
    registrations (object, representative and tconc) as roots, matching
    what a collection would preserve. *)
let run ?(include_protected = true) h =
  let c = empty_counts () in
  let visited = Hashtbl.create 1024 in
  let pending_ephemerons = ref [] in
  let work = ref [] in
  let push w = work := w :: !work in
  let account_pair kind w =
    c.objects <- c.objects + 1;
    c.words <- c.words + 2;
    (match kind with
    | `Pair -> c.pairs <- c.pairs + 1
    | `Weak -> c.weak_pairs <- c.weak_pairs + 1
    | `Eph -> c.ephemerons <- c.ephemerons + 1);
    ignore w
  in
  let visit w =
    if Word.is_pointer w && not (Hashtbl.mem visited w) then begin
      Hashtbl.add visited w ();
      let si = Heap.info_of_word h w in
      let addr = Word.addr w in
      match si.Heap.space with
      | Space.Pair ->
          account_pair `Pair w;
          push (Heap.load h addr);
          push (Heap.load h (addr + 1))
      | Space.Weak ->
          account_pair `Weak w;
          (* car is weak: not traversed *)
          push (Heap.load h (addr + 1))
      | Space.Ephemeron ->
          account_pair `Eph w;
          pending_ephemerons := w :: !pending_ephemerons
      | Space.Typed | Space.Data ->
          let len = Obj.typed_len h w in
          let code = Obj.typed_code h w in
          c.objects <- c.objects + 1;
          c.words <- c.words + len + 1;
          if code < Array.length c.typed then c.typed.(code) <- c.typed.(code) + 1;
          if si.Heap.space = Space.Typed then
            for i = 0 to len - 1 do
              push (Obj.field h w i)
            done
    end
  in
  let drain () =
    while !work <> [] do
      match !work with
      | [] -> ()
      | w :: rest ->
          work := rest;
          visit w
    done
  in
  (* Roots. *)
  Heap.iter_scanners h ~f:(fun scan ->
      scan (fun w ->
          push w;
          w));
  if include_protected then
    for gen = 0 to Heap.max_generation h do
      let p = h.Heap.protected.(gen) in
      for j = 0 to Vec.Int.length p.Heap.p_objs - 1 do
        push (Vec.Int.get p.Heap.p_objs j);
        push (Vec.Int.get p.Heap.p_reps j);
        push (Vec.Int.get p.Heap.p_tconcs j)
      done
    done;
  drain ();
  (* Ephemeron fixpoint: trace values whose keys have been reached. *)
  let progress = ref true in
  while !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun w ->
        let addr = Word.addr w in
        let key = Heap.load h addr in
        let key_reached = (not (Word.is_pointer key)) || Hashtbl.mem visited key in
        if key_reached then begin
          progress := true;
          push (Heap.load h (addr + 1))
        end
        else still := w :: !still)
      !pending_ephemerons;
    pending_ephemerons := !still;
    drain ()
  done;
  (* Pads after zero-field objects are allocated but never pointed at:
     account them so the live-words comparison is exact. *)
  let pad_words = ref 0 in
  Hashtbl.iter
    (fun w () ->
      if Word.is_typed_ptr w && Obj.typed_len h w = 0 then incr pad_words)
    visited;
  c.words <- c.words + !pad_words;
  { reachable = c; heap_live_words = Heap.live_words h }

let pp ppf t =
  let c = t.reachable in
  Format.fprintf ppf
    "@[<v>reachable objects %d (%d words; heap has %d live words, slack %d)@ \
     pairs %d, weak pairs %d, ephemerons %d@]"
    c.objects c.words t.heap_live_words (slack t) c.pairs c.weak_pairs
    c.ephemerons;
  Array.iteri
    (fun code n -> if n > 0 then Format.fprintf ppf "@ %s: %d" (Obj.type_name code) n)
    c.typed
