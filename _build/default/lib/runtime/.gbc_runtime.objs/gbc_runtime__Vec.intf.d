lib/runtime/vec.mli:
