lib/runtime/heap.mli: Config Space Stats Vec Word
