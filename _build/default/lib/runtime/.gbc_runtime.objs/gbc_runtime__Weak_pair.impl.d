lib/runtime/weak_pair.ml: Obj Word
