lib/runtime/handle.mli: Heap Word
