lib/runtime/space.mli: Format
