lib/runtime/collector.mli: Heap Word
