lib/runtime/word.mli: Format
