lib/runtime/runtime.mli: Collector Heap
