lib/runtime/handle.ml: Fun Heap List
