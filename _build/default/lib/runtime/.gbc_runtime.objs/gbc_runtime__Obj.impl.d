lib/runtime/obj.ml: Heap Int64 List Space String Word
