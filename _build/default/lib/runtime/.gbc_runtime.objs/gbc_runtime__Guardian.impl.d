lib/runtime/guardian.ml: Heap Obj Tconc Word
