lib/runtime/census.ml: Array Format Hashtbl Heap List Obj Space Vec Word
