lib/runtime/vec.ml: Array
