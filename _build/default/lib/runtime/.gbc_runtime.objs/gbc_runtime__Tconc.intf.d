lib/runtime/tconc.mli: Heap Word
