lib/runtime/obj.mli: Heap Word
