lib/runtime/runtime.ml: Collector Config Heap Stats
