lib/runtime/ephemeron.mli: Heap Word
