lib/runtime/unix_time.mli:
