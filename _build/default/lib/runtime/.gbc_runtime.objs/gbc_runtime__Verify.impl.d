lib/runtime/verify.ml: Array Format Hashtbl Heap List Obj Printf Space String Vec Word
