lib/runtime/word.ml: Char Format
