lib/runtime/config.mli:
