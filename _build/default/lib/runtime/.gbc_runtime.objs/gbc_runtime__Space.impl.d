lib/runtime/space.ml: Format
