lib/runtime/ephemeron.ml: Obj Word
