lib/runtime/unix_time.ml: Unix
