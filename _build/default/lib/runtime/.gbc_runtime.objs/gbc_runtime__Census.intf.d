lib/runtime/census.mli: Format Heap
