lib/runtime/guardian.mli: Heap Word
