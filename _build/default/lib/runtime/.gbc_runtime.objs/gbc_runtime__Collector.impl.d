lib/runtime/collector.ml: Array Config Heap List Obj Space Stats Tconc Unix_time Vec Word
