lib/runtime/tconc.ml: Array List Obj Word
