lib/runtime/weak_pair.mli: Heap Word
