lib/runtime/symtab.ml: Hashtbl Heap List Obj Word
