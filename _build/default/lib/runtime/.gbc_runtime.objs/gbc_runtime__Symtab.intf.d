lib/runtime/symtab.mli: Heap Word
