lib/runtime/trace.ml: Array Format Heap List Stats
