lib/runtime/config.ml:
