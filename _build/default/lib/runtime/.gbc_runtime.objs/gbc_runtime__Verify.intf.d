lib/runtime/verify.mli: Heap
