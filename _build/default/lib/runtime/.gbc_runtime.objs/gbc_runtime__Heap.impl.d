lib/runtime/heap.ml: Array Config Fun List Space Stats Vec Word
