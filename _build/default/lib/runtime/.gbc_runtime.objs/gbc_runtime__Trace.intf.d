lib/runtime/trace.mli: Format Heap
