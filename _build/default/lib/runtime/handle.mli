(** Handles: rooted references to heap values for OCaml-side code.

    A raw {!Word.t} is only valid until the next collection; a handle wraps
    a global root cell, so the word it yields is always current.  Handles
    have explicit lifetimes; freeing is idempotent. *)

type t

val create : Heap.t -> Word.t -> t

val get : t -> Word.t
(** @raise Invalid_argument if the handle was freed. *)

val set : t -> Word.t -> unit
(** @raise Invalid_argument if the handle was freed. *)

val free : t -> unit
(** Idempotent. *)

val with_handle : Heap.t -> Word.t -> (t -> 'a) -> 'a
(** Scoped handle: freed on exit, exceptions included. *)

val with_handles : Heap.t -> Word.t list -> (t list -> 'a) -> 'a
