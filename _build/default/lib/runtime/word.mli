(** Tagged machine words of the simulated heap.

    Every slot of the simulated heap, every root, and every value the
    mutator manipulates is a {!t} — an OCaml [int] carrying a Chez-style
    low-bit tag:

    {v
      bit 0 = 0                   fixnum, value = w asr 1
      bits [0..2] = 0b001         pair pointer,  address = w lsr 3
      bits [0..2] = 0b011         typed-object pointer, address = w lsr 3
      bits [0..2] = 0b101         immediate; bits [3..10] = code,
                                  bits [11..] = payload (characters)
    v}

    Weak pairs carry the ordinary pair tag; they are distinguished by the
    {e space} of the segment they live in, exactly as in the paper. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Fixnums} *)

val fixnum_min : int
val fixnum_max : int

val of_fixnum : int -> t
(** Tag an integer.  The value must fit in [fixnum_min .. fixnum_max]. *)

val is_fixnum : t -> bool
val to_fixnum : t -> int

(** {1 Pointers} *)

val pair_tag : int
val typed_tag : int
val imm_tag : int
val tag_mask : int

val is_pair_ptr : t -> bool
(** Pair pointer (ordinary or weak — weakness is a property of the
    segment, not the tag). *)

val is_typed_ptr : t -> bool
(** Pointer to a header-prefixed typed object. *)

val is_pointer : t -> bool
(** Any heap pointer. *)

val pair_ptr : int -> t
val typed_ptr : int -> t

val addr : t -> int
(** Address of a pointer word.  Undefined on non-pointers. *)

val with_addr : t -> int -> t
(** Same tag, new address (used when forwarding). *)

(** {1 Immediates} *)

val imm : int -> int -> t
(** [imm code payload]. *)

val is_imm : t -> bool
val imm_code : t -> int
val imm_payload : t -> int

val code_nil : int
val code_false : int
val code_true : int
val code_eof : int
val code_void : int
val code_unbound : int
val code_char : int

val code_forward : int
(** Reserved for the collector's forwarding marker; never constructed by
    mutator code. *)

val nil : t
val false_ : t
val true_ : t
val eof : t
val void : t
val unbound : t
val forward_marker : t

val of_bool : bool -> t
val of_char : char -> t
val is_char : t -> bool
val to_char : t -> char
val is_nil : t -> bool
val is_false : t -> bool
val is_true : t -> bool

val truthy : t -> bool
(** Scheme truthiness: everything except [#f]. *)

val pp : Format.formatter -> t -> unit
