(** Heap spaces.

    Following the paper (and Chez Scheme's segmented memory system), every
    segment belongs to a space that determines how the collector sweeps it:

    - {!Pair}: two-word cells, both fields traced;
    - {!Weak}: two-word cells whose car is a weak pointer — traced only in
      the cdr, with the car mended or broken in a second pass {e after} the
      guardian pass;
    - {!Typed}: header-prefixed objects whose pointer fields are traced;
    - {!Data}: header-prefixed objects containing no pointers (string and
      bytevector bodies), copied but never traced. *)

type t =
  | Pair
  | Weak
  | Ephemeron
  | Typed
  | Data

let count = 5

let to_index = function
  | Pair -> 0
  | Weak -> 1
  | Ephemeron -> 2
  | Typed -> 3
  | Data -> 4

let of_index = function
  | 0 -> Pair
  | 1 -> Weak
  | 2 -> Ephemeron
  | 3 -> Typed
  | 4 -> Data
  | _ -> invalid_arg "Space.of_index"

let to_string = function
  | Pair -> "pair"
  | Weak -> "weak"
  | Ephemeron -> "ephemeron"
  | Typed -> "typed"
  | Data -> "data"

let pp ppf t = Format.pp_print_string ppf (to_string t)
