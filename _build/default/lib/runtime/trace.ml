(** Collection tracing: a bounded ring of per-collection records for
    diagnosis and reporting (the REPL's [gc-history], the [--gc-stats]
    flag, tests asserting collection behaviour over time).

    Attach with {!attach}; every collection then appends one record.  The
    ring keeps the most recent [capacity] records. *)

type record = {
  ordinal : int;  (** 1-based collection count at the time *)
  generation : int;  (** oldest generation collected *)
  words_copied : int;
  objects_copied : int;
  entries_visited : int;
  resurrections : int;
  weak_broken : int;
  ephemerons_broken : int;
  live_words_after : int;
}

type t = {
  heap : Heap.t;
  ring : record option array;
  mutable next : int;  (** slot for the next record *)
  mutable total : int;
  hook_id : int;
}

let attach ?(capacity = 64) heap =
  if capacity <= 0 then invalid_arg "Trace.attach: capacity";
  let t_ref = ref None in
  let hook_id =
    Heap.add_post_gc_hook heap (fun h ->
        match !t_ref with
        | None -> ()
        | Some t ->
            let s = (Heap.stats h).Stats.last in
            let r =
              {
                ordinal = (Heap.stats h).Stats.total.Stats.collections;
                generation = h.Heap.last_gc_generation;
                words_copied = s.Stats.words_copied;
                objects_copied = s.Stats.objects_copied;
                entries_visited = s.Stats.protected_entries_visited;
                resurrections = s.Stats.guardian_resurrections;
                weak_broken = s.Stats.weak_pointers_broken;
                ephemerons_broken = s.Stats.ephemerons_broken;
                live_words_after = Heap.live_words h;
              }
            in
            t.ring.(t.next) <- Some r;
            t.next <- (t.next + 1) mod Array.length t.ring;
            t.total <- t.total + 1)
  in
  let t =
    { heap; ring = Array.make capacity None; next = 0; total = 0; hook_id }
  in
  t_ref := Some t;
  t

let detach t = Heap.remove_post_gc_hook t.heap t.hook_id

(** Records currently retained, oldest first. *)
let records t =
  let n = Array.length t.ring in
  let out = ref [] in
  (* Slot [next + i] holds the (i+1)-th oldest retained record; walking i
     downward and prepending yields oldest-first. *)
  for i = n - 1 downto 0 do
    match t.ring.((t.next + i) mod n) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  !out

let total_recorded t = t.total

let pp_record ppf r =
  Format.fprintf ppf
    "#%d: copied %d words (%d objects), guardian entries %d, resurrected %d, \
     weak broken %d, ephemerons broken %d, live %d"
    r.ordinal r.words_copied r.objects_copied r.entries_visited r.resurrections
    r.weak_broken r.ephemerons_broken r.live_words_after

let pp ppf t =
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_record r) (records t)
