(** Growable arrays.

    The runtime needs dynamically sized sequences in a few hot places
    (protected lists, root tables, collector work lists).  OCaml 5.1 has no
    [Dynarray], so this small module provides one, both int-specialized
    ([Vec.Int]) and polymorphic ([Vec.Poly]). *)

module Int = struct
  type t = {
    mutable data : int array;
    mutable len : int;
  }

  let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }

  let length t = t.len

  let is_empty t = t.len = 0

  let clear t = t.len <- 0

  let ensure t n =
    if n > Array.length t.data then begin
      let cap = ref (Array.length t.data) in
      while !cap < n do
        cap := !cap * 2
      done;
      let data = Array.make !cap 0 in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  let push t x =
    ensure t (t.len + 1);
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i =
    assert (i >= 0 && i < t.len);
    t.data.(i)

  let set t i x =
    assert (i >= 0 && i < t.len);
    t.data.(i) <- x

  let pop t =
    assert (t.len > 0);
    t.len <- t.len - 1;
    t.data.(t.len)

  let truncate t n =
    assert (n >= 0 && n <= t.len);
    t.len <- n

  let iter t ~f =
    for i = 0 to t.len - 1 do
      f t.data.(i)
    done

  let iteri t ~f =
    for i = 0 to t.len - 1 do
      f i t.data.(i)
    done

  let to_list t =
    let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
    loop (t.len - 1) []
end

module Poly = struct
  type 'a t = {
    mutable data : 'a array;
    mutable len : int;
    dummy : 'a;
  }

  let create ?(capacity = 16) ~dummy () =
    { data = Array.make (max capacity 1) dummy; len = 0; dummy }

  let length t = t.len

  let is_empty t = t.len = 0

  let clear t =
    (* Release references so the host GC can reclaim elements. *)
    Array.fill t.data 0 t.len t.dummy;
    t.len <- 0

  let ensure t n =
    if n > Array.length t.data then begin
      let cap = ref (Array.length t.data) in
      while !cap < n do
        cap := !cap * 2
      done;
      let data = Array.make !cap t.dummy in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  let push t x =
    ensure t (t.len + 1);
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i =
    assert (i >= 0 && i < t.len);
    t.data.(i)

  let set t i x =
    assert (i >= 0 && i < t.len);
    t.data.(i) <- x

  let pop t =
    assert (t.len > 0);
    t.len <- t.len - 1;
    let x = t.data.(t.len) in
    t.data.(t.len) <- t.dummy;
    x

  let iter t ~f =
    for i = 0 to t.len - 1 do
      f t.data.(i)
    done

  let to_list t =
    let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
    loop (t.len - 1) []
end
