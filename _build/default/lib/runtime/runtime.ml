(** Collection scheduling: safepoints, the generation schedule, and the
    collect-request handler (paper Section 3).

    Mutator allocation itself never collects; instead, code that holds no
    unrooted words calls {!safepoint}, and once enough generation-0
    allocation has accumulated a {e collect request} fires.  By default the
    request collects according to the radix schedule (generation [g] every
    [radix]{^ g} requests); a program may install its own collect-request
    handler — e.g. to run [close-dropped-ports] after each collection, as in
    the paper — in which case the handler is responsible for calling
    {!collect_auto} (or not). *)

(** Collect generations [0..gen] immediately. *)
let collect ?gen h =
  let g = match gen with Some g -> g | None -> 0 in
  Collector.collect h ~gen:g

(** Oldest generation due for collection at request number [count]. *)
let scheduled_generation ~radix ~max_generation count =
  let rec loop g step =
    if g >= max_generation then max_generation
    else if count mod (step * radix) = 0 then loop (g + 1) (step * radix)
    else g
  in
  loop 0 1

(** Collect according to the generation schedule, advancing the request
    counter: generation 0 every time, each older generation exponentially
    less often. *)
let collect_auto h =
  let cfg = Heap.config h in
  h.Heap.collect_count <- h.Heap.collect_count + 1;
  let gen =
    scheduled_generation ~radix:cfg.Config.collect_radix
      ~max_generation:cfg.Config.max_generation h.Heap.collect_count
  in
  Collector.collect h ~gen

let set_collect_request_handler h handler =
  h.Heap.collect_request_handler <- handler

(** Fire a collect request now: run the installed handler, or [collect_auto]
    when none is installed. *)
let request_collect h =
  match h.Heap.collect_request_handler with
  | Some handler -> handler h
  | None -> ignore (collect_auto h)

(** Declare a safepoint: no unrooted heap words are live in the caller.  If
    enough allocation has accumulated, serve a collect request. *)
let safepoint h =
  let stats = Heap.stats h in
  if
    stats.Stats.words_allocated_since_gc
    >= (Heap.config h).Config.gen0_trigger_words
    && not h.Heap.in_collection
  then request_collect h
