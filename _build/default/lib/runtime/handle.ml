(** Handles: rooted references to heap values for OCaml-side code.

    A raw {!Word.t} is only valid until the next collection; a handle wraps
    a global root cell, so the word it yields is always current.  Handles
    have explicit lifetimes ([free], or the scoped [with_handle] /
    [with_handles]); freeing is idempotent.  Reading a freed handle is a
    programming error and raises. *)

type t = { heap : Heap.t; cell : int; mutable freed : bool }

let create heap w = { heap; cell = Heap.new_cell heap w; freed = false }

let get t =
  if t.freed then invalid_arg "Handle.get: handle already freed";
  Heap.read_cell t.heap t.cell

let set t w =
  if t.freed then invalid_arg "Handle.set: handle already freed";
  Heap.write_cell t.heap t.cell w

let free t =
  if not t.freed then begin
    t.freed <- true;
    Heap.free_cell t.heap t.cell
  end

let with_handle heap w f =
  let t = create heap w in
  Fun.protect ~finally:(fun () -> free t) (fun () -> f t)

let with_handles heap ws f =
  let ts = List.map (create heap) ws in
  Fun.protect ~finally:(fun () -> List.iter free ts) (fun () -> f ts)
