(** Eq hash tables: address-hashed tables and the rehashing problem
    (paper Section 3).

    A copying collector changes addresses, so eq tables must rehash.
    [`Full_rehash] re-buckets everything after any collection; [`Transport]
    re-buckets only the keys a {!Transport_guardian} reports as possibly
    moved — proportional to moved keys, not table size (experiment E4).

    Entries are strong; for the weak, self-cleaning table see
    {!Guarded_table}. *)

open Gbc_runtime

type strategy = [ `Full_rehash | `Transport ]
type t

val create : Heap.t -> strategy:strategy -> size:int -> t
val dispose : t -> unit
val lookup : t -> Word.t -> Word.t option
val mem : t -> Word.t -> bool
val set : t -> Word.t -> Word.t -> unit
val remove : t -> Word.t -> unit
val count : t -> int

val rehash_work : t -> int
(** Entries re-bucketed since creation (the E4 work counter). *)

val refreshes : t -> int
(** Collections noticed and compensated for. *)
