(** Guarded ports: the paper's Section 3 example, transliterated.

    A dedicated port guardian watches every port opened through the guarded
    open operations; {!close_dropped_ports} retrieves ports proven
    inaccessible and closes them, flushing unwritten output first.  Dropped
    ports are closed whenever a guarded open is performed or on
    {!exit} — or after every collection once {!install_collect_handler} is
    used, mirroring the paper's [collect-request-handler] idiom. *)

open Gbc_runtime

type t = {
  ctx : Ctx.t;
  guardian : Handle.t;
  mutable closed_by_guardian : int;
  mutable flushed_bytes : int;
}

let create (ctx : Ctx.t) =
  { ctx; guardian = Handle.create ctx.heap (Guardian.make ctx.heap);
    closed_by_guardian = 0; flushed_bytes = 0 }

let dispose t = Handle.free t.guardian

(** Close every port proven inaccessible since the last call: flush and
    close output ports, close input ports (paper's
    [close-dropped-ports]). *)
let rec close_dropped_ports t =
  let h = t.ctx.Ctx.heap in
  match Guardian.retrieve h (Handle.get t.guardian) with
  | None -> ()
  | Some p ->
      if not (Port.is_closed h p) then begin
        t.flushed_bytes <- t.flushed_bytes + Port.buffered h p;
        Port.close t.ctx p;
        t.closed_by_guardian <- t.closed_by_guardian + 1
      end;
      close_dropped_ports t

let guard t p =
  let h = t.ctx.Ctx.heap in
  Guardian.register h (Handle.get t.guardian) p

(** [guarded-open-input-file]: close dropped ports, then open and guard. *)
let open_input t file_name =
  close_dropped_ports t;
  let p = Port.open_input t.ctx file_name in
  guard t p;
  p

(** [guarded-open-output-file]. *)
let open_output t file_name =
  close_dropped_ports t;
  let p = Port.open_output t.ctx file_name in
  guard t p;
  p

(** [guarded-exit]: final clean-up before leaving the system. *)
let exit t = close_dropped_ports t

(** Install a collect-request handler that collects and then closes dropped
    ports — the paper's

    {v (collect-request-handler (lambda () (collect) (close-dropped-ports))) v} *)
let install_collect_handler t =
  Runtime.set_collect_request_handler t.ctx.Ctx.heap
    (Some
       (fun h ->
         ignore (Runtime.collect_auto h);
         close_dropped_ports t))

let closed_by_guardian t = t.closed_by_guardian
let flushed_bytes t = t.flushed_bytes
