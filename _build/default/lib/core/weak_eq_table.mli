(** Weak eq tables: address-hashed key→value maps with ephemeron entries —
    keys are not kept alive, and a value referencing its own key does not
    leak.  Rehashes on collection epochs; dead entries are pruned lazily. *)

open Gbc_runtime

type t

val create : Heap.t -> size:int -> t
val dispose : t -> unit
val lookup : t -> Word.t -> Word.t option
val set : t -> Word.t -> Word.t -> unit
val remove : t -> Word.t -> unit

val prune_all : t -> unit
(** Drop every broken entry now, making {!count} exact. *)

val count : t -> int
(** Upper bound on live associations ({!prune_all} makes it exact). *)
