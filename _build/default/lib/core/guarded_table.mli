(** Guarded hash tables: the paper's Figure 1.

    A hash table whose key/value associations are dropped automatically once
    a key becomes inaccessible outside the table.  Buckets hold weak pairs,
    so the table does not retain keys; each inserted key is registered with
    the table's guardian, and every access first drains the guardian,
    removing the associations of keys proven inaccessible — cost
    proportional to the keys that died, never a scan of the table.

    The hash function must be stable across collections (hash key
    {e contents}); for address-based eq hashing see {!Eq_table}. *)

open Gbc_runtime

type t

val create :
  ?guarded:bool -> Heap.t -> hash:(Heap.t -> Word.t -> int) -> size:int -> t
(** [guarded:false] omits the guardian machinery (Figure 1 with the shaded
    lines removed) — the leaking baseline of experiment E3. *)

val dispose : t -> unit

val access : t -> Word.t -> Word.t -> Word.t
(** Figure 1 semantics: the value already associated with the key, or the
    given value after inserting it. *)

val lookup : t -> Word.t -> Word.t option
val set : t -> Word.t -> Word.t -> unit
val remove : t -> Word.t -> unit

val expunge : t -> unit
(** Remove the associations of keys proven inaccessible (done automatically
    by every access). *)

val count : t -> int
(** Associations currently held (live + not-yet-expunged dead). *)

val expunged : t -> int
(** Dead associations removed so far. *)

val expunge_steps : t -> int
(** Bucket cells traversed while removing (the E2 work counter). *)

val stale_count : t -> int
(** Associations whose weak key broke but whose entry still sits in a
    bucket — the unguarded variant's leak counter. *)
