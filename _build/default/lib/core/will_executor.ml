(** Will executors: Racket's finalization interface, built on guardians.

    A will executor associates an object with a {e will} procedure; once
    the collector proves the object inaccessible, the will becomes ready,
    and {!execute} runs one ready will — applying the procedure to the
    saved object — under full program control.  This is exactly the
    guardian discipline with the clean-up action attached at registration
    time, demonstrating that guardians subsume will-style interfaces (the
    paper's Section 5 discussion).

    Implementation: a guardian yields the saved objects; an ephemeron-keyed
    {!Weak_eq_table} maps each watched object to its wills without keeping
    the object alive.  Multiple wills on one object run newest-first
    (Racket's order), one per ready event. *)

open Gbc_runtime

type will = Heap.t -> Word.t -> unit

type t = {
  heap : Heap.t;
  guardian : Handle.t;
  ids : Weak_eq_table.t;  (** object -> heap list of will-id fixnums *)
  wills : (int, will) Hashtbl.t;
  mutable next_id : int;
  mutable executed : int;
}

let create heap =
  {
    heap;
    guardian = Handle.create heap (Guardian.make heap);
    ids = Weak_eq_table.create heap ~size:64;
    wills = Hashtbl.create 16;
    next_id = 0;
    executed = 0;
  }

let dispose t =
  Handle.free t.guardian;
  Weak_eq_table.dispose t.ids

(** Attach [will] to [obj]: it will run, applied to the saved object, at
    some {!execute} after the object is proven inaccessible. *)
let register t obj ~will =
  let h = t.heap in
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.add t.wills id will;
  Heap.with_cell h obj (fun c ->
      let existing =
        match Weak_eq_table.lookup t.ids (Heap.read_cell h c) with
        | Some l -> l
        | None -> Word.nil
      in
      let l = Obj.cons h (Word.of_fixnum id) existing in
      Weak_eq_table.set t.ids (Heap.read_cell h c) l);
  Guardian.register h (Handle.get t.guardian) obj

(** Run one ready will, if any; returns whether one ran.  An object with N
    wills is registered N times with the guardian, so it is retrieved once
    per will; wills run newest first. *)
let execute t =
  let h = t.heap in
  match Guardian.retrieve h (Handle.get t.guardian) with
  | None -> false
  | Some obj -> (
      match Weak_eq_table.lookup t.ids obj with
      | None -> false
      | Some ids when Word.is_nil ids -> false
      | Some ids ->
          let id = Word.to_fixnum (Obj.car h ids) in
          let rest = Obj.cdr h ids in
          let will = Hashtbl.find t.wills id in
          Hashtbl.remove t.wills id;
          Heap.with_cell h obj (fun c ->
              Weak_eq_table.set t.ids (Heap.read_cell h c) rest;
              t.executed <- t.executed + 1;
              will h (Heap.read_cell h c));
          true)

(** Run every ready will; returns how many ran. *)
let execute_all t =
  let n = ref 0 in
  while execute t do
    incr n
  done;
  !n

let executed t = t.executed
let pending_wills t = Hashtbl.length t.wills
