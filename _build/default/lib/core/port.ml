(** Ports: buffered character I/O objects over the virtual filesystem.

    A port is a typed heap object encapsulating a file descriptor, a buffer,
    and status flags — the paper's example of an object whose reclamation
    must trigger clean-up (flush unwritten data, close the descriptor).
    Nothing here closes ports automatically; that is {!Guarded_port}'s job. *)

open Gbc_runtime

let buffer_size = 64

(* Field layout. *)
let f_fd = 0
let f_flags = 1
let f_buffer = 2
let f_buf_used = 3
let f_name = 4
let num_fields = 5

let flag_input = 1
let flag_output = 2
let flag_closed = 4

exception Closed_port

let is_port h w = Obj.has_code h w Obj.code_port

let flags h p = Word.to_fixnum (Obj.field h p f_flags)
let set_flags h p f = Obj.set_field h p f_flags (Word.of_fixnum f)
let fd h p = Word.to_fixnum (Obj.field h p f_fd)
let is_input h p = flags h p land flag_input <> 0
let is_output h p = flags h p land flag_output <> 0
let is_closed h p = flags h p land flag_closed <> 0
let name h p = Obj.string_to_ocaml h (Obj.field h p f_name)
let buffered h p = Word.to_fixnum (Obj.field h p f_buf_used)

let make (ctx : Ctx.t) ~file_name ~mode =
  let h = ctx.heap in
  let vfs_mode, flag =
    match mode with
    | `Input -> (Gbc_vfs.Vfs.Read, flag_input)
    | `Output -> (Gbc_vfs.Vfs.Write, flag_output)
    | `Append -> (Gbc_vfs.Vfs.Append, flag_output)
  in
  let fd = Gbc_vfs.Vfs.openfile ctx.vfs file_name vfs_mode in
  let p = Obj.make_typed h ~code:Obj.code_port ~len:num_fields ~init:Word.nil () in
  Obj.set_field h p f_fd (Word.of_fixnum fd);
  Obj.set_field h p f_flags (Word.of_fixnum flag);
  Obj.set_field h p f_buffer (Obj.make_string h ~len:buffer_size ~fill:' ');
  Obj.set_field h p f_buf_used (Word.of_fixnum 0);
  Obj.set_field h p f_name (Obj.string_of_ocaml h file_name);
  p

let open_input ctx file_name = make ctx ~file_name ~mode:`Input
let open_output ctx file_name = make ctx ~file_name ~mode:`Output
let open_append ctx file_name = make ctx ~file_name ~mode:`Append

let check_open h p = if is_closed h p then raise Closed_port

(** Flush buffered output to the backing file.  A no-op on closed ports
    (their buffer was flushed by [close]), so clean-up code may flush
    unconditionally, as the paper's [close-dropped-ports] does. *)
let flush (ctx : Ctx.t) p =
  let h = ctx.heap in
  if is_output h p && not (is_closed h p) then begin
    let used = buffered h p in
    if used > 0 then begin
      let buf = Obj.field h p f_buffer in
      let data = String.init used (fun i -> Obj.string_ref h buf i) in
      Gbc_vfs.Vfs.write ctx.vfs (fd h p) data;
      Obj.set_field h p f_buf_used (Word.of_fixnum 0)
    end
  end

let write_char (ctx : Ctx.t) p c =
  let h = ctx.heap in
  check_open h p;
  if not (is_output h p) then invalid_arg "Port.write_char: not an output port";
  let used = buffered h p in
  Obj.string_set h (Obj.field h p f_buffer) used c;
  Obj.set_field h p f_buf_used (Word.of_fixnum (used + 1));
  if used + 1 >= buffer_size then flush ctx p

let write_string ctx p s = String.iter (write_char ctx p) s

let read_char (ctx : Ctx.t) p =
  let h = ctx.heap in
  check_open h p;
  if not (is_input h p) then invalid_arg "Port.read_char: not an input port";
  Gbc_vfs.Vfs.read_char ctx.vfs (fd h p)

let peek_char (ctx : Ctx.t) p =
  let h = ctx.heap in
  check_open h p;
  if not (is_input h p) then invalid_arg "Port.peek_char: not an input port";
  Gbc_vfs.Vfs.peek_char ctx.vfs (fd h p)

(** Unconsumed input, without consuming it (used by [read]). *)
let remaining_input (ctx : Ctx.t) p =
  let h = ctx.heap in
  check_open h p;
  if not (is_input h p) then invalid_arg "Port.remaining_input: not an input port";
  Gbc_vfs.Vfs.remaining ctx.vfs (fd h p)

let advance_input (ctx : Ctx.t) p n =
  let h = ctx.heap in
  check_open h p;
  Gbc_vfs.Vfs.advance ctx.vfs (fd h p) n

let close (ctx : Ctx.t) p =
  let h = ctx.heap in
  if not (is_closed h p) then begin
    if is_output h p then flush ctx p;
    Gbc_vfs.Vfs.close ctx.vfs (fd h p);
    set_flags h p (flags h p lor flag_closed)
  end
