(** Ports: buffered character I/O objects over the virtual filesystem —
    the paper's example of an object whose reclamation must trigger
    clean-up.  Nothing here closes ports automatically; that is
    {!Guarded_port}'s job. *)

open Gbc_runtime

exception Closed_port

val buffer_size : int

val is_port : Heap.t -> Word.t -> bool
val open_input : Ctx.t -> string -> Word.t
val open_output : Ctx.t -> string -> Word.t
val open_append : Ctx.t -> string -> Word.t
val is_input : Heap.t -> Word.t -> bool
val is_output : Heap.t -> Word.t -> bool
val is_closed : Heap.t -> Word.t -> bool
val name : Heap.t -> Word.t -> string
val fd : Heap.t -> Word.t -> int

val buffered : Heap.t -> Word.t -> int
(** Bytes sitting in the output buffer, not yet flushed. *)

val flush : Ctx.t -> Word.t -> unit
val write_char : Ctx.t -> Word.t -> char -> unit
val write_string : Ctx.t -> Word.t -> string -> unit
val read_char : Ctx.t -> Word.t -> char option
val peek_char : Ctx.t -> Word.t -> char option

val remaining_input : Ctx.t -> Word.t -> string
(** Unconsumed input, without consuming it (used by the Scheme [read]). *)

val advance_input : Ctx.t -> Word.t -> int -> unit

val close : Ctx.t -> Word.t -> unit
(** Flushes output ports first; closing twice is harmless. *)
