(** Free-list recycling of expensive objects via guardians (paper §1).

    A pool hands out objects and registers each with a guardian; when the
    program drops one, the collector proves it inaccessible, the guardian
    returns it, and the pool recycles it instead of building a new one. *)

open Gbc_runtime

type t

val create :
  ?capacity:int -> ?reinit:(Heap.t -> Word.t -> unit) -> Heap.t ->
  build:(Heap.t -> Word.t) -> t
(** [capacity] bounds the free list (reclaimed objects beyond it are left
    to die); [reinit] scrubs recycled objects before reuse. *)

val dispose : t -> unit

val acquire : t -> Word.t
(** Recycled if available, freshly built otherwise; always registered, so
    dropping it returns it to the pool at the next {!drain}/{!acquire}. *)

val drain : t -> unit
(** Move reclaimed objects onto the free list (also done by every
    acquire). *)

val free_length : t -> int
val built : t -> int
val recycled : t -> int
val discarded : t -> int
