(** Will executors: Racket's finalization interface, built on guardians —
    demonstrating that guardians subsume will-style mechanisms (paper §5).

    A will associates a clean-up procedure with an object at registration
    time; it becomes ready once the object is proven inaccessible, and
    {!execute} runs one ready will under full program control. *)

open Gbc_runtime

type will = Heap.t -> Word.t -> unit
type t

val create : Heap.t -> t
val dispose : t -> unit

val register : t -> Word.t -> will:will -> unit
(** Multiple wills may be attached to one object; each runs exactly once,
    newest first. *)

val execute : t -> bool
(** Run one ready will (applying it to the saved object); false when none
    is ready.  Never blocks, never collects. *)

val execute_all : t -> int

val executed : t -> int
val pending_wills : t -> int
(** Wills registered but not yet run. *)
