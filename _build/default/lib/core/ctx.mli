(** Execution context: a simulated heap plus the virtual filesystem ports
    are backed by. *)

open Gbc_runtime

type t = {
  heap : Heap.t;
  vfs : Gbc_vfs.Vfs.t;
}

val create : ?config:Config.t -> ?fd_limit:int -> unit -> t
val heap : t -> Heap.t
val vfs : t -> Gbc_vfs.Vfs.t
