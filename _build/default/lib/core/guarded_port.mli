(** Guarded ports: the paper's Section 3 example, transliterated.

    A dedicated port guardian watches every port opened through the guarded
    open operations; {!close_dropped_ports} retrieves ports proven
    inaccessible and closes them, flushing unwritten output first. *)

type t

val create : Ctx.t -> t
val dispose : t -> unit

val close_dropped_ports : t -> unit
(** The paper's [close-dropped-ports]. *)

val guard : t -> Gbc_runtime.Word.t -> unit
(** Register an existing port with the port guardian. *)

val open_input : t -> string -> Gbc_runtime.Word.t
(** [guarded-open-input-file]: closes dropped ports, then opens and
    guards. *)

val open_output : t -> string -> Gbc_runtime.Word.t

val exit : t -> unit
(** [guarded-exit]: final clean-up. *)

val install_collect_handler : t -> unit
(** Install the paper's collect-request handler:
    [(lambda () (collect) (close-dropped-ports))]. *)

val closed_by_guardian : t -> int
val flushed_bytes : t -> int
