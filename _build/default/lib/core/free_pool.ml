(** Free-list recycling of expensive objects (paper Section 1).

    "Sometimes it is useful to maintain an internal free list of objects
    that are expensive to allocate or initialize" — e.g. large bitmaps whose
    contents are fixed once initialized.  A pool hands out objects and
    registers each with a guardian; when the program drops one, the
    collector proves it inaccessible and the guardian returns it, and the
    pool recycles it instead of building a new one.  Registration is
    consumed by retrieval, so recycled objects are simply re-registered on
    the next acquire. *)

open Gbc_runtime

type t = {
  heap : Heap.t;
  guardian : Handle.t;
  free : Handle.t;  (** heap list of recycled objects, ready for reuse *)
  capacity : int;
  build : Heap.t -> Word.t;
  reinit : (Heap.t -> Word.t -> unit) option;
  mutable built : int;  (** objects constructed from scratch *)
  mutable recycled : int;  (** acquisitions served from the free list *)
  mutable discarded : int;  (** reclaimed objects beyond capacity *)
}

let create ?(capacity = max_int) ?reinit heap ~build =
  {
    heap;
    guardian = Handle.create heap (Guardian.make heap);
    free = Handle.create heap Word.nil;
    capacity;
    build;
    reinit;
    built = 0;
    recycled = 0;
    discarded = 0;
  }

let dispose t =
  Handle.free t.guardian;
  Handle.free t.free

let free_length t = Obj.list_length t.heap (Handle.get t.free)

(** Move objects the collector has proven inaccessible onto the free list,
    up to capacity; the rest are left to be reclaimed for real. *)
let drain t =
  let h = t.heap in
  let rec loop () =
    match Guardian.retrieve h (Handle.get t.guardian) with
    | None -> ()
    | Some obj ->
        if free_length t < t.capacity then
          Handle.set t.free (Obj.cons h obj (Handle.get t.free))
        else t.discarded <- t.discarded + 1;
        loop ()
  in
  loop ()

(** Get an object: recycled if one is available, freshly built otherwise.
    The object is registered with the pool's guardian, so dropping it
    returns it to the pool at the next drain. *)
let acquire t =
  let h = t.heap in
  drain t;
  let obj =
    match Handle.get t.free with
    | l when Word.is_nil l ->
        t.built <- t.built + 1;
        t.build h
    | l ->
        let obj = Obj.car h l in
        Handle.set t.free (Obj.cdr h l);
        t.recycled <- t.recycled + 1;
        (match t.reinit with Some f -> f h obj | None -> ());
        obj
  in
  Guardian.register h (Handle.get t.guardian) obj;
  obj

let built t = t.built
let recycled t = t.recycled
let discarded t = t.discarded
