(** Weak eq tables: address-hashed key→value maps whose entries are
    ephemerons, so the table neither keeps its keys alive nor leaks when a
    value references its own key (the weak-pair pitfall).

    Rehashing uses the full-rehash-on-epoch-change strategy (see
    {!Eq_table} for the transport-guardian alternative); entries whose key
    died read as broken ephemerons and are pruned as buckets are walked. *)

open Gbc_runtime

type t = {
  heap : Heap.t;
  buckets : Handle.t;
  size : int;
  mutable epoch : int;
  mutable count : int;  (** upper bound: broken entries are pruned lazily *)
}

let create heap ~size =
  if size <= 0 then invalid_arg "Weak_eq_table.create: size";
  {
    heap;
    buckets = Handle.create heap (Obj.make_vector heap ~len:size ~init:Word.nil);
    size;
    epoch = Heap.gc_epoch heap;
    count = 0;
  }

let dispose t = Handle.free t.buckets

let hash_of t key = Obj.eq_hash key mod t.size

(* Remove broken entries from a bucket list, updating the count. *)
let rec prune t bucket =
  let h = t.heap in
  if Word.is_nil bucket then Word.nil
  else begin
    let entry = Obj.car h bucket in
    let rest = prune t (Obj.cdr h bucket) in
    if Ephemeron.broken h entry then begin
      t.count <- t.count - 1;
      rest
    end
    else begin
      Obj.set_cdr h bucket rest;
      bucket
    end
  end

let refresh t =
  let h = t.heap in
  if Heap.gc_epoch h <> t.epoch then begin
    t.epoch <- Heap.gc_epoch h;
    let v = Handle.get t.buckets in
    let entries = ref [] in
    for i = 0 to t.size - 1 do
      let rec loop bucket =
        if not (Word.is_nil bucket) then begin
          let entry = Obj.car h bucket in
          if Ephemeron.broken h entry then t.count <- t.count - 1
          else entries := entry :: !entries;
          loop (Obj.cdr h bucket)
        end
      in
      loop (Obj.vector_ref h v i);
      Obj.vector_set h v i Word.nil
    done;
    List.iter
      (fun entry ->
        let i = hash_of t (Ephemeron.key h entry) in
        Obj.vector_set h v i (Obj.cons h entry (Obj.vector_ref h v i)))
      !entries
  end

let find_entry t key =
  let h = t.heap in
  let v = Handle.get t.buckets in
  let i = hash_of t key in
  Obj.vector_set h v i (prune t (Obj.vector_ref h v i));
  let rec loop bucket =
    if Word.is_nil bucket then None
    else begin
      let entry = Obj.car h bucket in
      if Word.equal (Ephemeron.key h entry) key then Some entry
      else loop (Obj.cdr h bucket)
    end
  in
  loop (Obj.vector_ref h v i)

let lookup t key =
  refresh t;
  Option.map (fun e -> Ephemeron.value t.heap e) (find_entry t key)

let set t key value =
  refresh t;
  let h = t.heap in
  match find_entry t key with
  | Some entry -> Ephemeron.set_value h entry value
  | None ->
      Heap.with_cell h key (fun kc ->
          Heap.with_cell h value (fun vc ->
              let entry =
                Ephemeron.cons h (Heap.read_cell h kc) (Heap.read_cell h vc)
              in
              let v = Handle.get t.buckets in
              let i = hash_of t (Heap.read_cell h kc) in
              Obj.vector_set h v i (Obj.cons h entry (Obj.vector_ref h v i));
              t.count <- t.count + 1))

let remove t key =
  refresh t;
  let h = t.heap in
  match find_entry t key with
  | None -> ()
  | Some entry ->
      (* Mark broken by hand; the next prune drops the cell. *)
      Ephemeron.set_key h entry Word.false_;
      Ephemeron.set_value h entry Word.false_

(** Drop every broken entry now (normally they are pruned lazily as
    buckets are touched), making {!count} exact. *)
let prune_all t =
  refresh t;
  let h = t.heap in
  let v = Handle.get t.buckets in
  for i = 0 to t.size - 1 do
    Obj.vector_set h v i (prune t (Obj.vector_ref h v i))
  done

(** Upper bound on live associations (dead ones are pruned as buckets are
    touched; {!prune_all} makes it exact). *)
let count t = t.count
