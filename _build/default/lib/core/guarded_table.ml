(** Guarded hash tables: the paper's Figure 1.

    A hash table whose key/value associations are dropped automatically once
    a key becomes inaccessible outside the table.  Buckets hold {e weak}
    pairs [(key . value)], so the table does not keep keys alive; each
    inserted key is also registered with the table's guardian, and every
    access first drains the guardian, removing the associations of keys the
    collector has proven inaccessible.  The mutator therefore pays O(dead
    keys) — never a scan of the whole table — which is experiment E2.

    The caller supplies the hash function (paper's [make-guarded-hash-table
    hash size]); it must be stable across collections (hash the key's
    {e contents}, or use fixnum/symbol keys).  For address-based eq hashing
    with its rehashing problem, see {!Eq_table}. *)

open Gbc_runtime

type t = {
  heap : Heap.t;
  buckets : Handle.t;  (** heap vector of association lists *)
  size : int;
  guardian : Handle.t;
  hash : Heap.t -> Word.t -> int;
  mutable count : int;
  mutable expunged : int;  (** dead associations removed so far *)
  mutable expunge_steps : int;  (** list cells traversed while removing *)
  guarded : bool;
}

let create ?(guarded = true) heap ~hash ~size =
  if size <= 0 then invalid_arg "Guarded_table.create: size";
  {
    heap;
    buckets = Handle.create heap (Obj.make_vector heap ~len:size ~init:Word.nil);
    size;
    guardian = Handle.create heap (Guardian.make heap);
    hash;
    count = 0;
    expunged = 0;
    expunge_steps = 0;
    guarded;
  }

let dispose t =
  Handle.free t.buckets;
  Handle.free t.guardian

let bucket_index t key =
  let i = t.hash t.heap key mod t.size in
  if i < 0 then i + t.size else i

(* assq: first weak pair in [bucket] whose car is eq to [key]. *)
let rec assq h key bucket =
  if Word.is_nil bucket then None
  else begin
    let entry = Obj.car h bucket in
    if Word.equal (Obj.car h entry) key then Some entry
    else assq h key (Obj.cdr h bucket)
  end

(* remq: [bucket] without the association [entry] (eq comparison). *)
let remq t h entry bucket =
  let rec loop bucket =
    t.expunge_steps <- t.expunge_steps + 1;
    if Word.is_nil bucket then Word.nil
    else begin
      let e = Obj.car h bucket in
      if Word.equal e entry then Obj.cdr h bucket
      else Obj.cons h e (loop (Obj.cdr h bucket))
    end
  in
  loop bucket

(** Remove the associations of keys proven inaccessible (the shaded loop of
    Figure 1).  Called automatically by every access. *)
let expunge t =
  let h = t.heap in
  let rec loop () =
    match Guardian.retrieve h (Handle.get t.guardian) with
    | None -> ()
    | Some z ->
        let v = Handle.get t.buckets in
        let i = bucket_index t z in
        let bucket = Obj.vector_ref h v i in
        (match assq h z bucket with
        | Some entry ->
            Obj.vector_set h v i (remq t h entry bucket);
            t.count <- t.count - 1;
            t.expunged <- t.expunged + 1
        | None -> () (* key was re-inserted or already removed *));
        loop ()
  in
  if t.guarded then loop ()

(** Figure 1 semantics: return the value already associated with [key], or
    associate [value] with it and return [value]. *)
let access t key value =
  expunge t;
  let h = t.heap in
  let v = Handle.get t.buckets in
  let i = bucket_index t key in
  let bucket = Obj.vector_ref h v i in
  match assq h key bucket with
  | Some entry -> Obj.cdr h entry
  | None ->
      let entry = Weak_pair.cons h key value in
      Obj.vector_set h v i (Obj.cons h entry bucket);
      if t.guarded then Guardian.register h (Handle.get t.guardian) key;
      t.count <- t.count + 1;
      value

(** Look [key] up without inserting. *)
let lookup t key =
  expunge t;
  let h = t.heap in
  let bucket = Obj.vector_ref h (Handle.get t.buckets) (bucket_index t key) in
  match assq h key bucket with
  | Some entry -> Some (Obj.cdr h entry)
  | None -> None

(** Associate [key] with [value], replacing any existing association. *)
let set t key value =
  expunge t;
  let h = t.heap in
  let v = Handle.get t.buckets in
  let i = bucket_index t key in
  let bucket = Obj.vector_ref h v i in
  match assq h key bucket with
  | Some entry -> Weak_pair.set_cdr h entry value
  | None ->
      let entry = Weak_pair.cons h key value in
      Obj.vector_set h v i (Obj.cons h entry bucket);
      if t.guarded then Guardian.register h (Handle.get t.guardian) key;
      t.count <- t.count + 1

(** Remove [key]'s association, if any. *)
let remove t key =
  expunge t;
  let h = t.heap in
  let v = Handle.get t.buckets in
  let i = bucket_index t key in
  let bucket = Obj.vector_ref h v i in
  match assq h key bucket with
  | Some entry ->
      Obj.vector_set h v i (remq t h entry bucket);
      t.count <- t.count - 1
  | None -> ()

(** Associations currently in the table (live and not-yet-expunged dead). *)
let count t = t.count

let expunged t = t.expunged
let expunge_steps t = t.expunge_steps

(** Associations whose key has been collected but whose entry still sits in
    a bucket — nonzero only between a collection and the next access. *)
let stale_count t =
  let h = t.heap in
  let v = Handle.get t.buckets in
  let stale = ref 0 in
  for i = 0 to t.size - 1 do
    let rec loop bucket =
      if not (Word.is_nil bucket) then begin
        let entry = Obj.car h bucket in
        if Word.is_false (Obj.car h entry) then incr stale;
        loop (Obj.cdr h bucket)
      end
    in
    loop (Obj.vector_ref h v i)
  done;
  !stale
