lib/core/guarded_port.ml: Ctx Gbc_runtime Guardian Handle Port Runtime
