lib/core/weak_eq_table.ml: Ephemeron Gbc_runtime Handle Heap List Obj Option Word
