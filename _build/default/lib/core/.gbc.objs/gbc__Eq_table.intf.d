lib/core/eq_table.mli: Gbc_runtime Heap Word
