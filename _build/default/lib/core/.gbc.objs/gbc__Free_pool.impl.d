lib/core/free_pool.ml: Gbc_runtime Guardian Handle Heap Obj Word
