lib/core/eq_table.ml: Gbc_runtime Handle Heap List Obj Option Transport_guardian Word
