lib/core/port.ml: Ctx Gbc_runtime Gbc_vfs Obj String Word
