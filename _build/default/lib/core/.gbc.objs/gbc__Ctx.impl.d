lib/core/ctx.ml: Gbc_runtime Gbc_vfs Heap
