lib/core/ctx.mli: Config Gbc_runtime Gbc_vfs Heap
