lib/core/port.mli: Ctx Gbc_runtime Heap Word
