lib/core/gbc.ml: Ctx Eq_table Free_pool Gbc_runtime Gbc_vfs Guarded_port Guarded_table Port Transport_guardian Weak_eq_table Will_executor
