lib/core/transport_guardian.mli: Gbc_runtime Heap Word
