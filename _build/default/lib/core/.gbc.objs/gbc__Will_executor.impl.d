lib/core/will_executor.ml: Gbc_runtime Guardian Handle Hashtbl Heap Obj Weak_eq_table Word
