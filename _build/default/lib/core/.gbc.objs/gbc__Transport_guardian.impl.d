lib/core/transport_guardian.ml: Gbc_runtime Guardian Handle Heap Weak_pair Word
