lib/core/guarded_port.mli: Ctx Gbc_runtime
