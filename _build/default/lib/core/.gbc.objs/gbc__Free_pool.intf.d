lib/core/free_pool.mli: Gbc_runtime Heap Word
