lib/core/will_executor.mli: Gbc_runtime Heap Word
