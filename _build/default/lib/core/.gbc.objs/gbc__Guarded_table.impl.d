lib/core/guarded_table.ml: Gbc_runtime Guardian Handle Heap Obj Weak_pair Word
