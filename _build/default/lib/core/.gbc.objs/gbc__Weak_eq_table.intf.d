lib/core/weak_eq_table.mli: Gbc_runtime Heap Word
