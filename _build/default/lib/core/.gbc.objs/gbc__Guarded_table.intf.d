lib/core/guarded_table.mli: Gbc_runtime Heap Word
