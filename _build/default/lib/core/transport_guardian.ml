(** Conservative transport guardians (paper Section 3).

    A transport guardian returns an object when it {e may} have been moved
    (transported) by the collector, rather than when it has become
    inaccessible.  The implementation is the paper's: register a freshly
    allocated weak-pair {e marker} holding the object, then drop the marker.
    The marker is no older than the object, so it is returned by the
    guardian after any collection the object could have been subject to;
    the marker is then re-registered, ageing along with the object — the
    generation-friendly behaviour.  Because the marker holds the object only
    weakly, the transport guardian does not keep otherwise-dead objects
    alive: a broken marker is silently discarded.

    [payload] rides in the marker's (strong) cdr field; {!Eq_table} uses it
    to carry each key's table entry. *)

open Gbc_runtime

type t = { heap : Heap.t; guardian : Handle.t }

let create heap = { heap; guardian = Handle.create heap (Guardian.make heap) }

let dispose t = Handle.free t.guardian

(** Watch [obj] for transport.  [payload] (default [#f]) is returned
    alongside the object by {!poll}. *)
let register ?(payload = Word.false_) t obj =
  let h = t.heap in
  let marker = Weak_pair.cons h obj payload in
  Guardian.register h (Handle.get t.guardian) marker
(* The only reference to [marker] is now the registration: after any
   collection that examines it, the guardian hands it back. *)

(** Next object that may have moved since it was last seen, with its
    payload; [None] when no more.  Dead objects' markers are dropped.
    [keep] decides whether to keep watching the object (default yes): when
    it answers [false] the marker is discarded and watching stops. *)
let rec poll_choose t ~keep =
  let h = t.heap in
  match Guardian.retrieve h (Handle.get t.guardian) with
  | None -> None
  | Some marker ->
      let obj = Weak_pair.car h marker in
      if Word.is_false obj then poll_choose t ~keep (* object reclaimed *)
      else begin
        let payload = Weak_pair.cdr h marker in
        if keep ~obj ~payload then begin
          (* Re-register the same marker: it has aged with the object. *)
          Guardian.register h (Handle.get t.guardian) marker;
          Some (obj, payload)
        end
        else poll_choose t ~keep
      end

let poll t = poll_choose t ~keep:(fun ~obj:_ ~payload:_ -> true)
