(** Conservative transport guardians (paper Section 3).

    Returns an object when it {e may} have been moved by the collector,
    rather than when it has become inaccessible, by registering a fresh
    weak-pair marker that ages along with the object.  Does not keep dead
    objects alive. *)

open Gbc_runtime

type t

val create : Heap.t -> t
val dispose : t -> unit

val register : ?payload:Word.t -> t -> Word.t -> unit
(** Watch [obj]; [payload] (default [#f]) rides in the marker's strong cdr
    and is handed back by {!poll}. *)

val poll : t -> (Word.t * Word.t) option
(** Next (object, payload) that may have moved since last seen; the marker
    is re-registered so watching continues.  [None] when no more. *)

val poll_choose :
  t -> keep:(obj:Word.t -> payload:Word.t -> bool) -> (Word.t * Word.t) option
(** Like {!poll}, but [keep] decides whether to keep watching; answering
    [false] discards the marker and skips the report. *)
