(** Eq hash tables: address-hashed tables and the rehashing problem
    (paper Section 3).

    Eq tables hash arbitrary objects by their virtual-memory address, which
    a copying collector changes.  The classical fix is to rehash the table
    after every collection ({!strategy} [`Full_rehash]); the paper observes
    that in a generational collector most of that work is wasted on old keys
    that were not moved, and proposes rehashing only transported keys, found
    with a {!Transport_guardian} ([`Transport]).  Experiment E4 measures the
    difference with the [rehash_work] counter.

    Entries are strong: an eq table keeps its keys and values alive.  (For
    the weak, self-cleaning table, see {!Guarded_table}.) *)

open Gbc_runtime

type strategy = [ `Full_rehash | `Transport ]

(* Entry layout: a heap vector. *)
let e_key = 0
let e_value = 1
let e_bucket = 2
let e_active = 3
let entry_fields = 4

type t = {
  heap : Heap.t;
  buckets : Handle.t;
  size : int;
  strategy : strategy;
  transport : Transport_guardian.t option;
  mutable epoch : int;  (** heap gc_epoch the buckets were last valid for *)
  mutable count : int;
  mutable rehash_work : int;  (** entries re-bucketed since creation *)
  mutable refreshes : int;
}

let create heap ~strategy ~size =
  if size <= 0 then invalid_arg "Eq_table.create: size";
  {
    heap;
    buckets = Handle.create heap (Obj.make_vector heap ~len:size ~init:Word.nil);
    size;
    strategy;
    transport =
      (match strategy with
      | `Transport -> Some (Transport_guardian.create heap)
      | `Full_rehash -> None);
    epoch = Heap.gc_epoch heap;
    count = 0;
    rehash_work = 0;
    refreshes = 0;
  }

let dispose t =
  Handle.free t.buckets;
  Option.iter Transport_guardian.dispose t.transport

let hash_of t key = Obj.eq_hash key mod t.size

let bucket_push h v i entry = Obj.vector_set h v i (Obj.cons h entry (Obj.vector_ref h v i))

let bucket_remove h v i entry =
  let rec loop bucket =
    if Word.is_nil bucket then Word.nil
    else begin
      let e = Obj.car h bucket in
      if Word.equal e entry then Obj.cdr h bucket
      else Obj.cons h e (loop (Obj.cdr h bucket))
    end
  in
  Obj.vector_set h v i (loop (Obj.vector_ref h v i))

let relocate t entry =
  let h = t.heap in
  let v = Handle.get t.buckets in
  let old_i = Word.to_fixnum (Obj.vector_ref h entry e_bucket) in
  let key = Obj.vector_ref h entry e_key in
  let new_i = hash_of t key in
  t.rehash_work <- t.rehash_work + 1;
  if new_i <> old_i then begin
    bucket_remove h v old_i entry;
    bucket_push h v new_i entry;
    Obj.vector_set h entry e_bucket (Word.of_fixnum new_i)
  end

(* Bring the bucket structure up to date with the current addresses. *)
let refresh t =
  let h = t.heap in
  match t.strategy with
  | `Full_rehash ->
      if Heap.gc_epoch h <> t.epoch then begin
        t.refreshes <- t.refreshes + 1;
        t.epoch <- Heap.gc_epoch h;
        let v = Handle.get t.buckets in
        (* Unhook every entry, then re-bucket all of them. *)
        let entries = ref [] in
        for i = 0 to t.size - 1 do
          let rec loop bucket =
            if not (Word.is_nil bucket) then begin
              entries := Obj.car h bucket :: !entries;
              loop (Obj.cdr h bucket)
            end
          in
          loop (Obj.vector_ref h v i);
          Obj.vector_set h v i Word.nil
        done;
        List.iter
          (fun entry ->
            let key = Obj.vector_ref h entry e_key in
            let i = hash_of t key in
            t.rehash_work <- t.rehash_work + 1;
            bucket_push h v i entry;
            Obj.vector_set h entry e_bucket (Word.of_fixnum i))
          !entries
      end
  | `Transport ->
      let tg = Option.get t.transport in
      let moved = ref true in
      if Heap.gc_epoch h <> t.epoch then begin
        t.refreshes <- t.refreshes + 1;
        t.epoch <- Heap.gc_epoch h
      end;
      while !moved do
        match
          Transport_guardian.poll_choose tg ~keep:(fun ~obj:_ ~payload ->
              Word.is_true (Obj.vector_ref h payload e_active))
        with
        | Some (_obj, entry) -> relocate t entry
        | None -> moved := false
      done

let find_entry t key =
  let h = t.heap in
  let v = Handle.get t.buckets in
  let rec loop bucket =
    if Word.is_nil bucket then None
    else begin
      let entry = Obj.car h bucket in
      if Word.equal (Obj.vector_ref h entry e_key) key then Some entry
      else loop (Obj.cdr h bucket)
    end
  in
  loop (Obj.vector_ref h v (hash_of t key))

let lookup t key =
  refresh t;
  let h = t.heap in
  match find_entry t key with
  | Some entry -> Some (Obj.vector_ref h entry e_value)
  | None -> None

let mem t key = lookup t key <> None

let set t key value =
  refresh t;
  let h = t.heap in
  match find_entry t key with
  | Some entry -> Obj.vector_set h entry e_value value
  | None ->
      Heap.with_cell h key (fun kc ->
          Heap.with_cell h value (fun vc ->
              let entry = Obj.make_vector h ~len:entry_fields ~init:Word.nil in
              let key = Heap.read_cell h kc and value = Heap.read_cell h vc in
              let i = hash_of t key in
              Obj.vector_set h entry e_key key;
              Obj.vector_set h entry e_value value;
              Obj.vector_set h entry e_bucket (Word.of_fixnum i);
              Obj.vector_set h entry e_active Word.true_;
              bucket_push h (Handle.get t.buckets) i entry;
              (match t.transport with
              | Some tg -> Transport_guardian.register tg key ~payload:entry
              | None -> ());
              t.count <- t.count + 1))

let remove t key =
  refresh t;
  let h = t.heap in
  match find_entry t key with
  | Some entry ->
      let i = Word.to_fixnum (Obj.vector_ref h entry e_bucket) in
      bucket_remove h (Handle.get t.buckets) i entry;
      Obj.vector_set h entry e_active Word.false_;
      t.count <- t.count - 1
  | None -> ()

let count t = t.count
let rehash_work t = t.rehash_work
let refreshes t = t.refreshes
