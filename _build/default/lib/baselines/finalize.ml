(** [register-for-finalization] — Dickey's proposal (paper Section 2).

    An object is registered together with a thunk; the thunk is invoked
    automatically {e during garbage collection} once the object has been
    reclaimed.  The paper's criticisms, all reproduced here:

    - the thunk runs as part of the collection process and therefore must
      not allocate — mutator allocation raises {!Heap.Allocation_forbidden}
      while thunks run;
    - the object itself is gone: only the closure's captured data is
      available for clean-up;
    - the program has no control over {e when} thunks run;
    - errors raised by a thunk must be suppressed so that the remaining
      thunks still run (they are collected in [errors] instead).

    The registry is scanned in its entirety at every collection — cost
    proportional to registrations, not to deaths (unlike guardians). *)

open Gbc_runtime

type entry = { mutable word : Word.t; mutable alive : bool; thunk : unit -> unit }

type t = {
  heap : Heap.t;
  mutable entries : entry list;
  mutable pending : entry list;  (** died this collection; thunks to run *)
  scanner_id : int;
  hook_id : int;
  mutable scan_steps : int;
  mutable finalized : int;
  mutable errors : exn list;
}

let create heap =
  let t_ref = ref None in
  let scanner_id =
    Heap.add_weak_scanner heap (fun lookup ->
        match !t_ref with
        | None -> ()
        | Some t ->
            let survivors = ref [] and dead = ref [] in
            List.iter
              (fun e ->
                t.scan_steps <- t.scan_steps + 1;
                if e.alive then begin
                  match lookup e.word with
                  | Some w ->
                      e.word <- w;
                      survivors := e :: !survivors
                  | None ->
                      e.alive <- false;
                      dead := e :: !dead
                end)
              t.entries;
            t.entries <- List.rev !survivors;
            t.pending <- List.rev_append !dead t.pending)
  in
  let hook_id =
    Heap.add_post_gc_hook heap (fun h ->
        match !t_ref with
        | None -> ()
        | Some t ->
            let pending = t.pending in
            t.pending <- [];
            (* Thunks run "as part of the garbage collection process": no
               heap allocation, and errors are swallowed so the remaining
               thunks still run. *)
            h.Heap.alloc_forbidden <- true;
            Fun.protect
              ~finally:(fun () -> h.Heap.alloc_forbidden <- false)
              (fun () ->
                List.iter
                  (fun e ->
                    t.finalized <- t.finalized + 1;
                    try e.thunk () with exn -> t.errors <- exn :: t.errors)
                  pending))
  in
  let t =
    {
      heap;
      entries = [];
      pending = [];
      scanner_id;
      hook_id;
      scan_steps = 0;
      finalized = 0;
      errors = [];
    }
  in
  t_ref := Some t;
  t

let dispose t =
  Heap.remove_weak_scanner t.heap t.scanner_id;
  Heap.remove_post_gc_hook t.heap t.hook_id

(** Register [obj]: [thunk] runs during the collection that reclaims it. *)
let register t obj ~thunk = t.entries <- { word = obj; alive = true; thunk } :: t.entries

let registered_count t = List.length t.entries
let scan_steps t = t.scan_steps
let finalized t = t.finalized
let errors t = List.rev t.errors
