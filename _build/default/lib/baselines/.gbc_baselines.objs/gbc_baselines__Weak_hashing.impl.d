lib/baselines/weak_hashing.ml: Gbc_runtime Hashtbl Heap Word
