lib/baselines/finalize.ml: Fun Gbc_runtime Heap List Word
