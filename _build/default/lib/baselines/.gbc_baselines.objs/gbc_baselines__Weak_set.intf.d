lib/baselines/weak_set.mli: Gbc_runtime Heap Word
