lib/baselines/indirect.mli: Gbc_runtime Heap Word
