lib/baselines/weak_set.ml: Gbc_runtime Handle Heap Weak_pair Word
