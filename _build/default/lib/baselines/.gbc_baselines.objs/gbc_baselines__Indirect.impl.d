lib/baselines/indirect.ml: Gbc_runtime Handle Heap List Obj Weak_pair Word
