lib/baselines/weak_hashing.mli: Gbc_runtime Heap Word
