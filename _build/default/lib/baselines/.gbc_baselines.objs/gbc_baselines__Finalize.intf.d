lib/baselines/finalize.mli: Gbc_runtime Heap Word
