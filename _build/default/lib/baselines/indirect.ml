(** Weak-pointer-plus-header indirection (paper Section 2, after Atkins).

    Lacking guardians, clean-up data can be saved by one level of
    indirection: the program holds a {e header} whose (strong) car points at
    the data, while the registry holds a weak pointer to the header and a
    separate strong pointer to the data.  When the header is dropped, the
    weak pointer breaks, and the registry — once scanned — still has the
    data for clean-up.

    The costs the paper calls out, all measurable here:
    - every access to the data pays an indirection ([accesses] counter; and
      nothing stops a program from capturing the data pointer directly,
      which silently defeats the mechanism);
    - discovering breaks requires traversing the whole registry
      ([scan_steps]), old generations included. *)

open Gbc_runtime

type reg = { data_cell : int; mutable done_ : bool }
(* Each registration owns a weak pair (header . nil) in the heap, kept alive
   through the [roots] list so that only its car — the header — is weak, and
   a root cell holding the clean-up data strongly.  The registry list and
   the heap list are prepended in lock-step, so they stay aligned. *)

type t = {
  heap : Heap.t;
  mutable entries : reg list;
  roots : Handle.t;  (** heap list of the registry's weak pairs *)
  mutable scan_steps : int;
  mutable accesses : int;
  mutable cleaned : int;
}

let create heap =
  { heap; entries = []; roots = Handle.create heap Word.nil; scan_steps = 0; accesses = 0; cleaned = 0 }

let dispose t =
  List.iter (fun r -> Heap.free_cell t.heap r.data_cell) t.entries;
  Handle.free t.roots

(** Wrap [data] in a forwarding header the program passes around instead of
    the data itself. *)
let wrap t data =
  let h = t.heap in
  let header = Obj.cons h data Word.nil in
  let wp = Weak_pair.cons h header Word.nil in
  (* Keep the weak pair itself (not the header!) alive via the registry. *)
  Handle.set t.roots (Obj.cons h wp (Handle.get t.roots));
  ignore wp;
  let data_cell = Heap.new_cell h data in
  t.entries <- { data_cell; done_ = false } :: t.entries;
  header

(** Dereference a header: the extra memory reference every consumer pays. *)
let access t header =
  t.accesses <- t.accesses + 1;
  Obj.car t.heap header

(** Traverse the registry, invoking [cleanup] with the data of every header
    dropped since the last scan.  O(registry), however few died. *)
let scan_for_dropped t ~cleanup =
  let h = t.heap in
  (* Walk the rooted list of weak pairs and the entry list in lock-step:
     both were prepended in the same order. *)
  let rec loop l entries =
    if not (Word.is_nil l) then begin
      match entries with
      | [] -> ()
      | r :: rest ->
          t.scan_steps <- t.scan_steps + 1;
          let wp = Obj.car h l in
          if (not r.done_) && Word.is_false (Weak_pair.car h wp) then begin
            r.done_ <- true;
            t.cleaned <- t.cleaned + 1;
            let data = Heap.read_cell h r.data_cell in
            Heap.free_cell h r.data_cell;
            cleanup data
          end;
          loop (Obj.cdr h l) rest
    end
  in
  loop (Handle.get t.roots) t.entries

let scan_steps t = t.scan_steps
let accesses t = t.accesses
let cleaned t = t.cleaned
