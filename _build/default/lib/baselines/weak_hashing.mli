(** Weak hashing — MIT Scheme / T's [hash]/[unhash] (paper Section 2).

    [hash] maps an object to an integer unique to it; [unhash] maps the
    integer back, or reports reclamation.  The integer acts as a weak
    pointer the program can store anywhere. *)

open Gbc_runtime

type t

val create : Heap.t -> t
val dispose : t -> unit

val hash : t -> Word.t -> int
(** Unique and stable for the object's lifetime; never reused for a
    different object. *)

val unhash : t -> int -> Word.t option
(** [None] once the object has been reclaimed. *)

val live_count : t -> int
