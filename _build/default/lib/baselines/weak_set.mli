(** Weak sets — the T language's "populations" (paper Section 2).

    Members are held through weak pointers and disappear automatically, but
    discovering {e which} disappeared requires traversing the whole set —
    the inefficiency guardians eliminate (experiments E1/E2). *)

open Gbc_runtime

type t

val create : Heap.t -> t
val dispose : t -> unit
val add : t -> Word.t -> unit

val remove : t -> Word.t -> unit
(** Eq comparison; full traversal. *)

val members : t -> Word.t list
(** Survivors; prunes broken pointers along the way.  O(set size). *)

val scan_for_dropped : t -> int
(** Prune and report members that disappeared since the last scan.
    O(set size) regardless of deaths. *)

val count : t -> int

val scan_steps : t -> int
(** Weak pairs examined by traversals so far (the work counter). *)

val dropped : t -> int
