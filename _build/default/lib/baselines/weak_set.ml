(** Weak sets — the T language's "populations" (paper Section 2).

    A weak set holds its members through weak pointers: members otherwise
    unreachable are dropped automatically.  The catch the paper identifies:
    to learn {e which} members disappeared (or to enumerate the survivors)
    "the entire list must be traversed to find the pointers that have been
    broken, even if none or only a few of the elements have been dropped" —
    and in a generational system the list cells may sit in old generations.
    The [scan_steps] counter exposes that cost for experiment E1/E2. *)

open Gbc_runtime

type t = {
  heap : Heap.t;
  members : Handle.t;  (** heap list of weak pairs, one per member *)
  mutable count : int;
  mutable scan_steps : int;  (** weak pairs examined by traversals *)
  mutable dropped : int;  (** broken members discovered so far *)
}

let create heap =
  { heap; members = Handle.create heap Word.nil; count = 0; scan_steps = 0; dropped = 0 }

let dispose t = Handle.free t.members

(** Add [obj] to the set (weakly). *)
let add t obj =
  let h = t.heap in
  Handle.set t.members (Weak_pair.cons h obj (Handle.get t.members));
  t.count <- t.count + 1

(** Remove [obj] (eq comparison).  Full traversal. *)
let remove t obj =
  let h = t.heap in
  let rec loop l =
    t.scan_steps <- t.scan_steps + 1;
    if Word.is_nil l then Word.nil
    else if Word.equal (Weak_pair.car h l) obj then begin
      t.count <- t.count - 1;
      Weak_pair.cdr h l
    end
    else begin
      let rest = loop (Weak_pair.cdr h l) in
      Weak_pair.set_cdr h l rest;
      l
    end
  in
  Handle.set t.members (loop (Handle.get t.members))

(** Surviving members, pruning broken pointers along the way.  This is the
    O(set size) traversal the guardian mechanism avoids. *)
let members t =
  let h = t.heap in
  let alive = ref [] in
  let rec loop l =
    t.scan_steps <- t.scan_steps + 1;
    if Word.is_nil l then Word.nil
    else begin
      let x = Weak_pair.car h l in
      let rest = loop (Weak_pair.cdr h l) in
      if Word.is_false x then begin
        t.dropped <- t.dropped + 1;
        t.count <- t.count - 1;
        rest
      end
      else begin
        alive := x :: !alive;
        Weak_pair.set_cdr h l rest;
        l
      end
    end
  in
  Handle.set t.members (loop (Handle.get t.members));
  !alive

(** Prune broken pointers and report how many members disappeared since the
    last scan.  Cost: O(set size), regardless of how many died. *)
let scan_for_dropped t =
  let before = t.dropped in
  ignore (members t);
  t.dropped - before

let count t = t.count
let scan_steps t = t.scan_steps
let dropped t = t.dropped
