(** [register-for-finalization] — Dickey's proposal (paper Section 2).

    Thunks run automatically {e during} the collection that reclaims their
    object, reproducing the restrictions the paper criticizes: no
    allocation inside thunks ({!Gbc_runtime.Heap.Allocation_forbidden}),
    errors suppressed, no control over timing, and a registry rescanned in
    full at every collection. *)

open Gbc_runtime

type t

val create : Heap.t -> t
val dispose : t -> unit
val register : t -> Word.t -> thunk:(unit -> unit) -> unit
val registered_count : t -> int

val scan_steps : t -> int
(** Registry entries examined across all collections (work counter). *)

val finalized : t -> int

val errors : t -> exn list
(** Exceptions raised by thunks, swallowed so other thunks still ran. *)
