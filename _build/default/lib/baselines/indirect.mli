(** Weak-pointer-plus-header indirection (paper Section 2, after Atkins).

    Clean-up data is saved behind a forwarding header the program passes
    around; the registry watches the header weakly and keeps the data
    strongly.  Costs reproduced: an indirection on every access, and an
    O(registry) traversal to discover breaks. *)

open Gbc_runtime

type t

val create : Heap.t -> t
val dispose : t -> unit

val wrap : t -> Word.t -> Word.t
(** Wrap data in a header; pass the header around instead of the data. *)

val access : t -> Word.t -> Word.t
(** Dereference a header (counted). *)

val scan_for_dropped : t -> cleanup:(Word.t -> unit) -> unit
(** Invoke [cleanup] with the data of every header dropped since the last
    scan.  O(registry). *)

val scan_steps : t -> int
val accesses : t -> int
val cleaned : t -> int
