(** Weak hashing — MIT Scheme / T's [hash]/[unhash] (paper Section 2).

    [hash] maps an object to an integer unique to it (the same integer is
    never returned for a different object); [unhash] maps the integer back
    to the object, or reports that it has been reclaimed.  The integer is a
    weak pointer one can store anywhere.

    Implemented with the runtime's weak-scanner hook: entries track their
    object across copies without keeping it alive. *)

open Gbc_runtime

type entry = { mutable word : Word.t; mutable alive : bool }

type t = {
  heap : Heap.t;
  mutable next : int;
  by_id : (int, entry) Hashtbl.t;
  by_word : (Word.t, int) Hashtbl.t;  (** current-address index, rebuilt by the scanner *)
  scanner_id : int;
}

let create heap =
  let by_id = Hashtbl.create 64 in
  let by_word = Hashtbl.create 64 in
  let scanner_id =
    Heap.add_weak_scanner heap (fun lookup ->
        Hashtbl.reset by_word;
        Hashtbl.iter
          (fun id e ->
            if e.alive then begin
              match lookup e.word with
              | Some w ->
                  e.word <- w;
                  Hashtbl.replace by_word w id
              | None -> e.alive <- false
            end)
          by_id)
  in
  { heap; next = 1; by_id; by_word; scanner_id }

let dispose t = Heap.remove_weak_scanner t.heap t.scanner_id

(** Unique integer for [obj]; stable for the object's lifetime. *)
let hash t obj =
  match Hashtbl.find_opt t.by_word obj with
  | Some id -> id
  | None ->
      let id = t.next in
      t.next <- id + 1;
      Hashtbl.add t.by_id id { word = obj; alive = true };
      Hashtbl.replace t.by_word obj id;
      id

(** The object [id] was produced from, unless it has been reclaimed. *)
let unhash t id =
  match Hashtbl.find_opt t.by_id id with
  | Some e when e.alive -> Some e.word
  | _ -> None

let live_count t =
  Hashtbl.fold (fun _ e acc -> if e.alive then acc + 1 else acc) t.by_id 0
