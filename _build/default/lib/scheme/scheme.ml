(** Façade: building a ready-to-use Scheme system.

    {[
      let m = Scheme.create ()
      let _ = Scheme.eval m "(define G (make-guardian))"
    ]} *)

module Sexpr = Sexpr
module Lexer = Lexer
module Reader = Reader
module Instr = Instr
module Compile = Compile
module Machine = Machine
module Printer = Printer
module Primitives = Primitives

(** A machine with primitives and the prelude installed. *)
let create ?ctx ?config () =
  let m = Machine.create ?ctx ?config () in
  Primitives.install m;
  ignore (Machine.eval_string m Prelude.source);
  m

(** Evaluate [src] and return the last form's value as a printed string. *)
let eval m src = Printer.to_string (Machine.heap m) (Machine.eval_string m src)

(** Evaluate [src] for effect; return console output produced. *)
let eval_output m src =
  Machine.clear_console m;
  ignore (Machine.eval_string m src);
  Machine.console_output m
