(** The primitive procedures of the Scheme system. *)

val install : Machine.t -> unit
(** Define every primitive as a global binding in the machine.  Primitives
    never trigger collections, so they may work with raw argument words. *)
