(** Printing heap values, with shared-structure ([#n=]/[#n#]) labels.

    Printing performs no heap allocation, so word identity is stable for
    the duration of a print. *)

open Gbc_runtime

val print : ?display:bool -> Heap.t -> Buffer.t -> Word.t -> unit
(** [display] renders strings and characters without escapes ([display]
    vs. [write]). *)

val to_string : ?display:bool -> Heap.t -> Word.t -> string
