(** Tokenizer for Scheme source. *)

exception Error of string

type token =
  | LPAREN
  | RPAREN
  | QUOTE
  | QUASIQUOTE
  | UNQUOTE
  | UNQUOTE_SPLICING
  | VECTOR_OPEN
  | DOT
  | BOOL of bool
  | INT of int
  | FLOAT of float
  | CHAR of char
  | STRING of string
  | SYMBOL of string
  | EOF

type t

val create : string -> t

val next : t -> token
(** @raise Error on malformed input. *)

val token_start : t -> int
(** Source offset at which the most recently returned token began. *)
