(** Printing heap values, with shared-structure (datum) labels.

    Shared and cyclic structure is rendered with [#n=]/[#n#] labels.  The
    occurrence analysis uses an OCaml hash table keyed on word identity —
    valid because printing performs no heap allocation, so no collection can
    move anything mid-print. *)

open Gbc_runtime

let char_name c =
  match c with
  | ' ' -> "space"
  | '\n' -> "newline"
  | '\t' -> "tab"
  | '\r' -> "return"
  | '\000' -> "nul"
  | c -> String.make 1 c

let print ?(display = false) h buf w =
  (* Pass 1: find nodes reachable more than once. *)
  let seen = Hashtbl.create 16 in
  let shared = Hashtbl.create 4 in
  let rec scan w =
    if Word.is_pair_ptr w || (Word.is_typed_ptr w && Obj.is_vector h w) then begin
      if Hashtbl.mem seen w then Hashtbl.replace shared w None
      else begin
        Hashtbl.add seen w ();
        if Word.is_pair_ptr w then begin
          scan (Obj.car h w);
          scan (Obj.cdr h w)
        end
        else
          for i = 0 to Obj.vector_length h w - 1 do
            scan (Obj.vector_ref h w i)
          done
      end
    end
  in
  scan w;
  let next_label = ref 0 in
  let add s = Buffer.add_string buf s in
  (* Emit a label definition for [w] if shared; true = already printed. *)
  let check_shared w =
    match Hashtbl.find_opt shared w with
    | None -> false
    | Some (Some n) ->
        add (Printf.sprintf "#%d#" n);
        true
    | Some None ->
        let n = !next_label in
        incr next_label;
        Hashtbl.replace shared w (Some n);
        add (Printf.sprintf "#%d=" n);
        false
  in
  let rec go w =
    if Word.is_fixnum w then add (string_of_int (Word.to_fixnum w))
    else if Word.is_nil w then add "()"
    else if Word.is_false w then add "#f"
    else if Word.is_true w then add "#t"
    else if Word.is_char w then
      if display then Buffer.add_char buf (Word.to_char w)
      else add ("#\\" ^ char_name (Word.to_char w))
    else if Word.equal w Word.eof then add "#<eof>"
    else if Word.equal w Word.void then add "#<void>"
    else if Word.equal w Word.unbound then add "#<unbound>"
    else if Word.is_pair_ptr w then begin
      if not (check_shared w) then begin
        if Obj.is_weak_pair h w then add "#<weak ";
        add "(";
        go (Obj.car h w);
        let rec tail d =
          if Word.is_nil d then ()
          else if Word.is_pair_ptr d && not (Hashtbl.mem shared d) then begin
            add " ";
            go (Obj.car h d);
            tail (Obj.cdr h d)
          end
          else begin
            add " . ";
            go d
          end
        in
        tail (Obj.cdr h w);
        add ")";
        if Obj.is_weak_pair h w then add ">"
      end
    end
    else if Word.is_typed_ptr w then begin
      let code = Obj.typed_code h w in
      if code = Obj.code_string then
        if display then add (Obj.string_to_ocaml h w)
        else add (Printf.sprintf "%S" (Obj.string_to_ocaml h w))
      else if code = Obj.code_symbol then add (Obj.symbol_name_string h w)
      else if code = Obj.code_vector then begin
        if not (check_shared w) then begin
          add "#(";
          for i = 0 to Obj.vector_length h w - 1 do
            if i > 0 then add " ";
            go (Obj.vector_ref h w i)
          done;
          add ")"
        end
      end
      else if code = Obj.code_flonum then begin
        let f = Obj.flonum_value h w in
        let s = Printf.sprintf "%.12g" f in
        add (if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s else s ^ ".")
      end
      else if code = Obj.code_box then begin
        add "#&";
        go (Obj.box_ref h w)
      end
      else if code = Obj.code_closure then add "#<procedure>"
      else if code = Obj.code_port then add "#<port>"
      else if code = Obj.code_guardian then add "#<guardian>"
      else if code = Obj.code_bytevector then begin
        add "#vu8(";
        for i = 0 to Obj.bytevector_length h w - 1 do
          if i > 0 then add " ";
          add (string_of_int (Obj.bytevector_ref h w i))
        done;
        add ")"
      end
      else add (Printf.sprintf "#<%s>" (Obj.type_name code))
    end
    else add "#<unknown>"
  in
  go w

let to_string ?display h w =
  let buf = Buffer.create 64 in
  print ?display h buf w;
  Buffer.contents buf
