(** External representation of Scheme data: what the reader produces and the
    compiler consumes.  Heap values are materialized from these by
    {!Machine.materialize} when quoted. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Char of char
  | Str of string
  | Sym of string
  | Pair of t * t
  | Vector of t array

let rec list_of = function
  | [] -> Null
  | x :: rest -> Pair (x, list_of rest)

(** Proper-list view: [Some elements] if [t] is a proper list. *)
let rec to_list = function
  | Null -> Some []
  | Pair (a, d) -> Option.map (fun rest -> a :: rest) (to_list d)
  | _ -> None

let rec pp ppf t =
  let open Format in
  match t with
  | Null -> pp_print_string ppf "()"
  | Bool true -> pp_print_string ppf "#t"
  | Bool false -> pp_print_string ppf "#f"
  | Int n -> pp_print_int ppf n
  | Float f -> pp_print_float ppf f
  | Char ' ' -> pp_print_string ppf "#\\space"
  | Char '\n' -> pp_print_string ppf "#\\newline"
  | Char c -> fprintf ppf "#\\%c" c
  | Str s -> fprintf ppf "%S" s
  | Sym s -> pp_print_string ppf s
  | Vector els ->
      pp_print_string ppf "#(";
      Array.iteri (fun i e -> if i > 0 then pp_print_char ppf ' '; pp ppf e) els;
      pp_print_char ppf ')'
  | Pair _ ->
      pp_print_char ppf '(';
      let rec loop t first =
        match t with
        | Pair (a, d) ->
            if not first then pp_print_char ppf ' ';
            pp ppf a;
            loop d false
        | Null -> ()
        | other ->
            pp_print_string ppf " . ";
            pp ppf other
      in
      loop t true;
      pp_print_char ppf ')'

let to_string t = Format.asprintf "%a" pp t
