(** The Scheme prelude: library procedures defined in Scheme itself,
    including the paper's user-level guardian interface (guardians are
    procedures) and the paper's transport-guardian code, verbatim. *)

val source : string
