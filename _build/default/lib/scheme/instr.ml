(** Bytecode for the stack VM.

    Flat-closure model: a closure captures the values (or boxes, for
    assigned variables) of its free variables; locals live in the value
    stack frame.  [case-lambda] closures carry several clauses sharing one
    free-variable list; calls dispatch on argument count. *)

type instr =
  | Const of int  (** constants table index -> acc *)
  | Imm of int  (** raw immediate/fixnum word -> acc *)
  | Local_ref of int  (** acc := stack[fp + i] (raw slot: value or box) *)
  | Free_ref of int  (** acc := closure free var i (raw) *)
  | Unbox  (** acc := box-ref acc *)
  | Local_set_box of int  (** box-set! stack[fp+i] acc *)
  | Free_set_box of int
  | Global_ref of int  (** acc := global cell (error if unbound) *)
  | Global_set of int  (** cell := acc (error if unbound) *)
  | Global_define of int  (** cell := acc *)
  | Push
  | Box_local of int  (** stack[fp+i] := box(stack[fp+i]): clause prologue *)
  | Make_closure of { code_id : int; nfree : int }
      (** capture top [nfree] stack words (popped) as free vars *)
  | Branch_false of int  (** jump to index if acc is #f *)
  | Jump of int
  | Call of int  (** operator in acc, n args on stack *)
  | Tail_call of int
  | Return
  | Halt

type clause = {
  required : int;  (** required parameter count *)
  rest : bool;  (** accepts extra args collected into a list *)
  instrs : instr array;
}

type code = {
  name : string;  (** for error messages and disassembly *)
  clauses : clause list;  (** one for [lambda], several for [case-lambda] *)
}

let pp_instr ppf = function
  | Const i -> Format.fprintf ppf "const %d" i
  | Imm w -> Format.fprintf ppf "imm %d" w
  | Local_ref i -> Format.fprintf ppf "local %d" i
  | Free_ref i -> Format.fprintf ppf "free %d" i
  | Unbox -> Format.pp_print_string ppf "unbox"
  | Local_set_box i -> Format.fprintf ppf "local-set-box %d" i
  | Free_set_box i -> Format.fprintf ppf "free-set-box %d" i
  | Global_ref i -> Format.fprintf ppf "global %d" i
  | Global_set i -> Format.fprintf ppf "global-set %d" i
  | Global_define i -> Format.fprintf ppf "global-define %d" i
  | Push -> Format.pp_print_string ppf "push"
  | Box_local i -> Format.fprintf ppf "box-local %d" i
  | Make_closure { code_id; nfree } -> Format.fprintf ppf "closure %d/%d" code_id nfree
  | Branch_false i -> Format.fprintf ppf "brf %d" i
  | Jump i -> Format.fprintf ppf "jmp %d" i
  | Call n -> Format.fprintf ppf "call %d" n
  | Tail_call n -> Format.fprintf ppf "tailcall %d" n
  | Return -> Format.pp_print_string ppf "ret"
  | Halt -> Format.pp_print_string ppf "halt"
