lib/scheme/scheme.ml: Compile Instr Lexer Machine Prelude Primitives Printer Reader Sexpr
