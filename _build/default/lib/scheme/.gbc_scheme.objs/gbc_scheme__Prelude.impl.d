lib/scheme/prelude.ml:
