lib/scheme/printer.ml: Buffer Gbc_runtime Hashtbl Obj Printf String Word
