lib/scheme/instr.ml: Format
