lib/scheme/primitives.ml: Array Char Collector Disasm Fun Gbc Gbc_runtime Gbc_vfs Guardian Heap List Machine Obj Printer Printf Reader Runtime Stats String Symtab Trace Word
