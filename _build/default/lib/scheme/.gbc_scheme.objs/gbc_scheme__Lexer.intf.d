lib/scheme/lexer.mli:
