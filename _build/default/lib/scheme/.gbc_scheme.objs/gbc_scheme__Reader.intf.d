lib/scheme/reader.mli: Sexpr
