lib/scheme/machine.mli: Compile Config Format Gbc Gbc_runtime Heap Instr Sexpr Symtab Trace Word
