lib/scheme/sexpr.ml: Array Format Option
