lib/scheme/prelude.mli:
