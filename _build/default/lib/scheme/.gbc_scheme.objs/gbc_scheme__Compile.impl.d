lib/scheme/compile.ml: Array Format Gbc_runtime Instr List Option Printf Set Sexpr String Word
