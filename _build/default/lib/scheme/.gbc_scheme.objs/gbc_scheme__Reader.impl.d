lib/scheme/reader.ml: Array Lexer List Sexpr String
