lib/scheme/disasm.ml: Array Format Gbc_runtime Instr List Machine Printf
