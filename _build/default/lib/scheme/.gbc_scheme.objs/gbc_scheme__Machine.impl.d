lib/scheme/machine.ml: Array Buffer Compile Format Fun Gbc Gbc_runtime Hashtbl Heap Instr List Obj Option Printer Reader Runtime Sexpr String Symtab Trace Vec Word
