lib/scheme/primitives.mli: Machine
