lib/scheme/printer.mli: Buffer Gbc_runtime Heap Word
