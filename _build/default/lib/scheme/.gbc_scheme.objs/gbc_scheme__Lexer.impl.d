lib/scheme/lexer.ml: Buffer String
