(** The compiler: source data to bytecode.

    Pipeline: parse (expanding derived forms to a small core), analyse
    (free and assigned variables, flat closures with boxed assigned
    variables), emit ({!Instr}).  The [linker] callbacks are provided by
    {!Machine}: interning global cells, materializing constants and
    registering code blocks. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type linker = {
  global_cell : string -> int;  (** global variable -> root cell id *)
  add_const : Sexpr.t -> int;  (** materialize a constant -> index *)
  add_code : Instr.code -> int;  (** register a code block -> id *)
}

module SSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Core AST                                                            *)

type expr =
  | Quote of Sexpr.t
  | Var of string
  | Set of string * expr
  | If of expr * expr * expr
  | Lambda of lam
  | Begin of expr list
  | App of expr * expr list

and clause_ast = { params : string list; rest : string option; body : expr }
and lam = { lam_name : string; clauses : clause_ast list }

(* ------------------------------------------------------------------ *)
(* Parsing / expansion                                                 *)

let gensym_counter = ref 0

let gensym prefix =
  incr gensym_counter;
  Printf.sprintf "%%%s.%d" prefix !gensym_counter

let as_list d =
  match Sexpr.to_list d with
  | Some l -> l
  | None -> error "expected proper list: %s" (Sexpr.to_string d)

let sym_name = function Sexpr.Sym s -> s | d -> error "expected symbol: %s" (Sexpr.to_string d)

(* Formals: (a b c), (a b . r), r *)
let parse_formals d =
  let rec loop = function
    | Sexpr.Null -> ([], None)
    | Sexpr.Sym r -> ([], Some r)
    | Sexpr.Pair (Sexpr.Sym a, rest) ->
        let ps, r = loop rest in
        (a :: ps, r)
    | d -> error "bad parameter list: %s" (Sexpr.to_string d)
  in
  loop d

let rec parse (d : Sexpr.t) : expr =
  match d with
  | Sexpr.Sym s -> Var s
  | Sexpr.Null -> error "empty application ()"
  | Sexpr.Bool _ | Sexpr.Int _ | Sexpr.Float _ | Sexpr.Char _ | Sexpr.Str _
  | Sexpr.Vector _ ->
      Quote d
  | Sexpr.Pair (Sexpr.Sym keyword, rest) -> parse_form keyword rest d
  | Sexpr.Pair (op, args) -> App (parse op, List.map parse (as_list args))

and parse_form keyword rest whole =
  match (keyword, as_list rest) with
  | "quote", [ d ] -> Quote d
  | "quote", _ -> error "bad quote"
  | "if", [ c; t ] -> If (parse c, parse t, Quote (Sexpr.Bool false))
  | "if", [ c; t; e ] -> If (parse c, parse t, parse e)
  | "if", _ -> error "bad if: %s" (Sexpr.to_string whole)
  | "set!", [ Sexpr.Sym name; e ] -> Set (name, parse e)
  | "set!", _ -> error "bad set!: %s" (Sexpr.to_string whole)
  | "begin", [] -> Quote (Sexpr.Bool false)
  | "begin", forms -> Begin (List.map parse forms)
  | "lambda", formals :: body when body <> [] ->
      let params, rst = parse_formals formals in
      Lambda { lam_name = "lambda"; clauses = [ make_clause params rst body ] }
  | "lambda", _ -> error "bad lambda: %s" (Sexpr.to_string whole)
  | "case-lambda", clauses ->
      let parse_clause c =
        match as_list c with
        | formals :: body when body <> [] ->
            let params, rst = parse_formals formals in
            make_clause params rst body
        | _ -> error "bad case-lambda clause: %s" (Sexpr.to_string c)
      in
      Lambda { lam_name = "case-lambda"; clauses = List.map parse_clause clauses }
  | "let", (Sexpr.Sym name :: bindings :: body) when body <> [] ->
      (* Named let: (letrec ([name (lambda (vars) body)]) (name inits)) *)
      let vars, inits = parse_bindings bindings in
      let loop_lambda =
        Lambda { lam_name = name; clauses = [ make_clause vars None body ] }
      in
      parse_letrec [ (name, `Parsed loop_lambda) ]
        [ `Parsed (App (Var name, List.map parse inits)) ]
  | "let", bindings :: body when body <> [] ->
      let vars, inits = parse_bindings bindings in
      App
        ( Lambda { lam_name = "let"; clauses = [ make_clause vars None body ] },
          List.map parse inits )
  | "let", _ -> error "bad let: %s" (Sexpr.to_string whole)
  | "let*", bindings :: body when body <> [] -> (
      match as_list bindings with
      | [] -> parse_body body
      | [ _ ] -> parse_form "let" rest whole
      | b :: more ->
          parse_form "let"
            (Sexpr.list_of
               [ Sexpr.list_of [ b ];
                 Sexpr.Pair (Sexpr.Sym "let*", Sexpr.Pair (Sexpr.list_of more, Sexpr.list_of body));
               ])
            whole)
  | "let*", _ -> error "bad let*: %s" (Sexpr.to_string whole)
  | ("letrec" | "letrec*"), bindings :: body when body <> [] ->
      let vars, inits = parse_bindings bindings in
      parse_letrec
        (List.map2 (fun v i -> (v, `Datum i)) vars inits)
        (List.map (fun b -> `Datum b) body)
  | ("letrec" | "letrec*"), _ -> error "bad letrec: %s" (Sexpr.to_string whole)
  | "cond", clauses -> parse_cond clauses
  | "case", key :: clauses -> parse_case key clauses
  | "and", [] -> Quote (Sexpr.Bool true)
  | "and", [ e ] -> parse e
  | "and", e :: more ->
      If (parse e, parse_form "and" (Sexpr.list_of more) whole, Quote (Sexpr.Bool false))
  | "or", [] -> Quote (Sexpr.Bool false)
  | "or", [ e ] -> parse e
  | "or", e :: more ->
      let t = gensym "or" in
      App
        ( Lambda
            {
              lam_name = "or";
              clauses =
                [
                  {
                    params = [ t ];
                    rest = None;
                    body =
                      If (Var t, Var t, parse_form "or" (Sexpr.list_of more) whole);
                  };
                ];
            },
          [ parse e ] )
  | "when", c :: body when body <> [] ->
      If (parse c, parse_body body, Quote (Sexpr.Bool false))
  | "unless", c :: body when body <> [] ->
      If (parse c, Quote (Sexpr.Bool false), parse_body body)
  | "do", spec :: (test_result :: commands) -> parse_do spec test_result commands
  | "define", _ -> error "define is only allowed at top level or body head"
  | "quasiquote", [ template ] -> parse_quasiquote template 1
  | "quasiquote", _ -> error "bad quasiquote"
  | ("unquote" | "unquote-splicing"), _ -> error "unquote outside quasiquote"
  | _, args -> App (parse (Sexpr.Sym keyword), List.map parse args)

(* Standard depth-aware quasiquote expansion into cons/append/list->vector
   applications. *)
and parse_quasiquote template depth =
  let quote d = Quote d in
  match template with
  | Sexpr.Pair (Sexpr.Sym "unquote", Sexpr.Pair (e, Sexpr.Null)) ->
      if depth = 1 then parse e
      else
        App
          ( Var "list",
            [ quote (Sexpr.Sym "unquote"); parse_quasiquote e (depth - 1) ] )
  | Sexpr.Pair (Sexpr.Sym "quasiquote", Sexpr.Pair (e, Sexpr.Null)) ->
      App
        ( Var "list",
          [ quote (Sexpr.Sym "quasiquote"); parse_quasiquote e (depth + 1) ] )
  | Sexpr.Pair
      ((Sexpr.Pair (Sexpr.Sym "unquote-splicing", Sexpr.Pair (e, Sexpr.Null)) as head), tail)
    ->
      if depth = 1 then App (Var "append", [ parse e; parse_quasiquote tail depth ])
      else
        App
          ( Var "cons",
            [
              App
                ( Var "list",
                  [ quote (Sexpr.Sym "unquote-splicing"); parse_quasiquote (List.nth (Option.get (Sexpr.to_list head)) 1) (depth - 1) ] );
              parse_quasiquote tail depth;
            ] )
  | Sexpr.Pair (a, d) ->
      App (Var "cons", [ parse_quasiquote a depth; parse_quasiquote d depth ])
  | Sexpr.Vector els ->
      App
        ( Var "list->vector",
          [ parse_quasiquote (Sexpr.list_of (Array.to_list els)) depth ] )
  | atom -> quote atom

and parse_bindings bindings =
  let parse_one b =
    match as_list b with
    | [ Sexpr.Sym v; init ] -> (v, init)
    | _ -> error "bad binding: %s" (Sexpr.to_string b)
  in
  let pairs = List.map parse_one (as_list bindings) in
  (List.map fst pairs, List.map snd pairs)

(* (letrec ([v e]...) body...) == (let ([v #f]...) (set! v e) ... body...);
   inits and body may already be parsed (for named let). *)
and parse_letrec vars_inits body =
  let vars = List.map fst vars_inits in
  let force = function `Parsed e -> e | `Datum d -> parse d in
  let sets = List.map (fun (v, i) -> Set (v, force i)) vars_inits in
  let body_exprs = List.map force body in
  App
    ( Lambda
        {
          lam_name = "letrec";
          clauses =
            [ { params = vars; rest = None; body = Begin (sets @ body_exprs) } ];
        },
      List.map (fun _ -> Quote (Sexpr.Bool false)) vars )

and parse_cond clauses =
  match clauses with
  | [] -> Quote (Sexpr.Bool false)
  | clause :: more -> (
      match as_list clause with
      | [ Sexpr.Sym "else" ] -> error "bad else clause"
      | Sexpr.Sym "else" :: body -> parse_body body
      | [ test ] ->
          let t = gensym "cond" in
          App
            ( Lambda
                {
                  lam_name = "cond";
                  clauses =
                    [
                      {
                        params = [ t ];
                        rest = None;
                        body = If (Var t, Var t, parse_cond more);
                      };
                    ];
                },
              [ parse test ] )
      | test :: body -> If (parse test, parse_body body, parse_cond more)
      | [] -> error "empty cond clause")

and parse_case key clauses =
  let t = gensym "case" in
  let rec build = function
    | [] -> Quote (Sexpr.Bool false)
    | clause :: more -> (
        match as_list clause with
        | Sexpr.Sym "else" :: body -> parse_body body
        | data :: body ->
            If
              ( App (Var "memv", [ Var t; Quote data ]),
                parse_body body,
                build more )
        | [] -> error "empty case clause")
  in
  App
    ( Lambda
        { lam_name = "case"; clauses = [ { params = [ t ]; rest = None; body = build clauses } ] },
      [ parse key ] )

(* (do ([v init step]...) (test res...) cmd...) *)
and parse_do spec test_result commands =
  let specs =
    List.map
      (fun s ->
        match as_list s with
        | [ Sexpr.Sym v; init ] -> (v, init, Sexpr.Sym v)
        | [ Sexpr.Sym v; init; step ] -> (v, init, step)
        | _ -> error "bad do binding: %s" (Sexpr.to_string s))
      (as_list spec)
  in
  let test, results =
    match as_list test_result with
    | test :: results -> (test, results)
    | [] -> error "bad do test"
  in
  let loop = gensym "do" in
  let vars = List.map (fun (v, _, _) -> v) specs in
  let steps = List.map (fun (_, _, s) -> parse s) specs in
  let body =
    If
      ( parse test,
        (if results = [] then Quote (Sexpr.Bool false) else parse_body results),
        Begin (List.map parse commands @ [ App (Var loop, steps) ]) )
  in
  parse_letrec
    [ (loop, `Parsed (Lambda { lam_name = loop; clauses = [ { params = vars; rest = None; body } ] })) ]
    [ `Parsed (App (Var loop, List.map (fun (_, i, _) -> parse i) specs)) ]

(* A lambda/let body: leading internal defines become letrec*. *)
and make_clause params rest body = { params; rest; body = parse_body body }

and parse_body body =
  let is_define = function
    | Sexpr.Pair (Sexpr.Sym "define", _) -> true
    | _ -> false
  in
  let defines, forms =
    let rec split acc = function
      | d :: rest when is_define d -> split (d :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    split [] body
  in
  if forms = [] then error "body has no expressions";
  let rest_exprs = List.map parse forms in
  if defines = [] then
    match rest_exprs with [ e ] -> e | es -> Begin es
  else begin
    let bindings =
      List.map
        (fun d ->
          match d with
          | Sexpr.Pair (_, Sexpr.Pair (Sexpr.Sym name, Sexpr.Pair (e, Sexpr.Null))) ->
              (name, `Datum e)
          | Sexpr.Pair (_, Sexpr.Pair (Sexpr.Pair (Sexpr.Sym name, formals), body)) ->
              let params, rst = parse_formals formals in
              ( name,
                `Parsed
                  (Lambda { lam_name = name; clauses = [ make_clause params rst (as_list body) ] })
              )
          | _ -> error "bad internal define: %s" (Sexpr.to_string d))
        defines
    in
    parse_letrec bindings (List.map (fun e -> `Parsed e) rest_exprs)
  end

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)

let clause_bound c = SSet.of_list (c.params @ Option.to_list c.rest)

(* Variables of [expr] free with respect to [bound]. *)
let rec free_vars bound expr acc =
  match expr with
  | Quote _ -> acc
  | Var s -> if SSet.mem s bound then acc else SSet.add s acc
  | Set (s, e) ->
      let acc = if SSet.mem s bound then acc else SSet.add s acc in
      free_vars bound e acc
  | If (a, b, c) -> free_vars bound a (free_vars bound b (free_vars bound c acc))
  | Begin es -> List.fold_left (fun acc e -> free_vars bound e acc) acc es
  | App (f, args) ->
      List.fold_left (fun acc e -> free_vars bound e acc) (free_vars bound f acc) args
  | Lambda { clauses; _ } ->
      List.fold_left
        (fun acc c -> free_vars (SSet.union bound (clause_bound c)) c.body acc)
        acc clauses

(* All set! target names anywhere in [expr] (conservative: shadowing
   ignored; over-boxing is harmless). *)
let rec assigned_vars expr acc =
  match expr with
  | Quote _ | Var _ -> acc
  | Set (s, e) -> assigned_vars e (SSet.add s acc)
  | If (a, b, c) -> assigned_vars a (assigned_vars b (assigned_vars c acc))
  | Begin es -> List.fold_left (fun acc e -> assigned_vars e acc) acc es
  | App (f, args) -> List.fold_left (fun acc e -> assigned_vars e acc) (assigned_vars f acc) args
  | Lambda { clauses; _ } ->
      List.fold_left (fun acc c -> assigned_vars c.body acc) acc clauses

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)

(* A small, safe AST optimizer run before emission:

   - constant folding of fixnum arithmetic and comparisons on literals
     (careful to preserve error behaviour: division and overflow are left
     alone);
   - [if] on a literal condition selects its arm (any datum other than #f
     is true);
   - [begin] flattening and removal of effect-free non-tail subforms.

   Only applied when the operator is one of the known primitive names;
   since globals can be redefined at runtime, folding is restricted to the
   operators the prelude never shadows. *)

let literal_int = function Quote (Sexpr.Int n) -> Some n | _ -> None

let effect_free = function
  | Quote _ | Var _ | Lambda _ -> true
  | _ -> false

let rec simplify_in bound expr =
  match expr with
  | Quote _ | Var _ -> expr
  | Set (x, e) -> Set (x, simplify_in bound e)
  | If (c, t, f) -> (
      let c = simplify_in bound c
      and t = simplify_in bound t
      and f = simplify_in bound f in
      match c with
      | Quote d -> if d = Sexpr.Bool false then f else t
      | _ -> If (c, t, f))
  | Begin es -> (
      let es = List.concat_map flatten_begin (List.map (simplify_in bound) es) in
      match drop_effect_free es with
      | [] -> Quote (Sexpr.Bool false)
      | [ e ] -> e
      | es -> Begin es)
  | Lambda l ->
      Lambda
        {
          l with
          clauses =
            List.map
              (fun c ->
                { c with body = simplify_in (SSet.union bound (clause_bound c)) c.body })
              l.clauses;
        }
  | App (f, args) -> (
      let f = simplify_in bound f and args = List.map (simplify_in bound) args in
      match f with
      | Var op when not (SSet.mem op bound) -> (
          (* Folding assumes the standard meaning of the operator; it is
             disabled whenever the name is lexically rebound. *)
          match fold_primitive op args with Some e -> e | None -> App (f, args))
      | _ -> App (f, args))

and flatten_begin = function Begin es -> es | e -> [ e ]

(* Keep the last form; drop effect-free forms evaluated only for effect. *)
and drop_effect_free = function
  | [] -> []
  | [ last ] -> [ last ]
  | e :: rest -> if effect_free e then drop_effect_free rest else e :: drop_effect_free rest

and fold_primitive op args =
  let ints = List.map literal_int args in
  let all_ints = List.for_all Option.is_some ints in
  if not all_ints then None
  else
    let ns = List.map Option.get ints in
    let int n =
      if n >= Gbc_runtime.Word.fixnum_min && n <= Gbc_runtime.Word.fixnum_max then
        Some (Quote (Sexpr.Int n))
      else None
    in
    match (op, ns) with
    | "+", ns -> int (List.fold_left ( + ) 0 ns)
    | "*", ns -> int (List.fold_left ( * ) 1 ns)
    | "-", [ n ] -> int (-n)
    | "-", n :: rest when rest <> [] -> int (List.fold_left ( - ) n rest)
    | "min", [ a; b ] -> int (min a b)
    | "max", [ a; b ] -> int (max a b)
    | "abs", [ a ] -> int (abs a)
    | ("<" | ">" | "<=" | ">=" | "="), (_ :: _ :: _ as ns) ->
        let cmp =
          match op with
          | "<" -> ( < )
          | ">" -> ( > )
          | "<=" -> ( <= )
          | ">=" -> ( >= )
          | _ -> ( = )
        in
        let rec chain = function
          | a :: (b :: _ as rest) -> cmp a b && chain rest
          | _ -> true
        in
        Some (Quote (Sexpr.Bool (chain ns)))
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

type binding = { bname : string; boxed : bool }
type cenv = { locals : binding list; free : binding list }

let empty_cenv = { locals = []; free = [] }

type emitter = { mutable instrs : Instr.instr list; mutable len : int }

let emitter () = { instrs = []; len = 0 }

let emit e i =
  e.instrs <- i :: e.instrs;
  e.len <- e.len + 1

(* Reserve a branch slot, to be patched with the final target. *)
let emit_patch e make =
  let at = e.len in
  emit e (Instr.Jump (-1));
  fun () ->
    (* targets are known only after full emission; rewrite on finish *)
    (at, make)

let finish e patches =
  let arr = Array.of_list (List.rev e.instrs) in
  List.iter (fun (at, make) -> arr.(at) <- make ()) patches;
  arr

let index_of name bindings =
  let rec loop i = function
    | [] -> None
    | b :: rest -> if b.bname = name then Some (i, b) else loop (i + 1) rest
  in
  loop 0 bindings

type ctx = {
  linker : linker;
  mutable patches : (int * (unit -> Instr.instr)) list;
  e : emitter;
  env : cenv;
}

let rec compile_expr ctx ~tail expr =
  match expr with
  | Quote d -> compile_quote ctx d
  | Var name -> compile_var ctx name
  | Set (name, e) ->
      compile_expr ctx ~tail:false e;
      compile_set ctx name
  | If (c, t, f) ->
      compile_expr ctx ~tail:false c;
      let else_pos = ref (-1) and end_pos = ref (-1) in
      let at_brf = ctx.e.len in
      emit ctx.e (Instr.Jump (-1));
      ctx.patches <- (at_brf, fun () -> Instr.Branch_false !else_pos) :: ctx.patches;
      compile_expr ctx ~tail t;
      if tail then begin
        (* No join: the then-arm returns explicitly (dead code when it ended
           in a tail call), the else-arm flows to the clause's Return. *)
        emit ctx.e Instr.Return;
        else_pos := ctx.e.len;
        compile_expr ctx ~tail f
      end
      else begin
        let at_jmp = ctx.e.len in
        emit ctx.e (Instr.Jump (-1));
        ctx.patches <- (at_jmp, fun () -> Instr.Jump !end_pos) :: ctx.patches;
        else_pos := ctx.e.len;
        compile_expr ctx ~tail f;
        end_pos := ctx.e.len
      end
  | Begin [] -> emit ctx.e (Instr.Imm Gbc_runtime.Word.void)
  | Begin es ->
      let rec loop = function
        | [] -> ()
        | [ last ] -> compile_expr ctx ~tail last
        | e :: rest ->
            compile_expr ctx ~tail:false e;
            loop rest
      in
      loop es
  | Lambda lam -> compile_lambda ctx lam
  | App (f, args) ->
      List.iter
        (fun a ->
          compile_expr ctx ~tail:false a;
          emit ctx.e Instr.Push)
        args;
      compile_expr ctx ~tail:false f;
      emit ctx.e (if tail then Instr.Tail_call (List.length args) else Instr.Call (List.length args))

and compile_quote ctx d =
  let open Gbc_runtime in
  match d with
  | Sexpr.Int n -> emit ctx.e (Instr.Imm (Word.of_fixnum n))
  | Sexpr.Bool b -> emit ctx.e (Instr.Imm (Word.of_bool b))
  | Sexpr.Char c -> emit ctx.e (Instr.Imm (Word.of_char c))
  | Sexpr.Null -> emit ctx.e (Instr.Imm Word.nil)
  | _ -> emit ctx.e (Instr.Const (ctx.linker.add_const d))

and compile_var ctx name =
  match index_of name ctx.env.locals with
  | Some (i, b) ->
      emit ctx.e (Instr.Local_ref i);
      if b.boxed then emit ctx.e Instr.Unbox
  | None -> (
      match index_of name ctx.env.free with
      | Some (i, b) ->
          emit ctx.e (Instr.Free_ref i);
          if b.boxed then emit ctx.e Instr.Unbox
      | None -> emit ctx.e (Instr.Global_ref (ctx.linker.global_cell name)))

and compile_set ctx name =
  match index_of name ctx.env.locals with
  | Some (i, b) ->
      assert b.boxed;
      emit ctx.e (Instr.Local_set_box i)
  | None -> (
      match index_of name ctx.env.free with
      | Some (i, b) ->
          assert b.boxed;
          emit ctx.e (Instr.Free_set_box i)
      | None -> emit ctx.e (Instr.Global_set (ctx.linker.global_cell name)))

and compile_lambda ctx { lam_name; clauses } =
  (* Free variables: those used by any clause and bound in the enclosing
     environment (anything else is a global reference). *)
  let enclosing name =
    index_of name ctx.env.locals <> None || index_of name ctx.env.free <> None
  in
  let free_set =
    List.fold_left (fun acc c -> free_vars (clause_bound c) c.body acc) SSet.empty clauses
  in
  let free_names = List.filter enclosing (SSet.elements free_set) in
  (* Their boxedness comes from the enclosing binding. *)
  let free_bindings =
    List.map
      (fun name ->
        match index_of name ctx.env.locals with
        | Some (_, b) -> { bname = name; boxed = b.boxed }
        | None -> (
            match index_of name ctx.env.free with
            | Some (_, b) -> { bname = name; boxed = b.boxed }
            | None -> assert false))
      free_names
  in
  let compiled_clauses = List.map (compile_clause ctx.linker ~free_bindings) clauses in
  let code_id = ctx.linker.add_code { Instr.name = lam_name; clauses = compiled_clauses } in
  (* Capture: push the raw slot (value, or box for assigned variables). *)
  List.iter
    (fun name ->
      (match index_of name ctx.env.locals with
      | Some (i, _) -> emit ctx.e (Instr.Local_ref i)
      | None -> (
          match index_of name ctx.env.free with
          | Some (i, _) -> emit ctx.e (Instr.Free_ref i)
          | None -> assert false));
      emit ctx.e Instr.Push)
    free_names;
  emit ctx.e (Instr.Make_closure { code_id; nfree = List.length free_names })

and compile_clause linker ~free_bindings c =
  let c = { c with body = simplify_in (clause_bound c) c.body } in
  let assigned = assigned_vars c.body SSet.empty in
  let param_binding p = { bname = p; boxed = SSet.mem p assigned } in
  let locals = List.map param_binding (c.params @ Option.to_list c.rest) in
  let env = { locals; free = free_bindings } in
  let e = emitter () in
  List.iteri (fun i b -> if b.boxed then emit e (Instr.Box_local i)) locals;
  let ctx = { linker; patches = []; e; env } in
  compile_expr ctx ~tail:true c.body;
  emit e Instr.Return;
  {
    Instr.required = List.length c.params;
    rest = c.rest <> None;
    instrs = finish e ctx.patches;
  }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

(* A top-level form compiles to a zero-argument code block ending in Halt,
   with acc holding the form's value. *)
let compile_toplevel_expr linker expr =
  let e = emitter () in
  let ctx = { linker; patches = []; e; env = empty_cenv } in
  compile_expr ctx ~tail:false (simplify_in SSet.empty expr);
  emit e Instr.Halt;
  { Instr.name = "toplevel"; clauses = [ { required = 0; rest = false; instrs = finish e ctx.patches } ] }

let rec compile_toplevel linker (d : Sexpr.t) : Instr.code list =
  match d with
  | Sexpr.Pair (Sexpr.Sym "define", rest) -> (
      match rest with
      | Sexpr.Pair (Sexpr.Sym name, Sexpr.Pair (init, Sexpr.Null)) ->
          let e = emitter () in
          let ctx = { linker; patches = []; e; env = empty_cenv } in
          compile_expr ctx ~tail:false (parse init);
          emit e (Instr.Global_define (linker.global_cell name));
          emit e (Instr.Imm Gbc_runtime.Word.void);
          emit e Instr.Halt;
          [ { Instr.name = "define " ^ name;
              clauses = [ { required = 0; rest = false; instrs = finish e ctx.patches } ] } ]
      | Sexpr.Pair (Sexpr.Sym name, Sexpr.Null) ->
          (* (define name): bind to #void *)
          compile_toplevel linker
            (Sexpr.list_of [ Sexpr.Sym "define"; Sexpr.Sym name; Sexpr.Bool false ])
      | Sexpr.Pair (Sexpr.Pair (Sexpr.Sym name, formals), body) ->
          let params, rst = parse_formals formals in
          let lam = Lambda { lam_name = name; clauses = [ make_clause params rst (as_list body) ] } in
          let e = emitter () in
          let ctx = { linker; patches = []; e; env = empty_cenv } in
          compile_expr ctx ~tail:false lam;
          emit e (Instr.Global_define (linker.global_cell name));
          emit e (Instr.Imm Gbc_runtime.Word.void);
          emit e Instr.Halt;
          [ { Instr.name = "define " ^ name;
              clauses = [ { required = 0; rest = false; instrs = finish e ctx.patches } ] } ]
      | _ -> error "bad define: %s" (Sexpr.to_string d))
  | Sexpr.Pair (Sexpr.Sym "begin", forms) ->
      List.concat_map (compile_toplevel linker) (as_list forms)
  | Sexpr.Pair (Sexpr.Sym "define-record-type", rest) ->
      compile_toplevel linker (expand_define_record_type rest)
  | _ -> [ compile_toplevel_expr linker (parse d) ]

(* R7RS-style record definitions, expanded to definitions over the
   %record primitives.  The type name symbol doubles as the runtime tag:

   (define-record-type point
     (make-point x y)
     point?
     (x point-x set-point-x!)
     (y point-y))                                                        *)
and expand_define_record_type rest =
  match as_list rest with
  | Sexpr.Sym type_name :: ctor_spec :: Sexpr.Sym pred_name :: field_specs ->
      let fields =
        List.map
          (fun spec ->
            match as_list spec with
            | [ Sexpr.Sym f; Sexpr.Sym acc ] -> (f, acc, None)
            | [ Sexpr.Sym f; Sexpr.Sym acc; Sexpr.Sym setter ] -> (f, acc, Some setter)
            | _ -> error "bad field spec: %s" (Sexpr.to_string spec))
          field_specs
      in
      let field_index f =
        let rec loop i = function
          | [] -> error "constructor argument %s is not a field" f
          | (g, _, _) :: rest -> if g = f then i else loop (i + 1) rest
        in
        loop 0 fields
      in
      let ctor_name, ctor_args =
        match as_list ctor_spec with
        | Sexpr.Sym c :: args -> (c, List.map sym_name args)
        | _ -> error "bad constructor spec: %s" (Sexpr.to_string ctor_spec)
      in
      List.iter (fun a -> ignore (field_index a)) ctor_args;
      let tag = Sexpr.list_of [ Sexpr.Sym "quote"; Sexpr.Sym type_name ] in
      let sym s = Sexpr.Sym s in
      let deflam name params body =
        Sexpr.list_of
          [ sym "define"; Sexpr.Pair (sym name, Sexpr.list_of (List.map sym params)); body ]
      in
      (* Constructor: fields in declared order; absent from the constructor
         spec means initialized to #f. *)
      let ctor_body =
        Sexpr.list_of
          (sym "%make-record" :: tag
          :: List.map
               (fun (f, _, _) ->
                 if List.mem f ctor_args then sym f else Sexpr.Bool false)
               fields)
      in
      let defs =
        deflam ctor_name ctor_args ctor_body
        :: deflam pred_name [ "r" ] (Sexpr.list_of [ sym "%record?"; sym "r"; tag ])
        :: List.concat
             (List.mapi
                (fun i (_, acc, setter) ->
                  let geti =
                    deflam acc [ "r" ]
                      (Sexpr.list_of [ sym "%record-field"; sym "r"; tag; Sexpr.Int i ])
                  in
                  match setter with
                  | None -> [ geti ]
                  | Some s ->
                      [
                        geti;
                        deflam s [ "r"; "v" ]
                          (Sexpr.list_of
                             [ sym "%record-field-set!"; sym "r"; tag; Sexpr.Int i; sym "v" ]);
                      ])
                fields)
      in
      Sexpr.Pair (sym "begin", Sexpr.list_of defs)
  | _ -> error "bad define-record-type"
