(** Tokenizer for Scheme source. *)

exception Error of string

type token =
  | LPAREN
  | RPAREN
  | QUOTE  (** ' *)
  | QUASIQUOTE  (** ` *)
  | UNQUOTE  (** , *)
  | UNQUOTE_SPLICING  (** ,@ *)
  | VECTOR_OPEN  (** #( *)
  | DOT
  | BOOL of bool
  | INT of int
  | FLOAT of float
  | CHAR of char
  | STRING of string
  | SYMBOL of string
  | EOF

type t = { src : string; mutable pos : int; mutable tok_start : int }

let create src = { src; pos = 0; tok_start = 0 }

(** Source offset at which the most recently returned token began (after
    skipping whitespace and comments).  Lets {!Reader.read_prefix} report
    how much input one datum consumed. *)
let token_start t = t.tok_start

let peek t = if t.pos < String.length t.src then Some t.src.[t.pos] else None
let advance t = t.pos <- t.pos + 1

let is_delimiter = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '[' | ']' | '"' | ';' | '\'' -> true
  | _ -> false

let is_symbol_char c = not (is_delimiter c)

let rec skip_atmosphere t =
  match peek t with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance t;
      skip_atmosphere t
  | Some ';' ->
      let rec to_eol () =
        match peek t with
        | Some '\n' | None -> ()
        | Some _ ->
            advance t;
            to_eol ()
      in
      to_eol ();
      skip_atmosphere t
  | _ -> ()

let read_string_literal t =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek t with
    | None -> raise (Error "unterminated string literal")
    | Some '"' -> advance t
    | Some '\\' ->
        advance t;
        (match peek t with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '"' -> Buffer.add_char buf '"'
        | Some c -> Buffer.add_char buf c
        | None -> raise (Error "unterminated escape"));
        advance t;
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        advance t;
        loop ()
  in
  loop ();
  Buffer.contents buf

let read_atom t =
  let start = t.pos in
  while match peek t with Some c when is_symbol_char c -> true | _ -> false do
    advance t
  done;
  String.sub t.src start (t.pos - start)

let read_hash t =
  advance t (* consume # *);
  match peek t with
  | Some 't' ->
      advance t;
      BOOL true
  | Some 'f' ->
      advance t;
      BOOL false
  | Some '(' ->
      advance t;
      VECTOR_OPEN
  | Some '\\' ->
      advance t;
      let name = read_atom t in
      let c =
        if String.length name = 1 then name.[0]
        else
          match String.lowercase_ascii name with
        | "space" -> ' '
        | "newline" | "linefeed" -> '\n'
        | "tab" -> '\t'
        | "return" -> '\r'
        | "nul" | "null" -> '\000'
        | "" -> (
            (* #\( and friends: the delimiter itself is the character. *)
            match peek t with
            | Some c ->
                advance t;
                c
            | None -> raise (Error "bad character literal"))
        | s -> raise (Error ("bad character literal: #\\" ^ s))
      in
      CHAR c
  | _ -> raise (Error "bad # syntax")

let classify_atom a =
  match int_of_string_opt a with
  | Some n -> INT n
  | None -> (
      match float_of_string_opt a with
      | Some f when String.exists (fun c -> c = '.' || c = 'e' || c = 'E') a -> FLOAT f
      | _ -> SYMBOL a)

let next t =
  skip_atmosphere t;
  t.tok_start <- t.pos;
  match peek t with
  | None -> EOF
  | Some '(' | Some '[' ->
      advance t;
      LPAREN
  | Some ')' | Some ']' ->
      advance t;
      RPAREN
  | Some '\'' ->
      advance t;
      QUOTE
  | Some '`' ->
      advance t;
      QUASIQUOTE
  | Some ',' ->
      advance t;
      if peek t = Some '@' then begin
        advance t;
        UNQUOTE_SPLICING
      end
      else UNQUOTE
  | Some '"' ->
      advance t;
      STRING (read_string_literal t)
  | Some '#' -> read_hash t
  | Some _ -> (
      let a = read_atom t in
      if a = "." then DOT
      else if a = "" then raise (Error "unexpected character")
      else classify_atom a)
