(** The reader: source text to {!Sexpr.t} data. *)

exception Error of string

val read_all : string -> Sexpr.t list
(** All data in the source.
    @raise Error on malformed input (lexical errors included). *)

val read_one : string -> Sexpr.t
(** Exactly one datum.
    @raise Error otherwise. *)

val read_prefix : string -> Sexpr.t option * int
(** One leading datum and the number of characters consumed; [None] when
    the input holds no datum.  The basis of the [read] primitive. *)
