(** The reader: tokens to {!Sexpr.t} data. *)

exception Error of string

let sym s = Sexpr.Sym s

type t = { lexer : Lexer.t; mutable tok : Lexer.token }

let create src =
  let lexer = Lexer.create src in
  { lexer; tok = Lexer.next lexer }

let advance t = t.tok <- Lexer.next t.lexer

let rec read_datum t =
  match t.tok with
  | Lexer.EOF -> None
  | _ -> Some (datum t)

and datum t =
  match t.tok with
  | Lexer.EOF -> raise (Error "unexpected end of input")
  | Lexer.LPAREN ->
      advance t;
      list_tail t
  | Lexer.RPAREN -> raise (Error "unexpected )")
  | Lexer.DOT -> raise (Error "unexpected .")
  | Lexer.QUOTE ->
      advance t;
      Sexpr.list_of [ sym "quote"; datum t ]
  | Lexer.QUASIQUOTE ->
      advance t;
      Sexpr.list_of [ sym "quasiquote"; datum t ]
  | Lexer.UNQUOTE ->
      advance t;
      Sexpr.list_of [ sym "unquote"; datum t ]
  | Lexer.UNQUOTE_SPLICING ->
      advance t;
      Sexpr.list_of [ sym "unquote-splicing"; datum t ]
  | Lexer.VECTOR_OPEN ->
      advance t;
      let rec elems acc =
        match t.tok with
        | Lexer.RPAREN ->
            advance t;
            Sexpr.Vector (Array.of_list (List.rev acc))
        | Lexer.EOF -> raise (Error "unterminated vector")
        | _ -> elems (datum t :: acc)
      in
      elems []
  | Lexer.BOOL b ->
      advance t;
      Sexpr.Bool b
  | Lexer.INT n ->
      advance t;
      Sexpr.Int n
  | Lexer.FLOAT f ->
      advance t;
      Sexpr.Float f
  | Lexer.CHAR c ->
      advance t;
      Sexpr.Char c
  | Lexer.STRING s ->
      advance t;
      Sexpr.Str s
  | Lexer.SYMBOL s ->
      advance t;
      Sexpr.Sym s

and list_tail t =
  match t.tok with
  | Lexer.RPAREN ->
      advance t;
      Sexpr.Null
  | Lexer.DOT ->
      advance t;
      let tail = datum t in
      (match t.tok with
      | Lexer.RPAREN ->
          advance t;
          tail
      | _ -> raise (Error "expected ) after dotted tail"))
  | Lexer.EOF -> raise (Error "unterminated list")
  | _ ->
      let head = datum t in
      Sexpr.Pair (head, list_tail t)

(** All data in [src]. *)
let read_all src =
  try
    let t = create src in
    let rec loop acc =
      match read_datum t with None -> List.rev acc | Some d -> loop (d :: acc)
    in
    loop []
  with Lexer.Error msg -> raise (Error msg)

(** One leading datum, with the number of characters it consumed (the
    offset where the following token begins) — the basis of the Scheme
    [read] primitive over ports.  [None] when the input holds no datum. *)
let read_prefix src =
  try
    let t = create src in
    match read_datum t with
    | None -> (None, String.length src)
    | Some d -> (Some d, Lexer.token_start t.lexer)
  with Lexer.Error msg -> raise (Error msg)

(** Exactly one datum. *)
let read_one src =
  match read_all src with
  | [ d ] -> d
  | [] -> raise (Error "no datum")
  | _ -> raise (Error "more than one datum")
