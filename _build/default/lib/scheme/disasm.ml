(** Bytecode disassembler: renders compiled code objects for inspection,
    used by the [disassemble] primitive and the compiler tests. *)

let pp_clause ppf (c : Instr.clause) =
  Format.fprintf ppf "  clause: %d arg%s%s@." c.Instr.required
    (if c.Instr.required = 1 then "" else "s")
    (if c.Instr.rest then " + rest" else "");
  Array.iteri
    (fun i instr -> Format.fprintf ppf "    %3d  %a@." i Instr.pp_instr instr)
    c.Instr.instrs

let pp_code ppf (code : Instr.code) =
  Format.fprintf ppf "%s:@." code.Instr.name;
  List.iter (pp_clause ppf) code.Instr.clauses

let code_to_string code = Format.asprintf "%a" pp_code code

(** Disassemble a closure word of machine [m]. *)
let closure m w =
  let h = Machine.heap m in
  if not (Machine.is_procedure m w) then
    Machine.error "disassemble: expected a procedure";
  let code_id = Gbc_runtime.Word.to_fixnum (Gbc_runtime.Obj.field h w 0) in
  if code_id < 0 then Printf.sprintf "#<primitive %d>\n" (-1 - code_id)
  else code_to_string (Machine.code m code_id)
