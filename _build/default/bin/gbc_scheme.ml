(* The Scheme system's command-line driver.

   Usage:
     gbc_scheme                 interactive REPL
     gbc_scheme FILE...         run files (on the shared machine, in order)
     gbc_scheme -e EXPR         evaluate one expression and print it
     gbc_scheme --gc-stats ...  print collector statistics at the end *)

open Gbc_scheme

let usage = "usage: gbc_scheme [--gc-stats] [-e EXPR] [FILE...]"

let print_stats m =
  let open Gbc_runtime in
  let h = Machine.heap m in
  let s = Heap.stats h in
  Format.printf "@.;; --- collector statistics ---@.%a@." Stats.pp_counters
    s.Stats.total;
  Format.printf ";; registrations %d, guardian polls %d, hits %d@."
    s.Stats.registrations s.Stats.guardian_polls s.Stats.guardian_hits;
  Format.printf ";; live words %d, live segments %d@." (Heap.live_words h)
    (Heap.live_segments h);
  Format.printf ";; census: %a@." Census.pp (Census.run h)

let repl m =
  print_endline ";; guardians-in-a-generation-based-gc Scheme";
  print_endline ";; (make-guardian), (weak-cons a d), (collect [gen]) are built in; ^D exits";
  let rec loop () =
    print_string "> ";
    match read_line () with
    | exception End_of_file -> print_newline ()
    | line ->
        (if String.trim line <> "" then
           match Machine.eval_string m line with
           | v ->
               let s = Printer.to_string (Machine.heap m) v in
               if s <> "#<void>" then print_endline s
           | exception Machine.Error msg ->
               Printf.printf "error: %s\n" msg;
               Machine.reset m
           | exception Reader.Error msg ->
               Printf.printf "read error: %s\n" msg
           | exception Compile.Error msg ->
               Printf.printf "compile error: %s\n" msg
           | exception Machine.Exit_signal -> exit 0);
        loop ()
  in
  loop ()

let run_file m path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  match Machine.eval_string m src with
  | _ -> ()
  | exception Machine.Exit_signal -> ()
  | exception Machine.Error msg ->
      Printf.eprintf "%s: error: %s\n" path msg;
      exit 1
  | exception Reader.Error msg ->
      Printf.eprintf "%s: read error: %s\n" path msg;
      exit 1
  | exception Compile.Error msg ->
      Printf.eprintf "%s: compile error: %s\n" path msg;
      exit 1

let () =
  let m = Scheme.create () in
  Machine.set_echo m true;
  let args = List.tl (Array.to_list Sys.argv) in
  let gc_stats = List.mem "--gc-stats" args in
  let args = List.filter (fun a -> a <> "--gc-stats") args in
  (match args with
  | [] -> repl m
  | [ "-e"; expr ] -> (
      match Machine.eval_string m expr with
      | v -> print_endline (Printer.to_string (Machine.heap m) v)
      | exception Machine.Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)
  | files when not (List.exists (fun a -> String.length a > 0 && a.[0] = '-') files) ->
      List.iter (run_file m) files
  | _ ->
      prerr_endline usage;
      exit 2);
  if gc_stats then print_stats m
