examples/transport_rehash.mli:
