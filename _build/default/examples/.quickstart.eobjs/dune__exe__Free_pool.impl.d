examples/free_pool.ml: Collector Free_pool Gbc Gbc_runtime Handle Heap List Obj Printf Word
