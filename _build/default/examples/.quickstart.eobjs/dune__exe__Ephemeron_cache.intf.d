examples/ephemeron_cache.mli:
