examples/guarded_table.ml: Array Collector Gbc Gbc_runtime Guarded_table Handle Heap Obj Printf Word
