examples/scheme_session.ml: Gbc_scheme List Machine Printer Printf Reader Scheme Sexpr
