examples/guarded_ports.ml: Config Ctx Fun Gbc Gbc_runtime Gbc_vfs Guarded_port List Obj Port Printf Runtime Vfs Word
