examples/quickstart.mli:
