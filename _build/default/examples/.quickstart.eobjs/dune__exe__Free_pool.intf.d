examples/free_pool.mli:
