examples/quickstart.ml: Collector Gbc Guardian Handle Heap Obj Printf Stats Weak_pair Word
