examples/guarded_ports.mli:
