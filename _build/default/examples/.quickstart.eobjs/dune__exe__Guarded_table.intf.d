examples/guarded_table.mli:
