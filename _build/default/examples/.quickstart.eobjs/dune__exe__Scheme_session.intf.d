examples/scheme_session.mli:
