examples/ephemeron_cache.ml: Array Collector Gbc Gbc_runtime Handle Heap Obj Printf Weak_eq_table Will_executor Word
