examples/transport_rehash.ml: Array Collector Eq_table Fun Gbc Gbc_runtime Handle Heap Obj Option Printf Word
