(* The paper's Section 3 session, replayed through the Scheme system on the
   simulated heap.  Output mimics a REPL transcript; the responses match
   the paper's.

   Run with: dune exec examples/scheme_session.exe *)

open Gbc_scheme

let () =
  let m = Scheme.create () in
  let repl src =
    List.iter
      (fun d ->
        Printf.printf "> %s\n" (Sexpr.to_string d);
        let v = Machine.eval_datum m d in
        let s = Printer.to_string (Machine.heap m) v in
        if s <> "#<void>" then Printf.printf "%s\n" s)
      (Reader.read_all src)
  in
  print_endline ";; --- basic registration and retrieval ---";
  repl
    {|
(define G (make-guardian))
(define x (cons 'a 'b))
(G x)
(G)
(set! x #f)
(collect 4)
(G)
(G)
|};
  print_endline "\n;; --- an object may be registered more than once ---";
  repl
    {|
(define G (make-guardian))
(define x (cons 'a 'b))
(G x)
(G x)
(set! x #f)
(collect 4)
(G)
(G)
(G)
|};
  print_endline "\n;; --- or with more than one guardian ---";
  repl
    {|
(define G (make-guardian))
(define H (make-guardian))
(define x (cons 'a 'b))
(G x)
(H x)
(set! x #f)
(collect 4)
(G)
(H)
|};
  print_endline "\n;; --- one can even register one guardian with another ---";
  repl
    {|
(define G (make-guardian))
(define H (make-guardian))
(define x (cons 'a 'b))
(G H)
(H x)
(set! x #f)
(set! H #f)
(collect 4)
((G))
|};
  print_endline "\n;; --- guardians work with weak pairs ---";
  repl
    {|
(define G (make-guardian))
(define x (cons 'a 'b))
(define wp (weak-cons x '()))
(G x)
(set! x #f)
(collect 4)
(car wp)
(eq? (car wp) (G))
|};
  print_endline "\n;; --- conservative transport guardian (paper's code) ---";
  repl
    {|
(define tg (make-transport-guardian))
(define y (cons 1 2))
(tg y)
(collect 0)
(eq? (tg) y)
(tg)
|}
