(* Guarded ports: the paper's motivating example, measured.

   A workload opens a port per record, writes a little, and — because of
   "exceptions and nonlocal exits" — sometimes forgets to close it.  With a
   descriptor limit of 16, the unguarded run dies of descriptor exhaustion
   and loses buffered output; the guarded run recovers both.

   Run with: dune exec examples/guarded_ports.exe *)

open Gbc
open Gbc_runtime

let records = 200

let workload ctx ~open_port =
  let h = Ctx.heap ctx in
  let completed = ref 0 in
  (try
     for i = 0 to records - 1 do
       let p = open_port (Printf.sprintf "record-%d.txt" i) in
       Port.write_string ctx p (Printf.sprintf "record %d payload" i);
       (* Half the records hit an early exit before the close. *)
       if i mod 2 = 0 then begin
         Port.close ctx p
       end;
       incr completed;
       (* Allocation churn; safepoints let collections happen. *)
       for j = 0 to 500 do
         ignore (Obj.cons h (Word.of_fixnum j) Word.nil)
       done;
       Runtime.safepoint h
     done
   with Gbc_vfs.Vfs.Descriptor_exhausted ->
     Printf.printf "  !! descriptor exhausted after %d records\n" !completed);
  !completed

let () =
  let config = Config.v ~gen0_trigger_words:4096 () in

  print_endline "--- without guardians ---";
  let ctx = Ctx.create ~config ~fd_limit:16 () in
  let done_ = workload ctx ~open_port:(fun name -> Port.open_output ctx name) in
  Printf.printf "  records completed: %d/%d\n" done_ records;
  Printf.printf "  descriptors leaked: %d\n" (Vfs.leaked (Ctx.vfs ctx));

  print_endline "--- with the port guardian ---";
  let ctx = Ctx.create ~config ~fd_limit:16 () in
  let gp = Guarded_port.create ctx in
  (* The paper's idiom: close dropped ports after every collection. *)
  Guarded_port.install_collect_handler gp;
  let done_ = workload ctx ~open_port:(fun name -> Guarded_port.open_output gp name) in
  Guarded_port.exit gp;
  Printf.printf "  records completed: %d/%d\n" done_ records;
  Printf.printf "  descriptors leaked: %d\n" (Vfs.leaked (Ctx.vfs ctx));
  Printf.printf "  ports closed by the guardian: %d\n" (Guarded_port.closed_by_guardian gp);
  Printf.printf "  buffered bytes rescued at close: %d\n" (Guarded_port.flushed_bytes gp);
  (* Every record's payload reached its file. *)
  let all_present =
    List.for_all
      (fun i ->
        Vfs.read_file (Ctx.vfs ctx) (Printf.sprintf "record-%d.txt" i)
        = Printf.sprintf "record %d payload" i)
      (List.init records Fun.id)
  in
  Printf.printf "  all %d payloads on disk: %b\n" records all_present
