(* Free-list recycling (paper §1): large fixed-structure objects — think
   bitmaps backing graphical displays — are expensive to build, so reuse
   freed ones instead of rebuilding.

   Run with: dune exec examples/free_pool.exe *)

open Gbc
open Gbc_runtime

let bitmap_words = 512

(* "Expensive" initialization we would rather not repeat. *)
let build_count = ref 0

let build h =
  incr build_count;
  let v = Obj.make_vector h ~len:bitmap_words ~init:(Word.of_fixnum 0) in
  for i = 0 to bitmap_words - 1 do
    Obj.vector_set h v i (Word.of_fixnum (i * 31))
  done;
  v

let () =
  let h = Heap.create () in
  let pool = Free_pool.create ~capacity:8 h ~build in
  (* 500 frames, each using up to 4 bitmaps and dropping them. *)
  let in_use = ref [] in
  for frame = 0 to 499 do
    let bm = Handle.create h (Free_pool.acquire pool) in
    in_use := bm :: !in_use;
    if List.length !in_use > 4 then begin
      match List.rev !in_use with
      | oldest :: rest ->
          Handle.free oldest;
          in_use := List.rev rest
      | [] -> ()
    end;
    if frame mod 10 = 9 then ignore (Collector.collect h ~gen:(Heap.max_generation h))
  done;
  Printf.printf "frames rendered:        500\n";
  Printf.printf "bitmaps built:          %d\n" (Free_pool.built pool);
  Printf.printf "bitmaps recycled:       %d\n" (Free_pool.recycled pool);
  Printf.printf "discarded (over cap):   %d\n" (Free_pool.discarded pool);
  Printf.printf
    "initializations avoided: %d of 500 (%d%%)\n"
    (Free_pool.recycled pool)
    (Free_pool.recycled pool * 100 / 500);
  assert (!build_count = Free_pool.built pool)
