(* Quickstart: the guardian lifecycle through the OCaml API.

   Run with: dune exec examples/quickstart.exe *)

open Gbc

let () =
  (* A heap with the default configuration: 4 KiB segments, generations
     0..4, stop-and-copy with guardians and weak pairs. *)
  let h = Heap.create () in

  (* Guardians are heap objects; Handle roots them for OCaml code. *)
  let guardian = Handle.create h (Guardian.make h) in

  (* Register an object for preservation. *)
  let x = Obj.cons h (Word.of_fixnum 1) (Word.of_fixnum 2) in
  Guardian.register h (Handle.get guardian) x;

  (* Keep x reachable for now. *)
  let x_root = Handle.create h x in

  ignore (Collector.collect h ~gen:0);
  (match Guardian.retrieve h (Handle.get guardian) with
  | Some _ -> assert false
  | None -> print_endline "x is still accessible: the guardian stays quiet");

  (* Drop the last reference and collect the generation x now lives in. *)
  Handle.free x_root;
  ignore (Collector.collect h ~gen:1);

  (match Guardian.retrieve h (Handle.get guardian) with
  | Some saved ->
      Printf.printf "guardian returned (%d . %d): saved from destruction\n"
        (Word.to_fixnum (Obj.car h saved))
        (Word.to_fixnum (Obj.cdr h saved))
  | None -> assert false);

  (* The inaccessible group is now empty again. *)
  assert (Guardian.retrieve h (Handle.get guardian) = None);
  print_endline "guardian is empty again";

  (* Weak pairs complement guardians: the car does not keep its target
     alive, and is set to #f once the target is reclaimed. *)
  let target = Obj.cons h (Word.of_fixnum 7) Word.nil in
  let wp = Handle.create h (Weak_pair.cons h target Word.nil) in
  ignore (Collector.collect h ~gen:0);
  Printf.printf "weak pointer after target died: %s\n"
    (if Weak_pair.broken h (Handle.get wp) then "broken (#f)" else "intact");

  (* Work counters behind the paper's claims. *)
  let s = Heap.stats h in
  Printf.printf
    "collections: %d, objects copied: %d, registrations: %d, resurrections: %d\n"
    s.Stats.total.Stats.collections s.Stats.total.Stats.objects_copied
    s.Stats.registrations s.Stats.total.Stats.guardian_resurrections
