(* Figure 1 in action: a symbol-table-like cache keyed by objects that come
   and go.  The guarded table drops dead associations automatically and
   pays only for the keys that actually died; the unguarded variant leaks.

   Run with: dune exec examples/guarded_table.exe *)

open Gbc
open Gbc_runtime

let key h i = Obj.cons h (Word.of_fixnum i) (Word.of_fixnum (i * i))
let stable_hash h w = if Word.is_pair_ptr w then Word.to_fixnum (Obj.car h w) else 0

let run ~guarded =
  let h = Heap.create () in
  let t = Guarded_table.create ~guarded h ~hash:stable_hash ~size:64 in
  (* A sliding window of 64 live keys over 1024 inserts. *)
  let window = Array.make 64 None in
  for i = 0 to 1023 do
    let k = Handle.create h (key h i) in
    Guarded_table.set t (Handle.get k) (Word.of_fixnum i);
    (match window.(i mod 64) with Some old -> Gbc_runtime.Handle.free old | None -> ());
    window.(i mod 64) <- Some k;
    if i mod 100 = 99 then ignore (Collector.collect h ~gen:(Heap.max_generation h))
  done;
  ignore (Collector.collect h ~gen:(Heap.max_generation h));
  (* One more access expunges whatever died since the last one. *)
  ignore (Guarded_table.lookup t (key h (-1)));
  Printf.printf "  associations held:     %4d (live window is 64)\n" (Guarded_table.count t);
  Printf.printf "  dead keys expunged:    %4d\n" (Guarded_table.expunged t);
  Printf.printf "  stale entries left:    %4d\n" (Guarded_table.stale_count t);
  Array.iter (function Some k -> Gbc_runtime.Handle.free k | None -> ()) window

let () =
  print_endline "--- guarded table (Figure 1) ---";
  run ~guarded:true;
  print_endline "--- same workload, guardian code removed ---";
  run ~guarded:false;
  print_endline
    "(the unguarded table keeps every association ever inserted; the paper's\n\
    \ shaded lines are what turn the scan-free weak table into a self-cleaning one)"
