(* A property cache that cannot leak: ephemeron-keyed values that mention
   their own keys, plus a will executor logging evictions.

   The classic failure: caching derived data about an object in a weak
   table, where the derived data contains a back-reference to the object.
   With weak pairs the back-reference keeps the key alive forever; with
   ephemerons the entry collapses as soon as the object dies.

   Run with: dune exec examples/ephemeron_cache.exe *)

open Gbc
open Gbc_runtime

let () =
  let h = Heap.create () in
  let cache = Weak_eq_table.create h ~size:64 in
  let wills = Will_executor.create h in
  let evictions = ref 0 in

  (* A "document": pair of (id . body-string).  Its cached "summary" is a
     vector mentioning the document itself — the dangerous back-reference. *)
  let summarize doc =
    let v = Obj.make_vector h ~len:3 ~init:Word.nil in
    Obj.vector_set h v 0 (Obj.string_of_ocaml h "summary");
    Obj.vector_set h v 1 doc;
    (* back-reference! *)
    Obj.vector_set h v 2 (Word.of_fixnum (Obj.string_length h (Obj.cdr h doc)));
    v
  in

  let with_summary doc =
    match Weak_eq_table.lookup cache doc with
    | Some s -> (s, `Hit)
    | None ->
        let s = summarize doc in
        Heap.with_cell h s (fun c ->
            Weak_eq_table.set cache doc (Heap.read_cell h c);
            Will_executor.register wills doc ~will:(fun _ _ -> incr evictions);
            (Heap.read_cell h c, `Miss))
  in

  (* Working set of 8 live documents, 1000 total processed. *)
  let live = Array.make 8 None in
  let hits = ref 0 and misses = ref 0 in
  for i = 0 to 999 do
    let doc =
      Obj.cons h (Word.of_fixnum i)
        (Obj.string_of_ocaml h (Printf.sprintf "body of document %d ..." i))
    in
    let doc = Handle.create h doc in
    (match live.(i mod 8) with Some old -> Handle.free old | None -> ());
    live.(i mod 8) <- Some doc;
    (* Touch the current document twice: second access must hit. *)
    (match with_summary (Handle.get doc) with _, `Hit -> incr hits | _, `Miss -> incr misses);
    (match with_summary (Handle.get doc) with _, `Hit -> incr hits | _, `Miss -> incr misses);
    if i mod 50 = 49 then begin
      ignore (Collector.collect h ~gen:(Heap.max_generation h));
      ignore (Will_executor.execute_all wills)
    end
  done;
  ignore (Collector.collect h ~gen:(Heap.max_generation h));
  ignore (Will_executor.execute_all wills);

  Weak_eq_table.prune_all cache;

  Printf.printf "documents processed:   1000\n";
  Printf.printf "cache hits/misses:     %d/%d\n" !hits !misses;
  Printf.printf "evictions logged:      %d (by wills, as documents died)\n" !evictions;
  Printf.printf "cache entries left:    %d (live working set is 8)\n"
    (Weak_eq_table.count cache);
  Printf.printf "heap live words:       %d (bounded despite 1000 back-referencing summaries)\n"
    (Heap.live_words h);
  assert (Weak_eq_table.count cache <= 8);
  assert (!evictions > 900)
