(* Transport guardians vs. full rehashing for eq hash tables (paper §3).

   Eq tables hash by address; a copying collector moves objects, so tables
   must rehash.  Rehashing everything after every collection wastes work on
   old keys that did not move; a transport guardian reports exactly the
   (conservatively) moved ones.

   Run with: dune exec examples/transport_rehash.exe *)

open Gbc
open Gbc_runtime

let n_keys = 1000
let minor_collections = 50

let run strategy =
  let h = Heap.create () in
  let t = Eq_table.create h ~strategy ~size:256 in
  let keys = Array.init n_keys (fun i -> Handle.create h (Obj.cons h (Word.of_fixnum i) Word.nil)) in
  Array.iteri (fun i k -> Eq_table.set t (Handle.get k) (Word.of_fixnum i)) keys;
  (* Age the keys into an old generation (touch the table after each
     collection so both strategies settle). *)
  for g = 0 to 2 do
    ignore (Collector.collect h ~gen:g);
    ignore (Eq_table.lookup t (Handle.get keys.(0)))
  done;
  let baseline = Eq_table.rehash_work t in
  (* Steady state: minor collections with young churn; the old keys never
     move. *)
  for _ = 1 to minor_collections do
    for j = 0 to 999 do
      ignore (Obj.cons h (Word.of_fixnum j) Word.nil)
    done;
    ignore (Collector.collect h ~gen:0);
    ignore (Eq_table.lookup t (Handle.get keys.(0)))
  done;
  let steady = Eq_table.rehash_work t - baseline in
  (* Sanity: the table still answers correctly. *)
  assert (
    Array.for_all
      (fun i -> Word.to_fixnum (Option.get (Eq_table.lookup t (Handle.get keys.(i)))) = i)
      (Array.init n_keys Fun.id));
  Array.iter Handle.free keys;
  steady

let () =
  Printf.printf "eq table with %d old keys, %d minor collections:\n" n_keys minor_collections;
  let full = run `Full_rehash in
  let transport = run `Transport in
  Printf.printf "  full rehash strategy:        %6d entries re-bucketed\n" full;
  Printf.printf "  transport guardian strategy: %6d entries re-bucketed\n" transport;
  Printf.printf
    "  (full pays %d keys x %d collections; the transport guardian's markers\n\
    \   aged along with the keys, so minor collections report nothing)\n"
    n_keys minor_collections
