(* The benchmark harness: one section per experiment in DESIGN.md /
   EXPERIMENTS.md (the paper has no numeric tables; these regenerate the
   complexity claims of the abstract and Section 1 plus the behaviour of
   every code artifact in Section 3).

   Run with: dune exec bench/main.exe *)

open Gbc_runtime
module Guarded_table = Gbc.Guarded_table
module Eq_table = Gbc.Eq_table
module Free_pool = Gbc.Free_pool
module Guarded_port = Gbc.Guarded_port
module Port = Gbc.Port
module Ctx = Gbc.Ctx
module Weak_set = Gbc_baselines.Weak_set
module Finalize = Gbc_baselines.Finalize
open Bench_util

let fx = Word.of_fixnum
let cfg = Config.v ~max_generation:3 ()

let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

(* Root a list of n fresh pairs; return the handle and the object words. *)
let alloc_rooted_pairs h n =
  let keep = Handle.create h Word.nil in
  let objs = Array.make n Word.nil in
  for i = 0 to n - 1 do
    let x = Obj.cons h (fx i) Word.nil in
    objs.(i) <- x;
    Handle.set keep (Obj.cons h x (Handle.get keep))
  done;
  (keep, objs)

(* Refresh [objs] from the rooted list after collections. *)
let refresh_objs h keep objs =
  let n = Array.length objs in
  let rec walk l i =
    if i >= 0 then begin
      objs.(i) <- Obj.car h l;
      walk (Obj.cdr h l) (i - 1)
    end
  in
  walk (Handle.get keep) (n - 1)

(* ================================================================== *)
(* E1: generation-friendliness (claim C1)                             *)

let e1 () =
  section
    "E1  generation-friendly collector: minor-GC guardian overhead vs. number \
     of old registered objects";
  print_endline
    "  Claim (abstract): overhead within the collector is proportional to the\n\
    \  work already done there; no overhead for objects in generations not\n\
    \  being collected.  The weak-set baseline must scan all N members to\n\
    \  discover even zero deaths.";
  let rows =
    List.map
      (fun n ->
        (* Guardians: N live objects registered, promoted old. *)
        let h = make_heap ~config:cfg () in
        let g = Handle.create h (Guardian.make h) in
        let keep, objs = alloc_rooted_pairs h n in
        Array.iter (fun x -> Guardian.register h (Handle.get g) x) objs;
        (* First minor GC: visits the N fresh entries once, promotes them. *)
        ignore (Collector.collect h ~gen:0);
        let first_visit = (Heap.stats h).Stats.last.Stats.protected_entries_visited in
        ignore (Collector.collect h ~gen:1);
        ignore (Collector.collect h ~gen:2);
        (* Steady state: a minor GC over fresh garbage. *)
        for i = 0 to 999 do
          ignore (Obj.cons h (fx i) Word.nil)
        done;
        let (_ : Collector.outcome), minor_us =
          time_once (fun () -> Collector.collect h ~gen:0)
        in
        let steady_visit = (Heap.stats h).Stats.last.Stats.protected_entries_visited in
        ignore keep;
        (* Weak-set baseline: N members promoted old; the mutator scans to
           learn of deaths after the same minor GC. *)
        let h2 = make_heap ~config:cfg () in
        let ws = Weak_set.create h2 in
        let keep2, objs2 = alloc_rooted_pairs h2 n in
        Array.iter (Weak_set.add ws) objs2;
        ignore (Collector.collect h2 ~gen:0);
        ignore (Collector.collect h2 ~gen:1);
        ignore (Collector.collect h2 ~gen:2);
        for i = 0 to 999 do
          ignore (Obj.cons h2 (fx i) Word.nil)
        done;
        ignore (Collector.collect h2 ~gen:0);
        let before = Weak_set.scan_steps ws in
        let deaths, scan_us = time_once (fun () -> Weak_set.scan_for_dropped ws) in
        let scan_work = Weak_set.scan_steps ws - before in
        ignore keep2;
        [
          string_of_int n;
          string_of_int first_visit;
          string_of_int steady_visit;
          fmt_us minor_us;
          string_of_int deaths;
          string_of_int scan_work;
          fmt_us scan_us;
        ])
      [ 1_000; 4_000; 16_000; 64_000 ]
  in
  table
    ~header:
      [
        "N old objects";
        "entries visited (1st GC)";
        "entries visited (steady minor GC)";
        "minor GC us";
        "weak-set deaths";
        "weak-set scan work";
        "weak-set scan us";
      ]
    rows;
  print_endline
    "  -> guardian column is 0 in steady state regardless of N (paper's claim);\n\
    \     the weak-set scan pays N every time to find 0 deaths.";
  (* E1b: the D1 ablation — same mechanism with a single (generation-0)
     protected list instead of per-generation lists. *)
  subsection "E1b  ablation (D1): single protected list vs per-generation lists";
  let ablation_rows =
    List.concat_map
      (fun friendly ->
        List.map
          (fun n ->
            let config = Config.v ~max_generation:3 ~generation_friendly_guardians:friendly () in
            let h = make_heap ~config () in
            let g = Handle.create h (Guardian.make h) in
            let keep, objs = alloc_rooted_pairs h n in
            Array.iter (fun x -> Guardian.register h (Handle.get g) x) objs;
            ignore (Collector.collect h ~gen:0);
            ignore (Collector.collect h ~gen:1);
            ignore (Collector.collect h ~gen:2);
            let (_ : Collector.outcome), us = time_once (fun () -> Collector.collect h ~gen:0) in
            let visited = (Heap.stats h).Stats.last.Stats.protected_entries_visited in
            ignore keep;
            [
              (if friendly then "per-generation (paper)" else "single list (ablation)");
              string_of_int n;
              string_of_int visited;
              fmt_us us;
            ])
          [ 4_000; 16_000; 64_000 ])
      [ true; false ]
  in
  table
    ~header:[ "protected lists"; "N old objects"; "entries visited by minor GC"; "minor GC us" ]
    ablation_rows;
  print_endline
    "  -> without per-generation lists the guardian overhead of a minor GC\n\
    \     grows linearly with the registered population — the cost the paper's\n\
    \     design eliminates."

(* ================================================================== *)
(* E2: mutator overhead proportional to clean-ups (claim C2)          *)

let e2 () =
  section "E2  mutator overhead proportional to clean-up actions performed";
  print_endline
    "  A guarded table with N live keys and d dead keys pays O(d) on the next\n\
    \  access; a weak-set-backed table pays O(N).";
  let key h i = Obj.cons h (fx i) (fx i) in
  let stable_hash h w = if Word.is_pair_ptr w then Word.to_fixnum (Obj.car h w) else 0 in
  let d = 16 in
  let rows =
    List.map
      (fun n ->
        (* Guarded table. *)
        let h = make_heap ~config:cfg () in
        let t = Guarded_table.create h ~hash:stable_hash ~size:1024 in
        let keep, objs = alloc_rooted_pairs h n in
        Array.iter (fun k -> Guarded_table.set t k (fx 0)) objs;
        full_collect h;
        refresh_objs h keep objs;
        ignore (Guarded_table.lookup t (key h (-1)));
        (* Kill d keys: rebuild the root list without the first d. *)
        Handle.set keep Word.nil;
        Array.iteri
          (fun i x -> if i >= d then Handle.set keep (Obj.cons h x (Handle.get keep)))
          objs;
        full_collect h;
        let steps0 = Guarded_table.expunge_steps t in
        let (), access_us =
          time_once (fun () -> ignore (Guarded_table.lookup t (key h (-1))))
        in
        let work = Guarded_table.expunge_steps t - steps0 in
        let expunged = Guarded_table.expunged t in
        (* Weak-set table baseline: find dead keys by scanning everything. *)
        let h2 = make_heap ~config:cfg () in
        let ws = Weak_set.create h2 in
        let keep2, objs2 = alloc_rooted_pairs h2 n in
        Array.iter (Weak_set.add ws) objs2;
        full_collect h2;
        refresh_objs h2 keep2 objs2;
        Handle.set keep2 Word.nil;
        Array.iteri
          (fun i x -> if i >= d then Handle.set keep2 (Obj.cons h2 x (Handle.get keep2)))
          objs2;
        full_collect h2;
        let before = Weak_set.scan_steps ws in
        let deaths, scan_us = time_once (fun () -> Weak_set.scan_for_dropped ws) in
        let scan_work = Weak_set.scan_steps ws - before in
        [
          string_of_int n;
          string_of_int expunged;
          string_of_int work;
          fmt_us access_us;
          string_of_int deaths;
          string_of_int scan_work;
          fmt_us scan_us;
        ])
      [ 256; 1_024; 4_096; 16_384 ]
  in
  table
    ~header:
      [
        "N live keys";
        "guardian: dead expunged";
        "guardian: work";
        "guardian: access us";
        "weak-set: deaths";
        "weak-set: scan work";
        "weak-set: scan us";
      ]
    rows;
  print_endline
    "  -> guardian work tracks d (16 deaths), independent of N; the weak-set\n\
    \     scan grows linearly with N."

(* ================================================================== *)
(* E3: Figure 1 guarded hash table under churn                        *)

let e3 () =
  section "E3  guarded hash table (Figure 1): self-cleaning under churn";
  let key h i = Obj.cons h (fx i) (fx i) in
  let stable_hash h w = if Word.is_pair_ptr w then Word.to_fixnum (Obj.car h w) else 0 in
  let churn ~guarded =
    let h = make_heap ~config:cfg () in
    let t = Guarded_table.create ~guarded h ~hash:stable_hash ~size:64 in
    let window = Array.make 64 None in
    for i = 0 to 4095 do
      let k = Handle.create h (key h i) in
      Guarded_table.set t (Handle.get k) (fx i);
      (match window.(i mod 64) with Some old -> Handle.free old | None -> ());
      window.(i mod 64) <- Some k;
      if i mod 256 = 255 then full_collect h
    done;
    full_collect h;
    ignore (Guarded_table.lookup t (key h (-1)));
    (t, window)
  in
  let tg, wg = churn ~guarded:true in
  let tu, wu = churn ~guarded:false in
  table
    ~header:[ "variant"; "inserts"; "live window"; "associations held"; "stale entries" ]
    [
      [
        "guarded (Figure 1)";
        "4096";
        "64";
        string_of_int (Guarded_table.count tg);
        string_of_int (Guarded_table.stale_count tg);
      ];
      [
        "unguarded";
        "4096";
        "64";
        string_of_int (Guarded_table.count tu);
        string_of_int (Guarded_table.stale_count tu);
      ];
    ];
  Array.iter (function Some k -> Handle.free k | None -> ()) wg;
  Array.iter (function Some k -> Handle.free k | None -> ()) wu;
  print_endline
    "  -> the guarded table stays bounded by the live set; the unguarded\n\
    \     variant accretes one dead association per dropped key.";
  (* Op-cost timing. *)
  let h = make_heap ~config:cfg () in
  let t = Guarded_table.create h ~hash:stable_hash ~size:1024 in
  let _keep, objs = alloc_rooted_pairs h 1024 in
  Array.iter (fun k -> Guarded_table.set t k (fx 1)) objs;
  let i = ref 0 in
  run_tests
    [
      Bechamel.Test.make ~name:"e3: guarded-table lookup (hit, no deaths)"
        (Bechamel.Staged.stage (fun () ->
             i := (!i + 1) land 1023;
             ignore (Guarded_table.lookup t objs.(!i))));
    ]

(* ================================================================== *)
(* E4: transport guardian vs full rehash                              *)

let e4 () =
  section "E4  eq-table rehashing: transport guardian vs full rehash";
  let n = 2000 and minors = 20 in
  let run strategy =
    let h = make_heap ~config:cfg () in
    let t = Eq_table.create h ~strategy ~size:512 in
    let keep, objs = alloc_rooted_pairs h n in
    Array.iteri (fun i k -> Eq_table.set t k (fx i)) objs;
    for g = 0 to 2 do
      ignore (Collector.collect h ~gen:g);
      refresh_objs h keep objs;
      ignore (Eq_table.lookup t objs.(0))
    done;
    let base = Eq_table.rehash_work t in
    let total_us = ref 0.0 in
    for _ = 1 to minors do
      for j = 0 to 499 do
        ignore (Obj.cons h (fx j) Word.nil)
      done;
      ignore (Collector.collect h ~gen:0);
      let (), us = time_once (fun () -> ignore (Eq_table.lookup t objs.(0))) in
      total_us := !total_us +. us
    done;
    (Eq_table.rehash_work t - base, !total_us)
  in
  let full_work, full_us = run `Full_rehash in
  let tr_work, tr_us = run `Transport in
  table
    ~header:
      [ "strategy"; "old keys"; "minor GCs"; "entries re-bucketed"; "total lookup us" ]
    [
      [
        "full rehash";
        string_of_int n;
        string_of_int minors;
        string_of_int full_work;
        fmt_us full_us;
      ];
      [
        "transport guardian";
        string_of_int n;
        string_of_int minors;
        string_of_int tr_work;
        fmt_us tr_us;
      ];
    ];
  print_endline
    "  -> the transport guardian's markers age with the keys: minor GCs report\n\
    \     nothing, so steady-state rehash work drops to ~0 (paper Section 3)."

(* ================================================================== *)
(* E5: guarded ports                                                  *)

let e5 () =
  section "E5  dropped ports: descriptors leaked and bytes lost";
  let records = 200 in
  let run ~guarded =
    let config = Config.v ~gen0_trigger_words:4096 () in
    let ctx = make_ctx ~config ~fd_limit:16 () in
    let h = Ctx.heap ctx in
    let gp = Guarded_port.create ctx in
    if guarded then Guarded_port.install_collect_handler gp;
    let completed = ref 0 in
    (try
       for i = 0 to records - 1 do
         let name = Printf.sprintf "r%d" i in
         let p =
           if guarded then Guarded_port.open_output gp name else Port.open_output ctx name
         in
         Port.write_string ctx p "payload";
         if i mod 2 = 0 then Port.close ctx p;
         incr completed;
         for j = 0 to 400 do
           ignore (Obj.cons h (fx j) Word.nil)
         done;
         Runtime.safepoint h
       done
     with Gbc_vfs.Vfs.Descriptor_exhausted -> ());
    if guarded then Guarded_port.exit gp;
    Runtime.set_collect_request_handler h None;
    ( !completed,
      Gbc_vfs.Vfs.leaked (Ctx.vfs ctx),
      Guarded_port.closed_by_guardian gp,
      Guarded_port.flushed_bytes gp )
  in
  let c1, l1, _, _ = run ~guarded:false in
  let c2, l2, closed, flushed = run ~guarded:true in
  table
    ~header:
      [ "variant"; "records completed"; "fds leaked"; "closed by guardian"; "bytes rescued" ]
    [
      [ "unguarded"; Printf.sprintf "%d/%d" c1 records; string_of_int l1; "-"; "-" ];
      [
        "guarded (paper §3)";
        Printf.sprintf "%d/%d" c2 records;
        string_of_int l2;
        string_of_int closed;
        string_of_int flushed;
      ];
    ];
  print_endline
    "  -> without guardians the workload dies of descriptor exhaustion; with\n\
    \     close-dropped-ports installed as the collect-request handler it\n\
    \     completes with zero leaks and no lost buffered output."

(* ================================================================== *)
(* E6: free-list recycling                                            *)

let e6 () =
  section "E6  free-list recycling of expensive objects";
  let build h = Obj.make_vector h ~len:256 ~init:(fx 7) in
  let run collect =
    let h = make_heap ~config:cfg () in
    let pool = Free_pool.create ~capacity:8 h ~build in
    for _ = 0 to 499 do
      ignore (Free_pool.acquire pool);
      collect h
    done;
    pool
  in
  (* Minor-only collections exhibit a genuinely generational effect: a
     recycled object lives in generation 1, so its next death is only
     proven by a generation-1 collection — reuse alternates. *)
  let minor = run (fun h -> ignore (Collector.collect h ~gen:0)) in
  let sched = run (fun h -> ignore (Runtime.collect_auto h)) in
  let full = run full_collect in
  let row name pool =
    [
      name;
      "500";
      string_of_int (Free_pool.built pool);
      string_of_int (Free_pool.recycled pool);
      string_of_int (Free_pool.recycled pool * 100 / 500);
    ]
  in
  table
    ~header:[ "collection schedule"; "acquires"; "built"; "recycled"; "reuse %" ]
    [
      row "minor only" minor;
      row "radix schedule" sched;
      row "full each time" full;
    ];
  print_endline
    "  -> recycled objects age into older generations; how quickly their next\n\
    \     death is noticed depends on the collection schedule.";
  let h2 = make_heap ~config:cfg () in
  let pool2 = Free_pool.create ~capacity:8 h2 ~build in
  ignore (Free_pool.acquire pool2);
  full_collect h2;
  run_tests
    [
      Bechamel.Test.make ~name:"e6: acquire via pool (recycled)"
        (Bechamel.Staged.stage (fun () ->
             ignore (Free_pool.acquire pool2);
             full_collect h2));
      Bechamel.Test.make ~name:"e6: build from scratch + gc"
        (Bechamel.Staged.stage (fun () ->
             ignore (build h2);
             full_collect h2));
    ]

(* ================================================================== *)
(* E7: pause proportional to live data, not garbage                   *)

let e7 () =
  section "E7  collection cost proportional to retained data, not to garbage";
  let measure ~live ~garbage =
    let h = make_heap ~config:cfg () in
    let keep, _ = alloc_rooted_pairs h live in
    for i = 0 to garbage - 1 do
      ignore (Obj.cons h (fx i) Word.nil)
    done;
    let (_ : Collector.outcome), us = time_once (fun () -> Collector.collect h ~gen:0) in
    let copied = (Heap.stats h).Stats.last.Stats.words_copied in
    ignore keep;
    (copied, us)
  in
  print_endline "  fixed live set (1000 pairs), varying garbage:";
  let rows =
    List.map
      (fun g ->
        let copied, us = measure ~live:1000 ~garbage:g in
        [ string_of_int g; string_of_int copied; fmt_us us ])
      [ 1_000; 10_000; 100_000; 400_000 ]
  in
  table ~header:[ "garbage pairs"; "words copied"; "pause us" ] rows;
  print_endline "  fixed garbage (100k pairs), varying live set:";
  let rows =
    List.map
      (fun l ->
        let copied, us = measure ~live:l ~garbage:100_000 in
        [ string_of_int l; string_of_int copied; fmt_us us ])
      [ 1_000; 4_000; 16_000; 64_000 ]
  in
  table ~header:[ "live pairs"; "words copied"; "pause us" ] rows;
  print_endline
    "  -> copying work is exactly proportional to the live set and flat in the\n\
    \     amount of garbage (Section 1's argument for collection over explicit\n\
    \     freeing)."

(* ================================================================== *)
(* E8: Dickey register-for-finalization restrictions and cost         *)

let e8 () =
  section "E8  register-for-finalization baseline (Dickey, Section 2)";
  let n = 10_000 in
  let h = make_heap ~config:cfg () in
  let f = Finalize.create h in
  let keep, objs = alloc_rooted_pairs h n in
  let alloc_errors = ref 0 in
  Array.iter
    (fun x ->
      Finalize.register f x ~thunk:(fun () ->
          (* The restriction: allocation inside a finalization thunk fails. *)
          try ignore (Obj.cons h (fx 0) Word.nil)
          with Heap.Allocation_forbidden -> incr alloc_errors))
    objs;
  ignore (Collector.collect h ~gen:0);
  let scan_per_gc = Finalize.scan_steps f in
  ignore (Collector.collect h ~gen:0);
  let scan_two = Finalize.scan_steps f in
  Handle.set keep Word.nil;
  full_collect h;
  table
    ~header:
      [
        "registrations";
        "registry scans per minor GC";
        "thunks run";
        "allocation errors inside thunks";
      ]
    [
      [
        string_of_int n;
        Printf.sprintf "%d then %d" scan_per_gc (scan_two - scan_per_gc);
        string_of_int (Finalize.finalized f);
        string_of_int !alloc_errors;
      ];
    ];
  print_endline
    "  -> every collection rescans the whole registry (guardians: 0 in steady\n\
    \     state, see E1), and clean-up code cannot allocate — the restriction\n\
    \     guardians remove."

(* ================================================================== *)
(* E9: tconc operation costs (Figures 2-4)                            *)

let e9 () =
  section "E9  tconc protocol: operation costs and interleaving safety";
  let h = make_heap ~config:cfg () in
  let tc = Handle.create h (Tconc.make h) in
  run_tests
    [
      Bechamel.Test.make ~name:"e9: collector enqueue + mutator dequeue"
        (Bechamel.Staged.stage (fun () ->
             Tconc.enqueue_with h
               ~alloc_pair:(fun a b -> Obj.cons h a b)
               (Handle.get tc) (fx 1);
             ignore (Tconc.dequeue h (Handle.get tc))));
      Bechamel.Test.make ~name:"e9: dequeue on empty"
        (Bechamel.Staged.stage (fun () -> ignore (Tconc.dequeue h (Handle.get tc))));
    ];
  (* Interleaving safety (summarized; the full checker runs in the tests). *)
  let safe = ref 0 and total = ref 0 in
  List.iter
    (fun initial ->
      for pause = 0 to Tconc.Dequeue.total_steps do
        incr total;
        let h = make_heap () in
        let tc = Tconc.make h in
        List.iter (fun i -> Tconc.mutator_enqueue h tc (fx i)) initial;
        let d = Tconc.Dequeue.start tc in
        let steps = ref 0 and finished = ref false and result = ref None in
        let enqueued = ref false in
        while not !finished do
          if !steps = pause && not !enqueued then begin
            enqueued := true;
            Tconc.enqueue_with h ~alloc_pair:(fun a b -> Obj.cons h a b) tc (fx 99)
          end;
          match Tconc.Dequeue.step h d with
          | `More -> incr steps
          | `Done r ->
              result := r;
              finished := true
        done;
        let contents = List.map Word.to_fixnum (Tconc.to_list h tc) in
        let dequeued = match !result with Some w -> [ Word.to_fixnum w ] | None -> [] in
        let expect = if !enqueued then initial @ [ 99 ] else initial in
        if List.sort compare (dequeued @ contents) = List.sort compare expect then incr safe
      done)
    [ []; [ 1 ]; [ 1; 2 ]; [ 1; 2; 3 ] ];
  Printf.printf "  interleaving points checked: %d, linearizable: %d\n" !total !safe

(* ================================================================== *)
(* E12 (extension): ephemerons vs weak pairs on key-in-value tables    *)

let e12 () =
  section
    "E12  extension: ephemerons vs weak pairs when values reference their keys";
  print_endline
    "  A weak table whose values mention their own keys retains every entry\n\
    \  forever (key <- value <- weak cdr); ephemeron entries collapse.  This\n\
    \  is the post-paper extension Chez Scheme later adopted.";
  let n = 1000 in
  let run ~ephemeron =
    let h = make_heap ~config:cfg () in
    let keep = Handle.create h Word.nil in
    let baseline = Heap.live_words h in
    for i = 0 to n - 1 do
      let key = Obj.cons h (fx i) Word.nil in
      let value = Obj.cons h key (fx i) in
      (* value references key *)
      let entry =
        if ephemeron then Obj.ephemeron_cons h key value else Obj.weak_cons h key value
      in
      Handle.set keep (Obj.cons h entry (Handle.get keep))
    done;
    (* All keys dropped (only the entries themselves are rooted). *)
    full_collect h;
    full_collect h;
    let retained = Heap.live_words h - baseline in
    let s = (Heap.stats h).Stats.total in
    (retained, s.Stats.ephemerons_broken, s.Stats.weak_pointers_broken)
  in
  let weak_ret, _, weak_broken = run ~ephemeron:false in
  let eph_ret, eph_broken, _ = run ~ephemeron:true in
  table
    ~header:[ "entry kind"; "entries"; "words retained"; "entries broken" ]
    [
      [ "weak pair (key in value leaks)"; string_of_int n; string_of_int weak_ret; string_of_int weak_broken ];
      [ "ephemeron"; string_of_int n; string_of_int eph_ret; string_of_int eph_broken ];
    ];
  print_endline
    "  -> weak pairs keep every key alive through their own values;\n\
    \     ephemerons reclaim everything but the table spine."

(* ================================================================== *)
(* E13: why generation-based at all — generational vs two-space        *)

let e13 () =
  section "E13  generational (paper) vs non-generational two-space collection";
  print_endline
    "  Same workload — a long-lived structure plus heavy short-lived churn —\n\
    \  under the paper's generational schedule and under a two-space collector\n\
    \  (max_generation = 0, every collection copies all live data).";
  let live_pairs = 50_000 and churn_rounds = 50 and churn_per_round = 20_000 in
  let run ~max_generation =
    let config = Config.v ~max_generation ~gen0_trigger_words:(64 * 1024) () in
    let h = make_heap ~config () in
    let keep, _ = alloc_rooted_pairs h live_pairs in
    (* settle the long-lived data *)
    for _ = 0 to max_generation do
      ignore (Runtime.collect_auto h)
    done;
    let t0 = Unix.gettimeofday () in
    for _round = 1 to churn_rounds do
      for i = 0 to churn_per_round - 1 do
        ignore (Obj.cons h (fx i) Word.nil)
      done;
      ignore (Runtime.collect_auto h)
    done;
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    let s = (Heap.stats h).Stats.total in
    ignore keep;
    (s.Stats.collections, s.Stats.words_copied, elapsed_ms)
  in
  let gcol, gcop, gms = run ~max_generation:4 in
  let tcol, tcop, tms = run ~max_generation:0 in
  table
    ~header:
      [ "collector"; "collections"; "total words copied"; "total GC+churn ms" ]
    [
      [ "generational (5 gens, radix 4)"; string_of_int gcol; string_of_int gcop;
        Printf.sprintf "%.1f" gms ];
      [ "two-space (1 gen)"; string_of_int tcol; string_of_int tcop;
        Printf.sprintf "%.1f" tms ];
    ];
  print_endline
    "  -> the two-space collector re-copies the long-lived data at every\n\
    \     collection; the generational schedule touches it only on the rare\n\
    \     older-generation collections — the premise the guardian machinery\n\
    \     is designed not to spoil (see E1)."

(* ================================================================== *)
(* E14: card-marked remembered set — dirty-scan work vs segment size   *)

let e14 () =
  section
    "E14  card-marked remembered set: dirty-scan work scales with mutated \
     cards, not segment size";
  print_endline
    "  One old-to-young store is made into each of 32 old segments; a minor\n\
    \  GC must then scan exactly the mutated cards.  Under the pre-card\n\
    \  segment-granular remembered set the scan work would be the whole used\n\
    \  part of every dirty segment (the 'candidate words' column).";
  let nvecs = 32 in
  let rows =
    List.map
      (fun seg_words ->
        let config =
          Config.v ~segment_words:seg_words ~max_generation:3 ~card_words:512 ()
        in
        let h = make_heap ~config () in
        (* One vector per segment: each nearly fills its segment. *)
        let vlen = seg_words - 2 in
        let keep = Handle.create h Word.nil in
        for _ = 1 to nvecs do
          let v = Obj.make_vector h ~len:vlen ~init:(fx 0) in
          Handle.set keep (Obj.cons h v (Handle.get keep))
        done;
        (* Promote the vectors old (generation 2). *)
        ignore (Collector.collect h ~gen:0);
        ignore (Collector.collect h ~gen:1);
        (* Mutate exactly one slot per old segment with a young pointer. *)
        let rec each l =
          if not (Word.equal l Word.nil) then begin
            let v = Obj.car h l in
            Obj.vector_set h v (vlen / 2) (Obj.cons h (fx 1) Word.nil);
            each (Obj.cdr h l)
          end
        in
        each (Handle.get keep);
        (* Some young churn, then the minor collection being measured. *)
        for i = 0 to 999 do
          ignore (Obj.cons h (fx i) Word.nil)
        done;
        let (_ : Collector.outcome), minor_us =
          time_once (fun () -> Collector.collect h ~gen:0)
        in
        let st = (Heap.stats h).Stats.last in
        ignore keep;
        let cards_per_seg =
          float_of_int st.Stats.cards_scanned
          /. float_of_int (max 1 st.Stats.dirty_segments_scanned)
        in
        let ratio =
          float_of_int st.Stats.card_words_swept
          /. float_of_int (max 1 st.Stats.dirty_candidate_words)
        in
        Gc_report.add_extra
          (Printf.sprintf "e14_words_ratio_seg%d" seg_words)
          ratio;
        Gc_report.add_extra
          (Printf.sprintf "e14_cards_per_segment_seg%d" seg_words)
          cards_per_seg;
        [
          string_of_int seg_words;
          string_of_int st.Stats.dirty_segments_scanned;
          string_of_int st.Stats.cards_scanned;
          Printf.sprintf "%.2f" cards_per_seg;
          string_of_int st.Stats.card_words_swept;
          string_of_int st.Stats.dirty_candidate_words;
          Printf.sprintf "%.4f" ratio;
          fmt_us minor_us;
        ])
      [ 2048; 8192; 32768 ]
  in
  table
    ~header:
      [
        "segment words";
        "dirty segs";
        "cards scanned";
        "cards/seg";
        "words swept";
        "candidate words";
        "ratio";
        "minor GC us";
      ]
    rows;
  print_endline
    "  -> cards/seg stays ~1 and the swept/candidate ratio falls with the\n\
    \     segment size: dirty-scan work tracks mutated cards, not segments.";
  (* The write barrier itself, timed: pointer stores into a young segment
     (fast path: one compare) vs repeated old-to-young stores (card mark). *)
  subsection "write-barrier fast vs slow path (Bechamel, ns/store)";
  let h = make_heap ~config:cfg () in
  let young = Handle.create h (Obj.cons h (fx 0) Word.nil) in
  let old_v = Handle.create h (Obj.make_vector h ~len:64 ~init:(fx 0)) in
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:1);
  let young_pair = Obj.cons h (fx 1) Word.nil in
  Handle.set young young_pair;
  run_tests
    [
      Bechamel.Test.make ~name:"store young->young (barrier fast path)"
        (Bechamel.Staged.stage (fun () ->
             Obj.set_car h (Handle.get young) (fx 2)));
      Bechamel.Test.make ~name:"store old->young (card mark)"
        (Bechamel.Staged.stage (fun () ->
             Obj.vector_set h (Handle.get old_v) 0 (Handle.get young)));
    ]

(* ================================================================== *)
(* E16: heap images — save/load throughput and cold start              *)

let e_image () =
  section "E16  heap images: save/load throughput, size, cold start";
  print_endline
    "  A gbc-image/1 save serializes every live segment with pointers\n\
    \  rewritten to a canonical numbering; a load rebuilds a fresh heap and\n\
    \  relocates back.  Throughput is for in-memory bytes (no disk in the\n\
    \  timed region).";
  let best_of n f =
    let r0, us0 = time_once f in
    let r = ref r0 and best = ref us0 in
    for _ = 2 to n do
      let r', us = time_once f in
      r := r';
      if us < !best then best := us
    done;
    (!r, !best)
  in
  let rows =
    List.map
      (fun n ->
        let h = make_heap ~config:cfg () in
        let keep = Handle.create h Word.nil in
        let g = Handle.create h (Guardian.make h) in
        (* A representative mix: mostly pairs, some vectors and weak pairs,
           a slice of the population registered with a guardian. *)
        for i = 0 to n - 1 do
          let x =
            if i mod 17 = 0 then Obj.make_vector h ~len:8 ~init:(fx i)
            else if i mod 11 = 0 then Obj.weak_cons h (fx i) Word.nil
            else Obj.cons h (fx i) Word.nil
          in
          if i mod 13 = 0 then Guardian.register h (Handle.get g) x;
          Handle.set keep (Obj.cons h x (Handle.get keep))
        done;
        full_collect h;
        let live_bytes = 8 * Heap.live_words h in
        let bytes, save_us =
          best_of 3 (fun () -> Gbc_image.Image.save_string h)
        in
        let size = String.length bytes in
        let loaded, load_us =
          best_of 3 (fun () -> Gbc_image.Image.load_string bytes)
        in
        (* The same load with the post-load Verify sweep disabled — the
           image_verify_on_load knob for trusted images (doc/TUNING.md). *)
        let noverify =
          Config.v ~max_generation:3 ~image_verify_on_load:false ()
        in
        let _, load_nv_us =
          best_of 3 (fun () -> Gbc_image.Image.load_string ~config:noverify bytes)
        in
        let save_mb_s = float_of_int size /. save_us in
        let load_mb_s = float_of_int size /. load_us in
        let load_mw_s =
          float_of_int loaded.Gbc_image.Image.restored_words /. load_us
        in
        Gc_report.add_extra (Printf.sprintf "image_save_mb_s_n%d" n) save_mb_s;
        Gc_report.add_extra (Printf.sprintf "image_load_mb_s_n%d" n) load_mb_s;
        Gc_report.add_extra
          (Printf.sprintf "image_load_noverify_mb_s_n%d" n)
          (float_of_int size /. load_nv_us);
        Gc_report.add_extra
          (Printf.sprintf "image_bytes_per_live_byte_n%d" n)
          (float_of_int size /. float_of_int (max 1 live_bytes));
        [
          string_of_int n;
          string_of_int live_bytes;
          string_of_int size;
          Printf.sprintf "%.2f" (float_of_int size /. float_of_int (max 1 live_bytes));
          fmt_us save_us;
          Printf.sprintf "%.1f" save_mb_s;
          fmt_us load_us;
          Printf.sprintf "%.1f" load_mb_s;
          Printf.sprintf "%.1f" load_mw_s;
          fmt_us load_nv_us;
        ])
      [ 10_000; 40_000; 160_000 ]
  in
  table
    ~header:
      [
        "objects";
        "live bytes";
        "image bytes";
        "ratio";
        "save us";
        "save MB/s";
        "load us";
        "load MB/s";
        "load Mwords/s";
        "load us (no verify)";
      ]
    rows;
  print_endline
    "  -> the image stays within a small constant of live data (segment\n\
    \     padding plus tables); the load column includes the post-load Verify\n\
    \     sweep, which the last column shows can be traded away\n\
    \     (Config.image_verify_on_load).";
  (* Cold start: restoring a checkpointed Scheme system vs replaying its
     startup (prelude compile+eval plus the workload program). *)
  subsection "cold start: restore a Scheme system image vs replay its startup";
  let module Scheme = Gbc_scheme.Scheme in
  let program =
    "(define data\n\
    \  (let loop ((i 0) (acc '()))\n\
    \    (if (= i 3000) acc (loop (+ i 1) (cons (cons i (* i i)) acc)))))\n\
     (define total\n\
    \  (let loop ((l data) (n 0))\n\
    \    (if (null? l) n (loop (cdr l) (+ n 1)))))"
  in
  let replay () =
    let m = Scheme.create () in
    ignore (Scheme.Machine.eval_string m program);
    m
  in
  let m1, replay_us = best_of 3 (fun () -> replay ()) in
  let path = Filename.temp_file "gbc_bench" ".img" in
  Scheme.save_image m1 path;
  let img_bytes = (Unix.stat path).Unix.st_size in
  let m2, restore_us = best_of 3 (fun () -> Scheme.load_image path) in
  let trusted = Config.v ~image_verify_on_load:false () in
  let m3, restore_nv_us =
    best_of 3 (fun () -> Scheme.load_image ~config:trusted path)
  in
  let a = Scheme.eval m1 "total" and b = Scheme.eval m2 "total" in
  if a <> b then Printf.printf "  !! restored system disagrees: %s vs %s\n" a b;
  Scheme.Machine.dispose m1;
  Scheme.Machine.dispose m2;
  Scheme.Machine.dispose m3;
  Sys.remove path;
  Gc_report.add_extra "image_cold_start_us" restore_us;
  Gc_report.add_extra "image_cold_start_noverify_us" restore_nv_us;
  Gc_report.add_extra "image_replay_us" replay_us;
  Gc_report.add_extra "image_cold_start_speedup" (replay_us /. restore_nv_us);
  table
    ~header:[ "startup"; "us"; "notes" ]
    [
      [ "replay (create + prelude + program)"; fmt_us replay_us; "compiles and runs everything" ];
      [
        "restore from image";
        fmt_us restore_us;
        Printf.sprintf "%d image bytes, result %s" img_bytes b;
      ];
      [
        "restore, verify off (trusted image)";
        fmt_us restore_nv_us;
        "CRC still checked";
      ];
    ];
  Printf.printf "  -> a trusted-image cold start is %.1fx the replay speed.\n"
    (replay_us /. restore_nv_us)

let usage =
  "usage: main.exe [--json-out PATH] [--filter SUBSTR]\n\
  \  --json-out PATH   write the GC telemetry report to PATH\n\
  \                    (default BENCH_gc.json)\n\
  \  --filter SUBSTR   run only benchmarks whose name contains SUBSTR"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let () =
  let json_out = ref "BENCH_gc.json" in
  let filter = ref "" in
  let rec parse = function
    | [] -> ()
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | "--json-out" :: path :: rest when String.length path > 0 ->
        json_out := path;
        parse rest
    | [ "--json-out" ] ->
        prerr_endline "bench: --json-out requires a path argument";
        prerr_endline usage;
        exit 2
    | "--filter" :: sub :: rest when String.length sub > 0 ->
        filter := sub;
        parse rest
    | [ "--filter" ] ->
        prerr_endline "bench: --filter requires a substring argument";
        prerr_endline usage;
        exit 2
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %s\n" arg;
        prerr_endline usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  print_endline
    "Guardians in a Generation-Based Garbage Collector (PLDI 1993) — benchmark \
     harness";
  print_endline
    "Counters are simulated-heap work units (words copied, entries visited,\n\
     list cells scanned); times are host wall-clock.";
  let run name f = if contains name !filter then benchmark name f in
  run "e1" e1;
  run "e2" e2;
  run "e3" e3;
  run "e4" e4;
  run "e5" e5;
  run "e6" e6;
  run "e7" e7;
  run "e8" e8;
  run "e9" e9;
  run "e12" e12;
  run "e13" e13;
  run "e14" e14;
  run "image" e_image;
  write_gc_json !json_out;
  Printf.printf "\nDone.  GC telemetry written to %s.\n" !json_out;
  print_endline "See EXPERIMENTS.md for the paper-vs-measured discussion."
