(* Small harness around Bechamel: run a group of tests, print one
   estimated-time row per test, plus fixed-width counter tables. *)

open Bechamel
open Toolkit

let ols =
  Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]

(** Run Bechamel tests and print ns/run estimates. *)
let run_tests ?(quota = 0.5) tests =
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) analyzed [] in
      List.iter
        (fun name ->
          let est = Hashtbl.find analyzed name in
          let time =
            match Analyze.OLS.estimates est with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let r2 = match Analyze.OLS.r_square est with Some r -> r | None -> nan in
          Printf.printf "  %-48s %12.1f ns/run   (r²=%.3f)\n" name time r2)
        (List.sort compare names))
    tests

let section title = Printf.printf "\n==== %s ====\n%!" title

let subsection title = Printf.printf "\n-- %s --\n%!" title

(** Print a table: header row then int rows. *)
let table ~header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  let print_row cells =
    List.iteri
      (fun i c -> Printf.printf "%s%*s" (if i = 0 then "  " else "  ") (List.nth widths i) c)
      cells;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1e6)
(* microseconds *)

let fmt_us us = Printf.sprintf "%.1f" us

(* ------------------------------------------------------------------ *)
(* GC telemetry aggregation: heaps created through make_heap/make_ctx
   report every collection into the aggregate of the benchmark currently
   running (see [benchmark]); [write_gc_json] dumps all aggregates. *)

module Gc_report = struct
  open Gbc_runtime

  type agg = {
    bench : string;
    mutable collections : int;
    mutable pauses_us : float list;  (* one entry per collection *)
    phase_ns : float array;  (* indexed by Telemetry.phase_index *)
    phase_work : int array;
    totals : Stats.counters;  (* per-collection counters, summed *)
    (* Session-level mutator counters, summed over this benchmark's heaps
       when the benchmark finishes (the heaps list is dropped then). *)
    mutable heaps : Heap.t list;
    mutable polls : int;
    mutable hits : int;
    mutable registrations : int;
    mutable tconc_enqueues : int;
    mutable tconc_dequeues : int;
    mutable barrier_calls : int;
    mutable barrier_hits : int;
    mutable cards_dirtied : int;
    mutable extras : (string * float) list;
        (* benchmark-specific scalars, emitted under "extra" *)
  }

  let current : agg option ref = ref None
  let finished : agg list ref = ref []

  let add_counters (into : Stats.counters) (c : Stats.counters) =
    into.Stats.objects_copied <- into.Stats.objects_copied + c.Stats.objects_copied;
    into.Stats.words_copied <- into.Stats.words_copied + c.Stats.words_copied;
    into.Stats.words_swept <- into.Stats.words_swept + c.Stats.words_swept;
    into.Stats.root_words <- into.Stats.root_words + c.Stats.root_words;
    into.Stats.dirty_segments_scanned <-
      into.Stats.dirty_segments_scanned + c.Stats.dirty_segments_scanned;
    into.Stats.cards_scanned <- into.Stats.cards_scanned + c.Stats.cards_scanned;
    into.Stats.card_words_swept <-
      into.Stats.card_words_swept + c.Stats.card_words_swept;
    into.Stats.dirty_candidate_words <-
      into.Stats.dirty_candidate_words + c.Stats.dirty_candidate_words;
    into.Stats.guardian_pend_checks <-
      into.Stats.guardian_pend_checks + c.Stats.guardian_pend_checks;
    into.Stats.protected_entries_visited <-
      into.Stats.protected_entries_visited + c.Stats.protected_entries_visited;
    into.Stats.guardian_resurrections <-
      into.Stats.guardian_resurrections + c.Stats.guardian_resurrections;
    into.Stats.guardian_entries_promoted <-
      into.Stats.guardian_entries_promoted + c.Stats.guardian_entries_promoted;
    into.Stats.guardian_entries_dropped <-
      into.Stats.guardian_entries_dropped + c.Stats.guardian_entries_dropped;
    into.Stats.weak_pairs_scanned <-
      into.Stats.weak_pairs_scanned + c.Stats.weak_pairs_scanned;
    into.Stats.weak_pointers_broken <-
      into.Stats.weak_pointers_broken + c.Stats.weak_pointers_broken;
    into.Stats.ephemerons_scanned <-
      into.Stats.ephemerons_scanned + c.Stats.ephemerons_scanned;
    into.Stats.ephemerons_broken <-
      into.Stats.ephemerons_broken + c.Stats.ephemerons_broken;
    into.Stats.segments_freed <- into.Stats.segments_freed + c.Stats.segments_freed;
    into.Stats.segments_allocated <-
      into.Stats.segments_allocated + c.Stats.segments_allocated

  (* Subscribe the heap's telemetry to the running benchmark's aggregate. *)
  let instrument_heap h =
    match !current with
    | None -> ()
    | Some agg ->
        agg.heaps <- h :: agg.heaps;
        let tel = Heap.telemetry h in
        Telemetry.set_enabled tel true;
        ignore
          (Telemetry.add_sink tel (function
            | Telemetry.Collection_end { duration_ns; counters; _ } ->
                agg.collections <- agg.collections + 1;
                agg.pauses_us <- (duration_ns /. 1e3) :: agg.pauses_us;
                List.iter
                  (fun ph ->
                    let i = Telemetry.phase_index ph in
                    agg.phase_ns.(i) <-
                      agg.phase_ns.(i) +. Telemetry.phase_ns_last tel ph;
                    agg.phase_work.(i) <-
                      agg.phase_work.(i) + Telemetry.phase_work_last tel ph)
                  Telemetry.all_phases;
                add_counters agg.totals counters
            | _ -> ()))

  let start bench =
    current :=
      Some
        {
          bench;
          collections = 0;
          pauses_us = [];
          phase_ns = Array.make Telemetry.phase_count 0.0;
          phase_work = Array.make Telemetry.phase_count 0;
          totals = Stats.zero ();
          heaps = [];
          polls = 0;
          hits = 0;
          registrations = 0;
          tconc_enqueues = 0;
          tconc_dequeues = 0;
          barrier_calls = 0;
          barrier_hits = 0;
          cards_dirtied = 0;
          extras = [];
        }

  (* Record a benchmark-specific scalar under the running benchmark's
     "extra" JSON object (latest value wins per key). *)
  let add_extra key value =
    match !current with
    | None -> ()
    | Some agg -> agg.extras <- (key, value) :: List.remove_assoc key agg.extras

  let finish () =
    match !current with
    | None -> ()
    | Some agg ->
        List.iter
          (fun h ->
            let s = Heap.stats h in
            agg.polls <- agg.polls + s.Stats.guardian_polls;
            agg.hits <- agg.hits + s.Stats.guardian_hits;
            agg.registrations <- agg.registrations + s.Stats.registrations;
            agg.tconc_enqueues <- agg.tconc_enqueues + s.Stats.tconc_enqueues;
            agg.tconc_dequeues <- agg.tconc_dequeues + s.Stats.tconc_dequeues;
            agg.barrier_calls <- agg.barrier_calls + s.Stats.barrier_calls;
            agg.barrier_hits <- agg.barrier_hits + s.Stats.barrier_hits;
            agg.cards_dirtied <- agg.cards_dirtied + s.Stats.cards_dirtied)
          agg.heaps;
        agg.heaps <- [];
        current := None;
        finished := agg :: !finished

  (* Exact percentile of a sorted sample (nearest-rank). *)
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))

  let write path =
    let buf = Buffer.create 4096 in
    let bprintf fmt = Printf.bprintf buf fmt in
    bprintf "{\n  \"schema\": \"gbc-bench-gc/1\",\n  \"benchmarks\": [\n";
    let aggs = List.rev !finished in
    List.iteri
      (fun bi agg ->
        let pauses = Array.of_list agg.pauses_us in
        Array.sort compare pauses;
        let total_phase_ns = Array.fold_left ( +. ) 0.0 agg.phase_ns in
        let c = agg.totals in
        bprintf "    {\n      \"name\": %S,\n" agg.bench;
        bprintf "      \"collections\": %d,\n" agg.collections;
        bprintf
          "      \"pause_us\": {\"p50\": %.3f, \"p95\": %.3f, \"max\": %.3f},\n"
          (percentile pauses 50.0) (percentile pauses 95.0)
          (if Array.length pauses = 0 then 0.0
           else pauses.(Array.length pauses - 1));
        bprintf "      \"phases\": {\n";
        List.iteri
          (fun i ph ->
            let share =
              if total_phase_ns > 0.0 then agg.phase_ns.(i) /. total_phase_ns
              else 0.0
            in
            bprintf "        %S: {\"ns\": %.0f, \"work\": %d, \"time_share\": %.4f}%s\n"
              (Gbc_runtime.Telemetry.phase_name ph)
              agg.phase_ns.(i) agg.phase_work.(i) share
              (if i = Gbc_runtime.Telemetry.phase_count - 1 then "" else ","))
          Gbc_runtime.Telemetry.all_phases;
        bprintf "      },\n";
        bprintf
          "      \"counters\": {\"words_copied\": %d, \"words_swept\": %d, \
           \"entries_visited\": %d, \"resurrections\": %d, \"entries_dropped\": \
           %d, \"weak_broken\": %d, \"ephemerons_broken\": %d, \
           \"cards_scanned\": %d, \"card_words_swept\": %d, \
           \"dirty_candidate_words\": %d, \"dirty_segments_scanned\": %d, \
           \"guardian_pend_checks\": %d},\n"
          c.Stats.words_copied c.Stats.words_swept
          c.Stats.protected_entries_visited c.Stats.guardian_resurrections
          c.Stats.guardian_entries_dropped c.Stats.weak_pointers_broken
          c.Stats.ephemerons_broken c.Stats.cards_scanned
          c.Stats.card_words_swept c.Stats.dirty_candidate_words
          c.Stats.dirty_segments_scanned c.Stats.guardian_pend_checks;
        bprintf
          "      \"mutator\": {\"registrations\": %d, \"polls\": %d, \"hits\": \
           %d, \"tconc_enqueues\": %d, \"tconc_dequeues\": %d},\n"
          agg.registrations agg.polls agg.hits agg.tconc_enqueues
          agg.tconc_dequeues;
        (* Write-barrier profile and the card table's dirty-scan win:
           card_words_swept / dirty_candidate_words is the fraction of a
           segment-granular scan's work the card-granular scan performed. *)
        bprintf
          "      \"barrier\": {\"calls\": %d, \"hits\": %d, \"hit_rate\": \
           %.6f, \"cards_dirtied\": %d},\n"
          agg.barrier_calls agg.barrier_hits
          (float_of_int agg.barrier_hits /. float_of_int (max 1 agg.barrier_calls))
          agg.cards_dirtied;
        bprintf
          "      \"dirty_scan\": {\"cards_per_dirty_segment\": %.3f, \
           \"words_ratio\": %.6f},\n"
          (float_of_int c.Stats.cards_scanned
          /. float_of_int (max 1 c.Stats.dirty_segments_scanned))
          (float_of_int c.Stats.card_words_swept
          /. float_of_int (max 1 c.Stats.dirty_candidate_words));
        if agg.extras <> [] then begin
          bprintf "      \"extra\": {";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then bprintf ", ";
              bprintf "%S: %.6f" k v)
            (List.rev agg.extras);
          bprintf "},\n"
        end;
        (* C1: collector-side guardian overhead relative to the copying and
           sweeping work already done.  C2: mutator polls per clean-up
           actually performed (DESIGN.md, Observability). *)
        bprintf "      \"c1_collector_overhead\": %.6f,\n"
          (float_of_int c.Stats.protected_entries_visited
          /. float_of_int (max 1 (c.Stats.words_copied + c.Stats.words_swept)));
        bprintf "      \"c2_polls_per_cleanup\": %.6f\n"
          (float_of_int agg.polls /. float_of_int (max 1 agg.hits));
        bprintf "    }%s\n" (if bi = List.length aggs - 1 then "" else ","))
      aggs;
    bprintf "  ]\n}\n";
    let oc = open_out path in
    Buffer.output_buffer oc buf;
    close_out oc
end

(** Instrumented constructors: use these in benchmarks so collections are
    credited to the running benchmark's GC aggregate. *)
let make_heap ?config () =
  let h = Gbc_runtime.Heap.create ?config () in
  Gc_report.instrument_heap h;
  h

let make_ctx ?config ?fd_limit () =
  let ctx = Gbc.Ctx.create ?config ?fd_limit () in
  Gc_report.instrument_heap (Gbc.Ctx.heap ctx);
  ctx

(** Run one named benchmark, crediting its heaps' collections to a fresh
    aggregate for the GC report. *)
let benchmark name f =
  Gc_report.start name;
  Fun.protect ~finally:Gc_report.finish f

let write_gc_json = Gc_report.write
