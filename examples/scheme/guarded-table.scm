;; Figure 1's guarded hash table (a prelude library here), under churn.
;; Run with: dune exec bin/gbc_scheme.exe -- examples/scheme/guarded-table.scm

(define tbl (make-guarded-hash-table (lambda (k size) (modulo (car k) size)) 32))

;; Insert 100 keyed records, keeping only the last 5 keys alive.
(define window '())
(let loop ([i 0])
  (unless (= i 100)
    (let ([key (cons i (* i i))])
      (tbl key i)
      (set! window (cons key window))
      (when (> (length window) 5)
        (set! window (reverse (cdr (reverse window))))))
    (loop (+ i 1))))

(collect 4)

;; Accessing the table expunges the associations of the ~95 dead keys; the
;; five live ones still answer.
(define probe (cons -1 0))
(tbl probe 'probe)
(display "live keys still present: ")
(write (map (lambda (k) (tbl k 'would-insert)) window))
(newline)
(display "window size: ")
(write (length window))
(newline)
