;; The paper's Section 3 guardian transcripts, as a runnable script.
;; Run with: dune exec bin/gbc_scheme.exe -- examples/scheme/guardians.scm

(define (show label v)
  (display label)
  (display ": ")
  (write v)
  (newline))

;; Basic registration and retrieval.
(define G (make-guardian))
(define x (cons 'a 'b))
(G x)
(show "before drop" (G))            ; #f — x is still accessible
(set! x #f)
(collect 4)
(show "after drop" (G))             ; (a . b) — saved from destruction
(show "queue now empty" (G))        ; #f

;; An object may be registered more than once...
(define G2 (make-guardian))
(define y (cons 'c 'd))
(G2 y) (G2 y)
(set! y #f)
(collect 4)
(show "twice registered, first" (G2))
(show "twice registered, second" (G2))

;; ...or with more than one guardian.
(define Ga (make-guardian))
(define Gb (make-guardian))
(define z (cons 'e 'f))
(Ga z) (Gb z)
(set! z #f)
(collect 4)
(show "guardian A" (Ga))
(show "guardian B" (Gb))
(show "same object" (eq? (Ga) (Gb)))  ; both already drained: (#f)

;; One can even register one guardian with another.
(define Outer (make-guardian))
(define Inner (make-guardian))
(define w (cons 'g 'h))
(Outer Inner)
(Inner w)
(set! w #f)
(set! Inner #f)
(collect 4)
(show "inner guardian's object" ((Outer)))
