;; Will executors (Racket-style) built on guardians, from the prelude.
;; Run with: dune exec bin/gbc_scheme.exe -- examples/scheme/wills.scm

(define we (make-will-executor))

(define session (cons 'session-42 'state))
(will-register we session
  (lambda (obj)
    (display "closing ")
    (display (car obj))
    (newline)))

(display "session live; wills ready? ")
(write (will-execute we))
(newline)

(set! session #f)
(collect 4)

(display "session dropped; running will:")
(newline)
(will-execute we)
(display "wills remaining? ")
(write (will-execute we))
(newline)
