;; A self-test of the Scheme system, written in the Scheme system.
;; Run with: dune exec bin/gbc_scheme.exe -- examples/scheme/selftest.scm
;;
;; Each check compares a computed value against its expected printed form
;; (via write-to-string), so the suite exercises the printer, string
;; ports, and the evaluator at once.  Prints one line per failure and a
;; final tally.

(define pass 0)
(define fail 0)

(define (check name expected actual)
  (let ([e (write-to-string expected)]
        [a (write-to-string actual)])
    (if (string=? e a)
        (set! pass (+ pass 1))
        (begin
          (set! fail (+ fail 1))
          (display "FAIL ") (display name)
          (display ": expected ") (display e)
          (display ", got ") (display a)
          (newline)))))

;; --- numbers -------------------------------------------------------
(check 'add 10 (+ 1 2 3 4))
(check 'sub -3 (- 1 4))
(check 'mul 24 (* 2 3 4))
(check 'nested 14 (+ 2 (* 3 4)))
(check 'quotient 3 (quotient 10 3))
(check 'remainder 1 (remainder 10 3))
(check 'modulo-neg 2 (modulo -7 3))
(check 'compare '(#t #f #t) (list (< 1 2 3) (< 3 2) (>= 3 3 2)))
(check 'minmax '(1 5) (list (min 3 1) (max 1 5)))
(check 'float 3.5 (+ 1.5 2))
(check 'zero (list #t #f) (list (zero? 0) (zero? 1)))
(check 'num->str "42" (number->string 42))
(check 'str->num 42 (string->number "42"))

;; --- pairs and lists -----------------------------------------------
(check 'cons '(1 . 2) (cons 1 2))
(check 'list '(1 2 3) (list 1 2 3))
(check 'append '(1 2 3 4) (append '(1 2) '(3 4)))
(check 'reverse '(3 2 1) (reverse '(1 2 3)))
(check 'length 4 (length '(a b c d)))
(check 'map '(2 4 6) (map (lambda (x) (* 2 x)) '(1 2 3)))
(check 'map2 '(5 7 9) (map + '(1 2 3) '(4 5 6)))
(check 'filter '(2 4) (filter even? '(1 2 3 4 5)))
(check 'fold 10 (fold-left + 0 '(1 2 3 4)))
(check 'assq '(b . 2) (assq 'b '((a . 1) (b . 2))))
(check 'memq '(c d) (memq 'c '(a b c d)))
(check 'sort '(1 2 3 4) (sort < '(3 1 4 2)))
(check 'iota '(0 1 2 3) (iota 4))
(check 'list-tail '(c) (list-tail '(a b c) 2))
(check 'setcdr '(1 . 9) (let ([p (cons 1 2)]) (set-cdr! p 9) p))

;; --- characters and strings ----------------------------------------
(check 'char #\b (string-ref "abc" 1))
(check 'upcase #\A (char-upcase #\a))
(check 'strlen 5 (string-length "hello"))
(check 'substr "ell" (substring "hello" 1 4))
(check 'append-str "foobar" (string-append "foo" "bar"))
(check 'str->list '(#\h #\i) (string->list "hi"))
(check 'list->str "hi" (list->string (list #\h #\i)))
(check 'join "a-b-c" (string-join "-" '("a" "b" "c")))
(check 'str-escape "a\"b" (list->string (list #\a #\" #\b)))

;; --- control --------------------------------------------------------
(check 'cond 'two (cond [(= 1 2) 'one] [(= 2 2) 'two] [else 'other]))
(check 'case 'vowel (case #\a [(#\a #\e #\i #\o #\u) 'vowel] [else 'consonant]))
(check 'named-let 120 (let fac ([n 5] [acc 1]) (if (zero? n) acc (fac (- n 1) (* acc n)))))
(check 'do-loop 45 (do ([i 0 (+ i 1)] [s 0 (+ s i)]) ((= i 10) s)))
(check 'and-or '(3 #f 1 #f) (list (and 1 2 3) (and 1 #f 3) (or #f 1 2) (or #f #f)))
(check 'apply 15 (apply + 1 2 '(3 4 5)))
(check 'varargs '(1 (2 3)) ((lambda (a . rest) (list a rest)) 1 2 3))
(check 'case-lambda '(0 1 2)
  (let ([f (case-lambda [() 0] [(a) 1] [(a b) 2])])
    (list (f) (f 'x) (f 'x 'y))))
(check 'closure-state '(1 2 3)
  (let ([c (let ([n 0]) (lambda () (set! n (+ n 1)) n))])
    (list (c) (c) (c))))
(check 'deep-tail 'done
  (let loop ([n 50000]) (if (zero? n) 'done (loop (- n 1)))))
(check 'callcc-escape 'out
  (call/cc (lambda (k) (for-each (lambda (x) (when (= x 2) (k 'out))) '(1 2 3)) 'fell-through)))
(check 'dynamic-wind '(in body out)
  (let ([l '()])
    (dynamic-wind (lambda () (set! l (cons 'in l)))
                  (lambda () (set! l (cons 'body l)))
                  (lambda () (set! l (cons 'out l))))
    (reverse l)))
(check 'error-handler 'caught
  (with-error-handler (lambda (m) 'caught) (lambda () (car '()))))

;; --- quasiquote ------------------------------------------------------
(check 'qq '(1 2 3) `(1 ,(+ 1 1) 3))
(check 'qq-splice '(0 1 2 3) `(0 ,@(list 1 2) 3))
(check 'qq-vector '#(1 4) `#(1 ,(* 2 2)))

;; --- vectors ----------------------------------------------------------
(check 'vector '#(1 2 3) (vector 1 2 3))
(check 'vector-ops '(3 b #(a x c))
  (let ([v (vector 'a 'b 'c)])
    (list (vector-length v) (vector-ref v 1)
          (begin (vector-set! v 1 'x) v))))
(check 'vector-map '#(1 4 9) (vector-map (lambda (x) (* x x)) '#(1 2 3)))

;; --- records -----------------------------------------------------------
(define-record-type pare (kons x y) pare? (x kar set-kar!) (y kdr))
(check 'record '(#t #f 1 2 9)
  (let ([p (kons 1 2)])
    (list (pare? p) (pare? 7) (kar p) (kdr p) (begin (set-kar! p 9) (kar p)))))

;; --- equality -----------------------------------------------------------
(check 'eq-sym #t (eq? 'a 'a))
(check 'eqv-num #t (eqv? 100000 100000))
(check 'equal-deep #t (equal? '(1 (2 #(3 "s"))) '(1 (2 #(3 "s")))))
(check 'eq-fresh #f (eq? (list 1) (list 1)))

;; --- guardians and weak structures ---------------------------------------
(check 'guardian-basic '(a . b)
  (let ([g (make-guardian)])
    (let ([x (cons 'a 'b)]) (g x))
    (collect 4)
    (g)))
(check 'guardian-live #f
  (let ([g (make-guardian)] [x (cons 1 2)])
    (g x)
    (collect 4)
    (let ([r (g)]) (set-car! x 99) r)))  ; x alive: nothing retrievable
(check 'weak-drop #f
  (let ([wp (weak-cons (cons 1 2) 'p)])
    (collect 4)
    (car wp)))
(check 'weak-keep '(1 . 2)
  (let* ([x (cons 1 2)] [wp (weak-cons x 'p)])
    (collect 4)
    (let ([r (car wp)]) (set-car! x 1) r)))
(check 'ephemeron-collapse '(#f #f)
  (let ([e (ephemeron-cons (cons 'k 1) (cons 'v 2))])
    (collect 4)
    (list (car e) (cdr e))))
(check 'rep-interface 'agent
  (let ([g (make-guardian)])
    (g (cons 'big 'obj) 'agent)
    (collect 4)
    (g)))

;; --- eq hashtables across collections -------------------------------------
(check 'hashtable '(one two 2)
  (let ([ht (make-eq-hashtable)] [k1 (cons 1 1)] [k2 'two-key])
    (hashtable-set! ht k1 'one)
    (hashtable-set! ht k2 'two)
    (collect 4)
    (list (hashtable-ref ht k1 'miss) (hashtable-ref ht k2 'miss) (hashtable-size ht))))

;; --- io ---------------------------------------------------------------------
(check 'string-port "(a b) 7"
  (let ([p (open-output-string)])
    (write '(a b) p)
    (display " " p)
    (display 7 p)
    (get-output-string p)))
(check 'read-roundtrip '(1 (2 . 3) #(4) "five" #\6)
  (read-from-string (write-to-string '(1 (2 . 3) #(4) "five" #\6))))
(check 'file-io '(hello world)
  (begin
    (call-with-output-file "st.tmp" (lambda (p) (display "hello world" p)))
    (call-with-input-file "st.tmp"
      (lambda (p) (let ([a (read p)] [b (read p)]) (list a b))))))

;; --- gc pressure over everything -------------------------------------------
(check 'big-structure-survives 4950
  (let ([l (map (lambda (i) (vector i (number->string i))) (iota 100))])
    (collect 4) (collect 4)
    (fold-left + 0 (map (lambda (v) (vector-ref v 0)) l))))

(display "self-test: ")
(display pass)
(display " passed, ")
(display fail)
(display " failed")
(newline)
