;; "Because of exceptions and nonlocal exits, a port may not be closed
;; explicitly by a user program before the last reference to it is
;; dropped."  (paper, Section 1)
;;
;; Here is exactly that situation: a processing loop escapes through a
;; continuation in the middle of writing, skipping its close.  The port
;; guardian recovers both the descriptor and the buffered data.
;; Run with: dune exec bin/gbc_scheme.exe -- examples/scheme/nonlocal-exit.scm

(define port-guardian (make-guardian))

(define (close-dropped-ports)
  (let ([p (port-guardian)])
    (when p
      (if (output-port? p)
          (begin (flush-output-port p) (close-output-port p))
          (close-input-port p))
      (close-dropped-ports))))

(define (process-records records abort-on)
  ;; Opens a log, writes records, closes it at the end — unless a bad
  ;; record triggers a nonlocal exit first.
  (call/cc
    (lambda (escape)
      (let ([log (open-output-file "process.log")])
        (port-guardian log)
        (for-each
          (lambda (r)
            (when (eq? r abort-on)
              (escape (list 'aborted-at r)))   ; port left open and unflushed!
            (display r log)
            (display " " log))
          records)
        (close-output-port log)
        'completed))))

(display "run 1 (no abort): ")
(write (process-records '(a b c) 'zzz))
(newline)

(display "run 2 (abort at c): ")
(write (process-records '(a b c d e) 'c))
(newline)

;; The escaped run dropped its port.  Prove the guardian recovers it.
(collect 4)
(close-dropped-ports)

(define in (open-input-file "process.log"))
(display "recovered log: ")
(let loop ([ch (read-char in)])
  (unless (eof-object? ch)
    (write-char ch)
    (loop (read-char in))))
(close-input-port in)
(newline)
