;; A metacircular evaluator running on the guardians VM — and, through it,
;; the paper's guardian example running one interpretation level up.
;; Run with: dune exec bin/gbc_scheme.exe -- examples/scheme/metacircular.scm

;; Environments: list of frames; a frame is a list of (name . value) pairs.
(define (env-lookup env name)
  (if (null? env)
      (error "unbound variable" name)
      (let ([a (assq name (car env))])
        (if a (cdr a) (env-lookup (cdr env) name)))))

(define (env-set! env name value)
  (if (null? env)
      (error "set! of unbound variable" name)
      (let ([a (assq name (car env))])
        (if a (set-cdr! a value) (env-set! (cdr env) name value)))))

(define (env-define! env name value)
  (let ([a (assq name (car env))])
    (if a
        (set-cdr! a value)
        (set-car! env (cons (cons name value) (car env))))))

(define (extend env names values)
  (cons (map cons names values) env))

;; Closures of the object language: #(closure params body env)
(define (make-closure params body env) (vector 'closure params body env))
(define (closure? v) (and (vector? v) (eq? (vector-ref v 0) 'closure)))

(define (self-evaluating? e)
  (or (number? e) (string? e) (boolean? e) (char? e)))

(define (m-eval expr env)
  (cond
    [(self-evaluating? expr) expr]
    [(symbol? expr) (env-lookup env expr)]
    [(pair? expr)
     (case (car expr)
       [(quote) (cadr expr)]
       [(if) (if (m-eval (cadr expr) env)
                 (m-eval (caddr expr) env)
                 (if (null? (cdddr expr)) #f (m-eval (car (cdddr expr)) env)))]
       [(lambda) (make-closure (cadr expr) (cddr expr) env)]
       [(define) (env-define! env (cadr expr) (m-eval (caddr expr) env)) 'defined]
       [(set!) (env-set! env (cadr expr) (m-eval (caddr expr) env)) 'set]
       [(begin) (m-eval-sequence (cdr expr) env)]
       [(let) (let ([names (map car (cadr expr))]
                    [inits (map (lambda (b) (m-eval (cadr b) env)) (cadr expr))])
                (m-eval-sequence (cddr expr) (extend env names inits)))]
       [else (m-apply (m-eval (car expr) env)
                      (map (lambda (a) (m-eval a env)) (cdr expr)))])]
    [else (error "cannot evaluate" expr)]))

(define (m-eval-sequence body env)
  (if (null? (cdr body))
      (m-eval (car body) env)
      (begin (m-eval (car body) env) (m-eval-sequence (cdr body) env))))

(define (m-apply f args)
  (cond
    [(closure? f)
     (m-eval-sequence (vector-ref f 2)
                      (extend (vector-ref f 3) (vector-ref f 1) args))]
    [(procedure? f) (apply f args)]     ; host primitive
    [else (error "cannot apply" f)]))

(define (cdddr p) (cdr (cddr p)))

;; The global frame of the object language: a few host primitives,
;; including the guardian interface itself.
(define global-env
  (list (map cons
             '(+ - * = < cons car cdr null? pair? display newline
               collect make-guardian weak-cons eq?)
             (list + - * = < cons car cdr null? pair? display newline
                   collect make-guardian weak-cons eq?))))

(define (run program) (m-eval program global-env))

;; Factorial, one level up.
(display "meta factorial 10 = ")
(display (run '(begin
                 (define fact (lambda (n) (if (= n 0) 1 (* n (fact (- n 1))))))
                 (fact 10))))
(newline)

;; The paper's guardian transcript, interpreted by the interpreted Scheme.
(display "meta guardian session:")
(newline)
(run '(begin
        (define G (make-guardian))
        (define x (cons (quote a) (quote b)))
        (G x)
        (display "  before drop: ") (display (G)) (newline)
        (set! x #f)
        (collect 4)
        (display "  after drop:  ") (display (G)) (newline)))
