;; The paper's guarded ports, end to end: dropped ports are flushed and
;; closed by close-dropped-ports installed as the collect-request handler.
;; Run with: dune exec bin/gbc_scheme.exe -- examples/scheme/ports.scm

(define port-guardian (make-guardian))
(define closed 0)

(define (close-dropped-ports)
  (let ([p (port-guardian)])
    (if p
        (begin
          (set! closed (+ closed 1))
          (if (output-port? p)
              (begin (flush-output-port p) (close-output-port p))
              (close-input-port p))
          (close-dropped-ports))
        (void))))

(define (guarded-open-output-file pathname)
  (close-dropped-ports)
  (let ([p (open-output-file pathname)])
    (port-guardian p)
    p))

(collect-request-handler
  (lambda ()
    (collect)
    (close-dropped-ports)))

;; Open 30 ports, writing to each, closing none ourselves.
(let loop ([i 0])
  (unless (= i 30)
    (let ([p (guarded-open-output-file (string-append "out" (number->string i)))])
      (display "record " p)
      (display i p))
    ;; churn to trigger collect requests
    (let churn ([j 0]) (unless (= j 2000) (cons j j) (churn (+ j 1))))
    (loop (+ i 1))))

(collect 4)
(close-dropped-ports)

(display "ports closed by the guardian: ")
(write closed)
(newline)

;; Prove the data was flushed, not lost.
(define in (open-input-file "out7"))
(display "out7 contains: ")
(let loop ([c (read-char in)])
  (unless (eof-object? c)
    (write-char c)
    (loop (read-char in))))
(close-input-port in)
(newline)
