(* Heap images: gbc-image/1 round-trips.

   The contract under test: save -> load rebuilds an equivalent heap
   (structure, sharing, identity, generations, guardian and weak state,
   allocation cursors, collection schedule), a reloaded heap is
   Verify-clean and collects correctly, save -> load -> save is
   byte-identical, and every corrupt/truncated/mismatched image is
   rejected with Image.Error — never a crash, never a silent misload. *)

open Gbc_runtime
open Gbc_image

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let cfg = Config.v ~segment_words:128 ~max_generation:3 ()
let heap () = Heap.create ~config:cfg ()
let fx = Word.of_fixnum

let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

let retrieve_all h g =
  let rec loop acc =
    match Guardian.retrieve h g with
    | None -> List.rev acc
    | Some w -> loop (w :: acc)
  in
  loop []

(* Save [h] carrying [words] along as an extra section, reload, and
   return (bytes, loaded, relocated words). *)
let roundtrip ?(symbols = []) ?(words = []) h =
  let extras =
    [ ("t", { Image.xwords = Array.of_list words; xbytes = "" }) ]
  in
  let s = Image.save_string ~symbols ~extras h in
  let l = Image.load_string ~config:(Heap.config h) s in
  let words' = Array.to_list (List.assoc "t" l.Image.extras).xwords in
  (s, l, words')

(* The canonical-form claim: re-serializing the restored heap (with the
   restored sections) reproduces the original bytes. *)
let check_canonical name s (l : Image.loaded) =
  let s2 =
    Image.save_string ~symbols:l.Image.symbols ~extras:l.Image.extras
      l.Image.heap
  in
  check (name ^ ": save->load->save byte-identical") true (String.equal s s2)

let test_empty_heap () =
  let h = heap () in
  let s, l, _ = roundtrip h in
  check_int "no segments" 0 l.Image.restored_segments;
  check "verify clean" true (Verify.verify l.Image.heap = []);
  check_canonical "empty" s l

let test_structure_and_sharing () =
  let h = heap () in
  let shared = Obj.cons h (fx 1) (fx 2) in
  let a = Obj.cons h shared shared in
  let cyc = Obj.cons h (fx 9) Word.nil in
  Obj.set_cdr h cyc cyc;
  let v = Obj.vector_of_list h [ a; cyc; fx 3 ] in
  let str = Obj.string_of_ocaml h "hello image" in
  let fl = Obj.make_flonum h 3.14159 in
  let box = Obj.make_box h v in
  let s, l, words = roundtrip h ~words:[ a; cyc; v; str; fl; box ] in
  let h' = l.Image.heap in
  (match words with
  | [ a'; cyc'; v'; str'; fl'; box' ] ->
      (* Sharing: both fields of [a] are the same cell. *)
      check "sharing preserved" true
        (Word.equal (Obj.car h' a') (Obj.cdr h' a'));
      check_int "through shared cell" 1
        (Word.to_fixnum (Obj.car h' (Obj.car h' a')));
      (* The cycle still closes. *)
      check "cycle preserved" true (Word.equal (Obj.cdr h' cyc') cyc');
      (* Vector slots point at the same relocated objects. *)
      check "vector slot identity" true
        (Word.equal (Obj.vector_ref h' v' 0) a');
      check "vector slot identity (cycle)" true
        (Word.equal (Obj.vector_ref h' v' 1) cyc');
      check_str "string contents" "hello image" (Obj.string_to_ocaml h' str');
      Alcotest.(check (float 0.)) "flonum bits" 3.14159 (Obj.flonum_value h' fl');
      check "box contents" true (Word.equal (Obj.box_ref h' box') v')
  | _ -> Alcotest.fail "extra words lost");
  check "verify clean" true (Verify.verify h' = []);
  check_canonical "structure" s l

let test_restored_heap_collects () =
  let h = heap () in
  let keep = Obj.cons h (fx 42) Word.nil in
  for i = 0 to 199 do
    ignore (Obj.cons h (fx i) Word.nil)
  done;
  let _, l, words = roundtrip h ~words:[ keep ] in
  let h' = l.Image.heap in
  let keep' = List.hd words in
  (* Root it, then collect everything: the garbage we serialized must be
     reclaimed and the survivor promoted intact. *)
  Heap.with_cell h' keep' (fun c ->
      full_collect h';
      full_collect h';
      let keep'' = Heap.read_cell h' c in
      check_int "survivor intact" 42 (Word.to_fixnum (Obj.car h' keep''));
      check "survivor promoted" true
        (Heap.generation_of_word h' keep'' > 0);
      check "verify clean after post-restore GCs" true
        (Verify.verify h' = []))

let test_generations_and_schedule () =
  let h = heap () in
  let old = Obj.cons h (fx 7) Word.nil in
  Heap.with_cell h old (fun c ->
      full_collect h;
      full_collect h;
      let old = Heap.read_cell h c in
      let gen = Heap.generation_of_word h old in
      check "object aged" true (gen >= 2);
      let s, l, words = roundtrip h ~words:[ old ] in
      let h' = l.Image.heap in
      check_int "generation preserved" gen
        (Heap.generation_of_word h' (List.hd words));
      check_int "gc_epoch preserved" (Heap.gc_epoch h) (Heap.gc_epoch h');
      check_int "collect_count preserved" h.Heap.collect_count
        h'.Heap.collect_count;
      check_int "last_gc_generation preserved" h.Heap.last_gc_generation
        h'.Heap.last_gc_generation;
      check_canonical "generations" s l)

let test_old_to_young_remembered () =
  (* An old object referencing a young one: the restored remembered set
     must make the young one survive a minor collection of the restored
     heap. *)
  let h = heap () in
  let old = Obj.cons h Word.nil Word.nil in
  Heap.with_cell h old (fun c ->
      full_collect h;
      full_collect h;
      let old = Heap.read_cell h c in
      check "old indeed" true (Heap.generation_of_word h old >= 2);
      let young = Obj.cons h (fx 5) Word.nil in
      Obj.set_car h old young;
      let _, l, words = roundtrip h ~words:[ old ] in
      let h' = l.Image.heap in
      let old' = List.hd words in
      (* Nothing roots [old'] in h' except this fresh cell; the young
         cell is reachable only through the old->young slot, i.e. only
         through the rebuilt cards. *)
      Heap.with_cell h' old' (fun _ ->
          ignore (Collector.collect h' ~gen:0);
          check_int "young survived via rebuilt remembered set" 5
            (Word.to_fixnum (Obj.car h' (Obj.car h' old')));
          check "verify clean" true (Verify.verify h' = [])))

let test_large_object () =
  let h = heap () in
  (* 300 slots >> segment_words 128: an oversized segment. *)
  let v = Obj.make_vector h ~len:300 ~init:(fx 0) in
  for i = 0 to 299 do
    Obj.vector_set h v i (fx (i * 3))
  done;
  let s, l, words = roundtrip h ~words:[ v ] in
  let h' = l.Image.heap in
  let v' = List.hd words in
  check_int "length" 300 (Obj.vector_length h' v');
  check_int "first" 0 (Word.to_fixnum (Obj.vector_ref h' v' 0));
  check_int "last" 897 (Word.to_fixnum (Obj.vector_ref h' v' 299));
  check_canonical "large object" s l

let test_weak_and_ephemeron () =
  let h = heap () in
  let target = Obj.cons h (fx 11) Word.nil in
  let wp = Obj.weak_cons h target Word.nil in
  let key = Obj.cons h (fx 1) Word.nil in
  let eph = Obj.ephemeron_cons h key (Obj.cons h (fx 2) Word.nil) in
  let s, l, words = roundtrip h ~words:[ target; wp; key; eph ] in
  let h' = l.Image.heap in
  (match words with
  | [ target'; wp'; key'; eph' ] ->
      (* Weak car relocated, still pointing at the (relocated) target. *)
      check "weak target relocated" true
        (Word.equal (Obj.car h' wp') target');
      check "still a weak pair" true (Obj.is_weak_pair h' wp');
      check "still an ephemeron" true (Obj.is_ephemeron h' eph');
      check_int "ephemeron value alive" 2
        (Word.to_fixnum (Obj.car h' (Obj.cdr h' eph')));
      (* Canonical-bytes check must run on the pristine restored heap,
         before we collect it below. *)
      check_canonical "weak" s l;
      (* Weak semantics still work post-restore: root only the weak
         pair and the ephemeron, drop target and key, collect.  The
         pairs move, so re-read them from their root cells. *)
      Heap.with_cell h' wp' (fun wc ->
          Heap.with_cell h' eph' (fun ec ->
              ignore key';
              full_collect h';
              check "weak car broken after restore+collect" true
                (Word.is_false (Obj.car h' (Heap.read_cell h' wc)));
              check "ephemeron broken after restore+collect" true
                (Word.is_false (Obj.car h' (Heap.read_cell h' ec)))))
  | _ -> Alcotest.fail "extra words lost")

let test_tconc_queue_order () =
  let h = heap () in
  let tc = Tconc.make h in
  List.iter (fun i -> Tconc.mutator_enqueue h tc (fx i)) [ 3; 1; 4; 1; 5 ];
  let s, l, words = roundtrip h ~words:[ tc ] in
  let h' = l.Image.heap in
  let tc' = List.hd words in
  Alcotest.(check (list int)) "queue order preserved" [ 3; 1; 4; 1; 5 ]
    (List.map Word.to_fixnum (Tconc.to_list h' tc'));
  check_canonical "tconc" s l

let test_guardian_pending_order () =
  (* Queued-but-not-yet-polled objects come back in the same order. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  for i = 0 to 9 do
    Guardian.register h (Handle.get g) (Obj.cons h (fx i) Word.nil)
  done;
  full_collect h;
  check_int "all pending" 10 (Guardian.pending_count h (Handle.get g));
  let before =
    List.map
      (fun w -> Word.to_fixnum (Obj.car h w))
      (Guardian.pending_list h (Handle.get g))
  in
  let s, l, words = roundtrip h ~words:[ Handle.get g ] in
  let h' = l.Image.heap in
  let g' = List.hd words in
  check "still a guardian" true (Guardian.is_guardian h' g');
  check_canonical "guardian pending" s l;
  (* Retrieval dequeues, so it comes after the canonical-bytes check. *)
  let after =
    List.map (fun w -> Word.to_fixnum (Obj.car h' w)) (retrieve_all h' g')
  in
  Alcotest.(check (list int)) "pending order preserved" before after

let test_guardian_registration_survives () =
  (* A registration that has NOT fired yet: the protected-list entry
     rides along, and the restored collector fires it. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let obj = Obj.cons h (fx 21) Word.nil in
  let rep = Obj.cons h (fx 22) Word.nil in
  Guardian.register h (Handle.get g) obj;
  Guardian.register_with_rep h (Handle.get g) ~obj ~rep;
  check_int "entries pending in gen 0" 2 (Heap.protected_length h 0);
  let _, l, words = roundtrip h ~words:[ Handle.get g ] in
  let h' = l.Image.heap in
  let g' = List.hd words in
  check_int "entries restored" 2 (Heap.protected_length h' 0);
  (* obj is unreachable in h' (only the guardian came through a root):
     both registrations fire. *)
  Heap.with_cell h' g' (fun c ->
      full_collect h';
      let saved = retrieve_all h' (Heap.read_cell h' c) in
      let ints =
        List.sort compare (List.map (fun w -> Word.to_fixnum (Obj.car h' w)) saved)
      in
      Alcotest.(check (list int)) "both registrations fired" [ 21; 22 ] ints)

let test_reregistration_after_restore () =
  (* Retrieve from a restored guardian, re-register, drop, collect: the
     object comes back again.  Exercises the guardian-id restore (the
     telemetry hub must know the image's gids). *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 8) Word.nil);
  full_collect h;
  let _, l, words = roundtrip h ~words:[ Handle.get g ] in
  let h' = l.Image.heap in
  let g' = List.hd words in
  Heap.with_cell h' g' (fun c ->
      let g' () = Heap.read_cell h' c in
      let x = Option.get (Guardian.retrieve h' (g' ())) in
      check_int "retrieved after restore" 8 (Word.to_fixnum (Obj.car h' x));
      Guardian.register h' (g' ()) x;
      full_collect h';
      check "re-registration fires" true
        (Guardian.retrieve h' (g' ()) <> None);
      (* A brand-new guardian on the restored heap gets a fresh id. *)
      let g2 = Guardian.make h' in
      check "fresh gid after restore" true
        (Guardian.id h' g2 <> Guardian.id h' (g' ())))

let test_guardian_of_guardian_chain () =
  let h = heap () in
  let outer = Handle.create h (Guardian.make h) in
  let mid = Guardian.make h in
  Heap.with_cell h mid (fun midc ->
      let inner = Guardian.make h in
      Heap.with_cell h inner (fun innerc ->
          let x = Obj.cons h (fx 77) Word.nil in
          Guardian.register h (Heap.read_cell h innerc) x;
          Guardian.register h (Heap.read_cell h midc) (Heap.read_cell h innerc);
          Guardian.register h (Handle.get outer) (Heap.read_cell h midc)));
  (* Image taken while the whole chain is registered-but-unfired. *)
  let _, l, words = roundtrip h ~words:[ Handle.get outer ] in
  let h' = l.Image.heap in
  let outer' = List.hd words in
  Heap.with_cell h' outer' (fun c ->
      full_collect h';
      let mid' = Option.get (Guardian.retrieve h' (Heap.read_cell h' c)) in
      check "mid is guardian" true (Guardian.is_guardian h' mid');
      let inner' = Option.get (Guardian.retrieve h' mid') in
      check "inner is guardian" true (Guardian.is_guardian h' inner');
      let x' = Option.get (Guardian.retrieve h' inner') in
      check_int "x found through restored chain" 77
        (Word.to_fixnum (Obj.car h' x')))

let test_symtab_identity () =
  let h = heap () in
  let st = Symtab.create h in
  let foo = Symtab.intern st "foo" in
  let bar = Symtab.intern st "bar" in
  check "interning is identity" true (Word.equal foo (Symtab.intern st "foo"));
  let s = Image.save_string ~symbols:(Symtab.entries st) h in
  let l = Image.load_string ~config:(Heap.config h) s in
  let h' = l.Image.heap in
  let st' = Symtab.create h' in
  Symtab.restore st' l.Image.symbols;
  check_int "both symbols restored" 2 (Symtab.count st');
  let foo' = Symtab.intern st' "foo" in
  check "restored symbol is interned, not re-made" true
    (Word.equal foo' (List.assoc "foo" l.Image.symbols));
  check_str "symbol name round-trips" "foo" (Obj.symbol_name_string h' foo');
  check "distinct symbols stay distinct" true
    (not (Word.equal foo' (Symtab.intern st' "bar")));
  ignore bar;
  (* Identity through heap structure: a pair of the symbol and a fresh
     intern of the same name are eq. *)
  let p = Obj.cons h' foo' (Symtab.intern st' "foo") in
  check "eq through structure" true (Word.equal (Obj.car h' p) (Obj.cdr h' p));
  Symtab.dispose st'

let test_allocation_continues_in_cursor_segment () =
  (* The mutator cursors are restored: allocation after a load continues
     in the partially-filled segments rather than acquiring fresh ones. *)
  let h = heap () in
  ignore (Obj.cons h (fx 1) Word.nil);
  let segs_before = Heap.live_segments h in
  let _, l, _ = roundtrip h in
  let h' = l.Image.heap in
  check_int "same live segments" segs_before (Heap.live_segments h');
  ignore (Obj.cons h' (fx 2) Word.nil);
  check_int "no fresh segment for the next cons" segs_before
    (Heap.live_segments h');
  check "verify clean" true (Verify.verify h' = [])

let test_telemetry_counters () =
  let h = heap () in
  ignore (Obj.cons h (fx 1) Word.nil);
  let s = Image.save_string h in
  let c = Telemetry.image_counters (Heap.telemetry h) in
  check_int "one save" 1 c.Telemetry.saves;
  check_int "bytes counted" (String.length s) c.Telemetry.bytes_written;
  check "words counted" true (c.Telemetry.words_written > 0);
  let l = Image.load_string ~config:(Heap.config h) s in
  let c' = Telemetry.image_counters (Heap.telemetry l.Image.heap) in
  check_int "one load" 1 c'.Telemetry.loads;
  check_int "bytes read" (String.length s) c'.Telemetry.bytes_read;
  check_int "words read = words written" c.Telemetry.words_written
    c'.Telemetry.words_read

(* ------------------------------------------------------------------ *)
(* Rejection paths                                                     *)

let expect_error name f =
  match f () with
  | (_ : Image.loaded) -> Alcotest.fail (name ^ ": corrupt image accepted")
  | exception Image.Error _ -> ()
  | exception e ->
      Alcotest.fail
        (Printf.sprintf "%s: expected Image.Error, got %s" name
           (Printexc.to_string e))

let small_image () =
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 1) Word.nil);
  ignore (Obj.cons h (fx 2) (Obj.string_of_ocaml h "x"));
  Image.save_string h

let test_every_single_byte_flip_rejected () =
  (* The ISSUE's contract: flip any single byte of a valid image and the
     loader must reject it cleanly (magic, version, length, CRC — some
     check fires for every position), never crash, never silently load. *)
  let s = small_image () in
  let n = String.length s in
  for pos = 0 to n - 1 do
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
    expect_error
      (Printf.sprintf "flip at %d/%d" pos n)
      (fun () -> Image.load_string (Bytes.to_string b))
  done;
  (* Low-bit flips too, at a sample of positions. *)
  let step = max 1 (n / 97) in
  let pos = ref 0 in
  while !pos < n do
    let b = Bytes.of_string s in
    Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0x01));
    expect_error
      (Printf.sprintf "low-bit flip at %d" !pos)
      (fun () -> Image.load_string (Bytes.to_string b));
    pos := !pos + step
  done

let test_truncation_rejected () =
  let s = small_image () in
  List.iter
    (fun len ->
      expect_error
        (Printf.sprintf "truncated to %d" len)
        (fun () -> Image.load_string (String.sub s 0 len)))
    [ 0; 1; 7; 8; 12; 20; 23; String.length s / 2; String.length s - 1 ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_version_mismatch_rejected () =
  let s = small_image () in
  let b = Bytes.of_string s in
  (* The version field sits right after the 8-byte magic and is outside
     the CRC'd payload, so this exercises the version check itself. *)
  Bytes.set b 8 '\x02';
  match Image.load_string (Bytes.to_string b) with
  | _ -> Alcotest.fail "future version accepted"
  | exception Image.Error msg ->
      check "message names the version" true (contains_sub msg "version")

let test_bad_magic_rejected () =
  let s = small_image () in
  let b = Bytes.of_string s in
  Bytes.set b 0 'X';
  expect_error "bad magic" (fun () -> Image.load_string (Bytes.to_string b))

let test_config_mismatch_rejected () =
  let s = small_image () in
  expect_error "segment_words mismatch" (fun () ->
      Image.load_string ~config:(Config.v ~segment_words:256 ()) s);
  expect_error "max_generation mismatch" (fun () ->
      Image.load_string
        ~config:(Config.v ~segment_words:128 ~max_generation:2 ())
        s)

let test_ceiling_too_small_rejected () =
  let s = small_image () in
  expect_error "image over max_heap_words" (fun () ->
      Image.load_string
        ~config:(Config.v ~segment_words:128 ~max_generation:3 ~max_heap_words:128 ())
        s)

let test_save_during_collection_rejected () =
  let h = heap () in
  let hit = ref false in
  h.Heap.in_collection <- true;
  (try ignore (Image.save_string h) with Image.Error _ -> hit := true);
  h.Heap.in_collection <- false;
  check "save during collection rejected" true !hit;
  h.Heap.alloc_forbidden <- true;
  let hit2 = ref false in
  (try ignore (Image.save_string h) with Image.Error _ -> hit2 := true);
  h.Heap.alloc_forbidden <- false;
  check "save inside finalization thunk rejected" true !hit2

let () =
  Alcotest.run "image"
    [
      ( "round-trip",
        [
          Alcotest.test_case "empty heap" `Quick test_empty_heap;
          Alcotest.test_case "structure + sharing" `Quick
            test_structure_and_sharing;
          Alcotest.test_case "restored heap collects" `Quick
            test_restored_heap_collects;
          Alcotest.test_case "generations + schedule" `Quick
            test_generations_and_schedule;
          Alcotest.test_case "old-to-young remembered" `Quick
            test_old_to_young_remembered;
          Alcotest.test_case "large object" `Quick test_large_object;
          Alcotest.test_case "weak + ephemeron" `Quick test_weak_and_ephemeron;
          Alcotest.test_case "cursors restored" `Quick
            test_allocation_continues_in_cursor_segment;
          Alcotest.test_case "telemetry counters" `Quick test_telemetry_counters;
        ] );
      ( "guardians",
        [
          Alcotest.test_case "tconc order" `Quick test_tconc_queue_order;
          Alcotest.test_case "pending order" `Quick test_guardian_pending_order;
          Alcotest.test_case "unfired registration" `Quick
            test_guardian_registration_survives;
          Alcotest.test_case "re-registration" `Quick
            test_reregistration_after_restore;
          Alcotest.test_case "guardian-of-guardian" `Quick
            test_guardian_of_guardian_chain;
        ] );
      ( "symtab",
        [ Alcotest.test_case "interned identity" `Quick test_symtab_identity ] );
      ( "rejection",
        [
          Alcotest.test_case "every byte flip" `Quick
            test_every_single_byte_flip_rejected;
          Alcotest.test_case "truncation" `Quick test_truncation_rejected;
          Alcotest.test_case "version mismatch" `Quick
            test_version_mismatch_rejected;
          Alcotest.test_case "bad magic" `Quick test_bad_magic_rejected;
          Alcotest.test_case "config mismatch" `Quick
            test_config_mismatch_rejected;
          Alcotest.test_case "heap ceiling" `Quick
            test_ceiling_too_small_rejected;
          Alcotest.test_case "save during collection" `Quick
            test_save_during_collection_rejected;
        ] );
    ]
