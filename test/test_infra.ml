(* Verification infrastructure: the heap verifier must catch deliberately
   injected corruption; the trace ring records collections; independent
   heaps do not interfere. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:2 ()
let heap () = Heap.create ~config:cfg ()
let fx = Word.of_fixnum
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

let has_error errs what =
  List.exists (fun e -> e.Verify.what = what) errs

(* --- verifier: clean heaps pass ------------------------------------- *)

let test_clean_heap_verifies () =
  let h = heap () in
  let _l = Handle.create h (Obj.list_of h (List.map fx [ 1; 2; 3 ])) in
  let _v = Handle.create h (Obj.make_vector h ~len:5 ~init:(Obj.string_of_ocaml h "x")) in
  let _w = Handle.create h (Weak_pair.cons h (fx 1) Word.nil) in
  Alcotest.(check int) "no errors" 0 (List.length (Verify.verify h));
  full_collect h;
  Alcotest.(check int) "no errors after gc" 0 (List.length (Verify.verify h))

(* --- verifier: injected corruptions are caught ----------------------- *)

let test_catches_dangling_pointer () =
  let h = heap () in
  let p = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  (* Fabricate a pointer into an unused segment region; stored raw, since
     the write barrier itself would (rightly) choke on it. *)
  let bogus = Word.pair_ptr ((1 lsl Heap.stride_bits) * 1000) in
  Heap.store h (Word.addr (Handle.get p)) bogus;
  check "dangling caught" true
    (has_error (Verify.verify h) "pointer to unknown segment")

let test_catches_interior_pointer () =
  let h = heap () in
  let v = Handle.create h (Obj.make_vector h ~len:4 ~init:Word.nil) in
  (* Point into the middle of the vector (a field, not the header). *)
  let interior = Word.typed_ptr (Word.addr (Handle.get v) + 2) in
  let holder = Handle.create h (Obj.cons h Word.nil Word.nil) in
  Obj.set_car h (Handle.get holder) interior;
  check "interior caught" true
    (has_error (Verify.verify h) "pointer to object interior")

let test_catches_wrong_tag () =
  let h = heap () in
  let pair = Obj.cons h (fx 1) (fx 2) in
  let holder = Handle.create h (Obj.cons h Word.nil Word.nil) in
  (* A typed-object pointer aimed at a pair cell. *)
  Obj.set_car h (Handle.get holder) (Word.typed_ptr (Word.addr pair));
  check "tag mismatch caught" true
    (has_error (Verify.verify h) "typed pointer into pair space")

let test_catches_remembered_set_violation () =
  let h = heap () in
  let v = Handle.create h (Obj.make_vector h ~len:2 ~init:Word.nil) in
  full_collect h;
  full_collect h;
  (* Old vector now; store a young pointer bypassing the write barrier. *)
  let young = Obj.cons h (fx 1) Word.nil in
  Heap.store h (Word.addr (Handle.get v) + 1) young;
  check "unremembered old-to-young caught" true
    (has_error (Verify.verify h) "old-to-young pointer not remembered")

let test_catches_smashed_header () =
  let h = heap () in
  let v = Handle.create h (Obj.make_vector h ~len:3 ~init:(fx 0)) in
  (* Overwrite the header with a non-fixnum word. *)
  Heap.store h (Word.addr (Handle.get v)) Word.true_;
  check "smashed header caught" true (has_error (Verify.verify h) "malformed header")

let test_catches_stored_forward_marker () =
  let h = heap () in
  let p = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  Heap.store h (Word.addr (Handle.get p)) Word.forward_marker;
  check "marker caught" true
    (List.length (Verify.verify h) > 0)

(* --- telemetry ring --------------------------------------------------- *)

let traced_heap () =
  let h = heap () in
  Telemetry.set_enabled (Heap.telemetry h) true;
  h

let test_trace_records () =
  let h = traced_heap () in
  let tr = Telemetry.Ring.attach ~capacity:8 (Heap.telemetry h) in
  let keep = Handle.create h (Obj.list_of h (List.map fx [ 1; 2; 3 ])) in
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:1);
  let recs = Telemetry.Ring.records tr in
  check_int "two records" 2 (List.length recs);
  let r1 = List.nth recs 0 and r2 = List.nth recs 1 in
  check_int "gen of first" 0 r1.Telemetry.Ring.generation;
  check_int "gen of second" 1 r2.Telemetry.Ring.generation;
  check "ordinals increase" true (r2.Telemetry.Ring.ordinal > r1.Telemetry.Ring.ordinal);
  check "copied something" true (r1.Telemetry.Ring.counters.Stats.words_copied > 0);
  check "live recorded" true (r1.Telemetry.Ring.live_words_after > 0);
  ignore keep;
  Telemetry.Ring.detach tr;
  ignore (Collector.collect h ~gen:0);
  check_int "no records after detach" 2 (List.length (Telemetry.Ring.records tr))

let test_trace_ring_bounded () =
  let h = traced_heap () in
  let tr = Telemetry.Ring.attach ~capacity:4 (Heap.telemetry h) in
  for _ = 1 to 10 do
    ignore (Collector.collect h ~gen:0)
  done;
  let recs = Telemetry.Ring.records tr in
  check_int "bounded" 4 (List.length recs);
  check_int "total counted" 10 (Telemetry.Ring.total_recorded tr);
  (* The retained ones are the most recent, in order. *)
  let ords = List.map (fun r -> r.Telemetry.Ring.ordinal) recs in
  Alcotest.(check (list int)) "latest four" [ 7; 8; 9; 10 ] ords;
  Telemetry.Ring.detach tr

let test_trace_guardian_counters () =
  let h = traced_heap () in
  let tr = Telemetry.Ring.attach (Heap.telemetry h) in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 1) Word.nil);
  full_collect h;
  let r = List.hd (List.rev (Telemetry.Ring.records tr)) in
  check_int "resurrection recorded" 1
    r.Telemetry.Ring.counters.Stats.guardian_resurrections;
  Telemetry.Ring.detach tr

(* --- heap isolation --------------------------------------------------- *)

let test_two_heaps_do_not_interfere () =
  let h1 = heap () and h2 = heap () in
  let a = Handle.create h1 (Obj.cons h1 (fx 1) Word.nil) in
  let b = Handle.create h2 (Obj.cons h2 (fx 2) Word.nil) in
  (* Guardians in both; collect only h1. *)
  let g1 = Handle.create h1 (Guardian.make h1) in
  let g2 = Handle.create h2 (Guardian.make h2) in
  Guardian.register h1 (Handle.get g1) (Obj.cons h1 (fx 10) Word.nil);
  Guardian.register h2 (Handle.get g2) (Obj.cons h2 (fx 20) Word.nil);
  full_collect h1;
  check "h1 guardian fired" true (Guardian.retrieve h1 (Handle.get g1) <> None);
  check "h2 guardian untouched" true (Guardian.pending_count h2 (Handle.get g2) = 0);
  check_int "h2 no collections" 0 (Heap.stats h2).Stats.total.Stats.collections;
  full_collect h2;
  check "h2 fires later" true (Guardian.retrieve h2 (Handle.get g2) <> None);
  check_int "h1 value" 1 (Word.to_fixnum (Obj.car h1 (Handle.get a)));
  check_int "h2 value" 2 (Word.to_fixnum (Obj.car h2 (Handle.get b)))

(* --- allocation edge cases -------------------------------------------- *)

let test_objects_straddle_segments () =
  (* Objects sized to leave awkward tails: every segment boundary must be
     handled and everything must survive collection. *)
  let h = Heap.create ~config:(Config.v ~segment_words:32 ~max_generation:1 ()) () in
  let keep = Handle.create h Word.nil in
  for i = 1 to 200 do
    let v = Obj.make_vector h ~len:(1 + (i mod 13)) ~init:(fx i) in
    Handle.set keep (Obj.cons h v (Handle.get keep))
  done;
  Verify.check_exn h;
  full_collect h;
  Verify.check_exn h;
  let rec walk l i =
    if not (Word.is_nil l) then begin
      let v = Obj.car h l in
      let expect = 200 - i in
      check "contents" true
        (Word.to_fixnum (Obj.vector_ref h v 0) = expect);
      walk (Obj.cdr h l) (i + 1)
    end
  in
  walk (Handle.get keep) 0

(* --- census ----------------------------------------------------------- *)

let test_census_matches_live_after_full_gc () =
  let h = heap () in
  let keep = Handle.create h Word.nil in
  for i = 0 to 99 do
    let v = Obj.make_vector h ~len:(i mod 5) ~init:(fx i) in
    let s = Obj.string_of_ocaml h (string_of_int i) in
    let wp = Weak_pair.cons h v s in
    Handle.set keep (Obj.cons h wp (Handle.get keep))
  done;
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 1) Word.nil);
  full_collect h;
  let census = Census.run h in
  check_int "census equals live words" (Heap.live_words h) census.Census.reachable.Census.words;
  check_int "no slack after full gc" 0 (Census.slack census)

let test_census_slack_tracks_garbage () =
  let h = heap () in
  let _keep = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  let c0 = Census.run h in
  check_int "fresh heap: no slack" 0 (Census.slack c0);
  for i = 0 to 499 do
    ignore (Obj.cons h (fx i) Word.nil)
  done;
  let c1 = Census.run h in
  check_int "garbage words are slack" 1000 (Census.slack c1);
  full_collect h;
  check_int "collected away" 0 (Census.slack (Census.run h))

let test_census_weak_semantics () =
  let h = heap () in
  (* The target is reachable only through a weak car: census must not count
     it. *)
  let target = Handle.create h (Obj.make_vector h ~len:10 ~init:Word.nil) in
  let wp = Handle.create h (Weak_pair.cons h (Handle.get target) Word.nil) in
  let c_with = Census.run h in
  Handle.free target;
  let c_without = Census.run h in
  check "weak-only target not counted" true
    (c_without.Census.reachable.Census.words < c_with.Census.reachable.Census.words);
  check_int "weak pair itself counted" 1 c_without.Census.reachable.Census.weak_pairs;
  Handle.free wp

let test_census_ephemeron_semantics () =
  let h = heap () in
  let key = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  let payload = Obj.make_vector h ~len:20 ~init:Word.nil in
  let e = Handle.create h (Ephemeron.cons h (Handle.get key) payload) in
  let c_live = Census.run h in
  check "value counted while key live" true
    (c_live.Census.reachable.Census.typed.(Gbc_runtime.Obj.code_vector) >= 1);
  Handle.free key;
  let c_dead = Census.run h in
  (* Key now unreachable: the value must not be counted either. *)
  check "value hidden once key unreachable" true
    (c_dead.Census.reachable.Census.words < c_live.Census.reachable.Census.words);
  check_int "ephemeron counted" 1 c_dead.Census.reachable.Census.ephemerons;
  Handle.free e

let () =
  Alcotest.run "infra"
    [
      ( "verifier",
        [
          Alcotest.test_case "clean heap" `Quick test_clean_heap_verifies;
          Alcotest.test_case "dangling pointer" `Quick test_catches_dangling_pointer;
          Alcotest.test_case "interior pointer" `Quick test_catches_interior_pointer;
          Alcotest.test_case "wrong tag" `Quick test_catches_wrong_tag;
          Alcotest.test_case "remembered-set violation" `Quick
            test_catches_remembered_set_violation;
          Alcotest.test_case "smashed header" `Quick test_catches_smashed_header;
          Alcotest.test_case "stored marker" `Quick test_catches_stored_forward_marker;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records" `Quick test_trace_records;
          Alcotest.test_case "ring bounded" `Quick test_trace_ring_bounded;
          Alcotest.test_case "guardian counters" `Quick test_trace_guardian_counters;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "two heaps" `Quick test_two_heaps_do_not_interfere;
          Alcotest.test_case "segment boundaries" `Quick test_objects_straddle_segments;
        ] );
      ( "census",
        [
          Alcotest.test_case "matches live after full gc" `Quick
            test_census_matches_live_after_full_gc;
          Alcotest.test_case "slack tracks garbage" `Quick test_census_slack_tracks_garbage;
          Alcotest.test_case "weak semantics" `Quick test_census_weak_semantics;
          Alcotest.test_case "ephemeron semantics" `Quick test_census_ephemeron_semantics;
        ] );
    ]
