(* Guardian semantics: the full Section 3 behaviour, cross-generation
   behaviour, the Section 5 representative interface, and the collector
   work counters behind the generation-friendliness claim. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:3 ()
let heap () = Heap.create ~config:cfg ()
let fx = Word.of_fixnum

let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

let retrieve_all h g =
  let rec loop acc =
    match Guardian.retrieve h g with None -> List.rev acc | Some w -> loop (w :: acc)
  in
  loop []

let test_no_premature_return () =
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let x = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  Guardian.register h (Handle.get g) (Handle.get x);
  full_collect h;
  full_collect h;
  check "accessible object never returned" true
    (Guardian.retrieve h (Handle.get g) = None);
  Handle.free x

let test_save_and_contents () =
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let deep = Obj.cons h (fx 1) (Obj.cons h (fx 2) (Obj.cons h (fx 3) Word.nil)) in
  Guardian.register h (Handle.get g) deep;
  full_collect h;
  match Guardian.retrieve h (Handle.get g) with
  | Some w ->
      (* The whole structure is preserved, not just the registered cell. *)
      Alcotest.(check (list int)) "structure intact" [ 1; 2; 3 ]
        (List.map Word.to_fixnum (Obj.to_list h w))
  | None -> Alcotest.fail "expected saved object"

let test_retrieved_object_is_ordinary () =
  (* "objects that have been retrieved from a guardian have no special
     status": it can be stored, re-registered, and even become garbage
     again and be re-guarded. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 9) Word.nil);
  full_collect h;
  let saved = Handle.create h (Option.get (Guardian.retrieve h (Handle.get g))) in
  check_int "usable" 9 (Word.to_fixnum (Obj.car h (Handle.get saved)));
  (* Survives further collections while referenced. *)
  full_collect h;
  check_int "still alive" 9 (Word.to_fixnum (Obj.car h (Handle.get saved)));
  (* Re-register and drop: comes back again. *)
  Guardian.register h (Handle.get g) (Handle.get saved);
  Handle.free saved;
  full_collect h;
  check "returned again" true (Guardian.retrieve h (Handle.get g) <> None)

let test_two_guardians_same_object () =
  let h = heap () in
  let g1 = Handle.create h (Guardian.make h) in
  let g2 = Handle.create h (Guardian.make h) in
  let x = Obj.cons h (fx 5) Word.nil in
  Guardian.register h (Handle.get g1) x;
  Guardian.register h (Handle.get g2) x;
  full_collect h;
  let a = Guardian.retrieve h (Handle.get g1) in
  let b = Guardian.retrieve h (Handle.get g2) in
  check "both guardians yield it" true (a <> None && b <> None);
  check "same identity" true (Word.equal (Option.get a) (Option.get b))

let test_cyclic_structure_saved_whole () =
  (* Shared/cyclic structures: every registered piece is queued and the
     program controls processing order. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let a = Obj.cons h (fx 1) Word.nil in
  let b = Obj.cons h (fx 2) a in
  Obj.set_cdr h a b;
  Guardian.register h (Handle.get g) a;
  Guardian.register h (Handle.get g) b;
  full_collect h;
  let saved = retrieve_all h (Handle.get g) in
  check_int "both pieces" 2 (List.length saved);
  let ints = List.sort compare (List.map (fun w -> Word.to_fixnum (Obj.car h w)) saved) in
  Alcotest.(check (list int)) "pieces" [ 1; 2 ] ints;
  (* The cycle is intact across the two saved pieces. *)
  let a' = List.find (fun w -> Word.to_fixnum (Obj.car h w) = 1) saved in
  let b' = List.find (fun w -> Word.to_fixnum (Obj.car h w) = 2) saved in
  check "cycle intact" true (Word.equal (Obj.cdr h a') b' && Word.equal (Obj.cdr h b') a')

let test_guardian_chain_three_deep () =
  let h = heap () in
  let outer = Handle.create h (Guardian.make h) in
  let mid = Guardian.make h in
  Heap.with_cell h mid (fun midc ->
      let inner = Guardian.make h in
      Heap.with_cell h inner (fun innerc ->
          let x = Obj.cons h (fx 77) Word.nil in
          Guardian.register h (Heap.read_cell h innerc) x;
          Guardian.register h (Heap.read_cell h midc) (Heap.read_cell h innerc);
          Guardian.register h (Handle.get outer) (Heap.read_cell h midc)));
  (* mid, inner, x all dropped together. *)
  full_collect h;
  let mid' = Option.get (Guardian.retrieve h (Handle.get outer)) in
  check "mid is guardian" true (Guardian.is_guardian h mid');
  let inner' = Option.get (Guardian.retrieve h mid') in
  check "inner is guardian" true (Guardian.is_guardian h inner');
  let x' = Option.get (Guardian.retrieve h inner') in
  check_int "x found" 77 (Word.to_fixnum (Obj.car h x'))

let test_representative_interface () =
  (* Section 5: register with a separate representative; the object itself
     is reclaimed, the rep is returned. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let obj = Obj.cons h (fx 1) Word.nil in
  let rep = Obj.cons h (fx 2) Word.nil in
  Guardian.register_with_rep h (Handle.get g) ~obj ~rep;
  full_collect h;
  (match Guardian.retrieve h (Handle.get g) with
  | Some w -> check_int "rep returned" 2 (Word.to_fixnum (Obj.car h w))
  | None -> Alcotest.fail "expected rep");
  (* The object was not resurrected: its words were reclaimed.  We can only
     check indirectly: nothing else is in the queue. *)
  check "queue empty" true (Guardian.retrieve h (Handle.get g) = None)

let test_representative_kept_while_object_alive () =
  (* The rep must stay alive as long as the registration is pending, even
     though nothing else references it. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let obj = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  Guardian.register_with_rep h (Handle.get g) ~obj:(Handle.get obj)
    ~rep:(Obj.cons h (fx 42) Word.nil);
  full_collect h;
  full_collect h;
  check "nothing yet" true (Guardian.retrieve h (Handle.get g) = None);
  Handle.free obj;
  full_collect h;
  (match Guardian.retrieve h (Handle.get g) with
  | Some w -> check_int "rep survived the wait" 42 (Word.to_fixnum (Obj.car h w))
  | None -> Alcotest.fail "expected rep")

let test_cross_generation_registration () =
  (* Register an already-old object: the entry climbs the protected lists
     and fires only when the object's generation is collected. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let x = Handle.create h (Obj.cons h (fx 8) Word.nil) in
  full_collect h;
  full_collect h;
  (* x now lives in an old generation. *)
  let xgen = Heap.generation_of_word h (Handle.get x) in
  check "old" true (xgen >= 2);
  Guardian.register h (Handle.get g) (Handle.get x);
  Handle.free x;
  ignore (Collector.collect h ~gen:0);
  check "minor collection cannot prove it dead" true
    (Guardian.retrieve h (Handle.get g) = None);
  full_collect h;
  check "full collection fires it" true (Guardian.retrieve h (Handle.get g) <> None)

let test_guardian_drop_cancels_group () =
  (* "Finalization of a group of objects can be canceled by simply dropping
     all references to the guardian." *)
  let h = heap () in
  let g = Guardian.make h in
  Heap.with_cell h g (fun gc ->
      for i = 0 to 9 do
        Guardian.register h (Heap.read_cell h gc) (Obj.cons h (fx i) Word.nil)
      done);
  (* Guardian and all ten objects dropped together. *)
  full_collect h;
  let stats = (Heap.stats h).Stats.last in
  check_int "no resurrections" 0 stats.Stats.guardian_resurrections;
  check_int "all entries dropped" 10 stats.Stats.guardian_entries_dropped

let test_immediates_never_returned () =
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (fx 42);
  Guardian.register h (Handle.get g) Word.true_;
  full_collect h;
  full_collect h;
  check "immediates are never inaccessible" true
    (Guardian.retrieve h (Handle.get g) = None)

let test_pending_survive_collection () =
  (* Objects sitting in the inaccessible group survive further collections
     until retrieved (the tconc holds them strongly). *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 3) Word.nil);
  full_collect h;
  check_int "pending" 1 (Guardian.pending_count h (Handle.get g));
  full_collect h;
  full_collect h;
  check_int "still pending" 1 (Guardian.pending_count h (Handle.get g));
  check_int "contents" 3
    (Word.to_fixnum (Obj.car h (Option.get (Guardian.retrieve h (Handle.get g)))))

let test_many_objects_fifo_like () =
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  for i = 0 to 99 do
    Guardian.register h (Handle.get g) (Obj.cons h (fx i) Word.nil)
  done;
  full_collect h;
  let saved = retrieve_all h (Handle.get g) in
  check_int "all saved" 100 (List.length saved);
  let ints = List.sort compare (List.map (fun w -> Word.to_fixnum (Obj.car h w)) saved) in
  Alcotest.(check (list int)) "every object once" (List.init 100 Fun.id) ints

let test_mutator_counters () =
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 1) Word.nil);
  full_collect h;
  let s = Heap.stats h in
  let polls0 = s.Stats.guardian_polls and hits0 = s.Stats.guardian_hits in
  ignore (Guardian.retrieve h (Handle.get g));
  ignore (Guardian.retrieve h (Handle.get g));
  check_int "two polls" (polls0 + 2) s.Stats.guardian_polls;
  check_int "one hit" (hits0 + 1) s.Stats.guardian_hits

let test_per_guardian_lifecycle_stats () =
  (* The telemetry layer's per-guardian metrics: registrations,
     resurrections, polls, hits, and drops, keyed by the stable id stored
     in the guardian object (so it survives copying collections). *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let other = Handle.create h (Guardian.make h) in
  check "distinct ids" true
    (Guardian.id h (Handle.get g) <> Guardian.id h (Handle.get other));
  let id_before = Guardian.id h (Handle.get g) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 1) Word.nil);
  Guardian.register h (Handle.get g) (Obj.cons h (fx 2) Word.nil);
  full_collect h;
  check_int "id survives collection" id_before (Guardian.id h (Handle.get g));
  ignore (Guardian.retrieve h (Handle.get g));
  ignore (Guardian.retrieve h (Handle.get g));
  ignore (Guardian.retrieve h (Handle.get g));
  let s = Guardian.stats h (Handle.get g) in
  check_int "registrations" 2 s.Telemetry.g_registrations;
  check_int "resurrections" 2 s.Telemetry.g_resurrections;
  check_int "polls" 3 s.Telemetry.g_polls;
  check_int "hits" 2 s.Telemetry.g_hits;
  (* The other guardian saw none of this. *)
  let s' = Guardian.stats h (Handle.get other) in
  check_int "other untouched" 0 s'.Telemetry.g_polls;
  check_int "other no registrations" 0 s'.Telemetry.g_registrations

let test_poll_latency () =
  (* Latency counts the collections between an entry's resurrection and
     its retrieval.  First entry: resurrected, then two more full
     collections pass before the mutator polls -> latency 2.  Second
     entry: retrieved immediately after its collection -> latency 0. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 1) Word.nil);
  full_collect h;
  full_collect h;
  full_collect h;
  check "late retrieval hits" true (Guardian.retrieve h (Handle.get g) <> None);
  let s = Guardian.stats h (Handle.get g) in
  check_int "latency of late retrieval" 2 s.Telemetry.g_latency_sum;
  check_int "latency max" 2 s.Telemetry.g_latency_max;
  Guardian.register h (Handle.get g) (Obj.cons h (fx 2) Word.nil);
  full_collect h;
  check "prompt retrieval hits" true (Guardian.retrieve h (Handle.get g) <> None);
  let s = Guardian.stats h (Handle.get g) in
  check_int "prompt retrieval adds no latency" 2 s.Telemetry.g_latency_sum;
  check_int "latency max unchanged" 2 s.Telemetry.g_latency_max

let test_drop_counted_per_guardian () =
  (* A dead guardian's pending entries count as drops on its stats. *)
  let h = heap () in
  let tel = Heap.telemetry h in
  let g = Guardian.make h in
  let gid = Guardian.id h g in
  Guardian.register h g (Obj.cons h (fx 1) Word.nil);
  Guardian.register h g (Obj.cons h (fx 2) Word.nil);
  (* Drop the guardian itself; both registered objects die with it. *)
  full_collect h;
  let s = Telemetry.guardian_stats tel gid in
  check_int "both entries dropped" 2 s.Telemetry.g_drops;
  check_int "no resurrections" 0 s.Telemetry.g_resurrections

let test_entries_promoted_with_object () =
  (* A live registration's protected entry moves to the target generation:
     later minor collections do not visit it (generation-friendliness). *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let x = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  Guardian.register h (Handle.get g) (Handle.get x);
  check_int "entry in gen 0" 1 (Heap.protected_length h 0);
  ignore (Collector.collect h ~gen:0);
  check_int "entry left gen 0" 0 (Heap.protected_length h 0);
  check_int "entry in gen 1" 1 (Heap.protected_length h 1);
  ignore (Collector.collect h ~gen:0);
  check_int "minor gc visits no entries" 0
    (Heap.stats h).Stats.last.Stats.protected_entries_visited;
  Handle.free x

let test_single_list_ablation () =
  (* D1: with generation_friendly_guardians = false the semantics are
     unchanged, but every minor collection revisits all entries. *)
  let config = Config.v ~max_generation:3 ~generation_friendly_guardians:false () in
  let h = Heap.create ~config () in
  let g = Handle.create h (Guardian.make h) in
  let x = Handle.create h (Obj.cons h (fx 1) Word.nil) in
  Guardian.register h (Handle.get g) (Handle.get x);
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:0);
  check_int "entry revisited by every minor gc" 1
    (Heap.stats h).Stats.last.Stats.protected_entries_visited;
  (* Semantics still correct. *)
  Handle.free x;
  ignore (Collector.collect h ~gen:(Heap.max_generation h));
  check "still fires" true (Guardian.retrieve h (Handle.get g) <> None)

(* Property: registered objects partition exactly into (retrievable) dead
   and (silent) live across a full collection. *)
let prop_partition =
  QCheck.Test.make ~name:"dead registered objects are returned, live are not" ~count:100
    QCheck.(list bool)
    (fun keep_flags ->
      let h = heap () in
      let g = Handle.create h (Guardian.make h) in
      let kept =
        List.filteri
          (fun i keep ->
            let x = Obj.cons h (fx i) Word.nil in
            Guardian.register h (Handle.get g) x;
            if keep then ignore (Heap.new_cell h x);
            keep)
          keep_flags
      in
      full_collect h;
      let returned = retrieve_all h (Handle.get g) in
      List.length returned = List.length keep_flags - List.length kept)

(* Guardian state through a heap image (gbc-image/1): the paper's
   semantics must be indistinguishable across a checkpoint/restore. *)

let image_roundtrip h gword =
  let extras =
    [ ("g", { Gbc_image.Image.xwords = [| gword |]; xbytes = "" }) ]
  in
  let s = Gbc_image.Image.save_string ~extras h in
  let l = Gbc_image.Image.load_string ~config:(Heap.config h) s in
  (l.Gbc_image.Image.heap, (List.assoc "g" l.Gbc_image.Image.extras).Gbc_image.Image.xwords.(0))

let test_image_roundtrip_mid_lifecycle () =
  (* One object already queued, one still registered-but-live, one
     registered and dead-but-uncollected: all three states survive the
     image and play out identically on the restored heap. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 1) Word.nil);
  full_collect h;
  check_int "one queued pre-image" 1 (Guardian.pending_count h (Handle.get g));
  let live = Obj.cons h (fx 2) Word.nil in
  Heap.with_cell h live (fun livec ->
      Guardian.register h (Handle.get g) live;
      Guardian.register h (Handle.get g) (Obj.cons h (fx 3) Word.nil);
      let h', g' = image_roundtrip h (Handle.get g) in
      check_int "queued entry restored" 1 (Guardian.pending_count h' g');
      Heap.with_cell h' g' (fun gc ->
          (* Global root cells ride along in the image, so object 2 is
             still rooted on the restored heap (through the restored
             cell) and stays silent; 1 (queued) and 3 (dead) fire. *)
          full_collect h';
          let poll () =
            List.sort compare
              (List.map
                 (fun w -> Word.to_fixnum (Obj.car h' w))
                 (retrieve_all h' (Heap.read_cell h' gc)))
          in
          Alcotest.(check (list int)) "queued + dead fire, live silent"
            [ 1; 3 ] (poll ());
          (* Drop the restored root: the live registration now fires. *)
          Heap.free_cell h' livec;
          full_collect h';
          Alcotest.(check (list int)) "fires once its restored root dies"
            [ 2 ] (poll ())))

let test_image_roundtrip_representative () =
  (* A §5 representative registration crosses the image: the rep, not
     the object, comes back. *)
  let h = heap () in
  let g = Handle.create h (Guardian.make h) in
  let obj = Obj.cons h (fx 10) Word.nil in
  let rep = Obj.cons h (fx 20) Word.nil in
  Guardian.register_with_rep h (Handle.get g) ~obj ~rep;
  let h', g' = image_roundtrip h (Handle.get g) in
  Heap.with_cell h' g' (fun gc ->
      full_collect h';
      let got =
        Option.get (Guardian.retrieve h' (Heap.read_cell h' gc))
      in
      check_int "representative returned post-restore" 20
        (Word.to_fixnum (Obj.car h' got)))

let () =
  Alcotest.run "guardian"
    [
      ( "semantics",
        [
          Alcotest.test_case "no premature return" `Quick test_no_premature_return;
          Alcotest.test_case "whole structure saved" `Quick test_save_and_contents;
          Alcotest.test_case "no special status" `Quick test_retrieved_object_is_ordinary;
          Alcotest.test_case "two guardians" `Quick test_two_guardians_same_object;
          Alcotest.test_case "cycles saved whole" `Quick test_cyclic_structure_saved_whole;
          Alcotest.test_case "guardian chain x3" `Quick test_guardian_chain_three_deep;
          Alcotest.test_case "drop cancels group" `Quick test_guardian_drop_cancels_group;
          Alcotest.test_case "immediates" `Quick test_immediates_never_returned;
          Alcotest.test_case "pending survive" `Quick test_pending_survive_collection;
          Alcotest.test_case "100 objects" `Quick test_many_objects_fifo_like;
        ] );
      ( "representative (§5)",
        [
          Alcotest.test_case "rep returned" `Quick test_representative_interface;
          Alcotest.test_case "rep kept alive" `Quick test_representative_kept_while_object_alive;
        ] );
      ( "generations",
        [
          Alcotest.test_case "cross-generation" `Quick test_cross_generation_registration;
          Alcotest.test_case "entries promoted" `Quick test_entries_promoted_with_object;
          Alcotest.test_case "single-list ablation (D1)" `Quick test_single_list_ablation;
        ] );
      ( "counters",
        [
          Alcotest.test_case "mutator counters" `Quick test_mutator_counters;
          Alcotest.test_case "per-guardian lifecycle" `Quick
            test_per_guardian_lifecycle_stats;
          Alcotest.test_case "poll latency" `Quick test_poll_latency;
          Alcotest.test_case "drops per guardian" `Quick
            test_drop_counted_per_guardian;
        ] );
      ( "heap image",
        [
          Alcotest.test_case "mid-lifecycle round-trip" `Quick
            test_image_roundtrip_mid_lifecycle;
          Alcotest.test_case "representative round-trip" `Quick
            test_image_roundtrip_representative;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_partition ]);
    ]
