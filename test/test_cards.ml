(* Card-marked remembered set: config edge cases, card-granular
   dirty-scan precision, write-barrier counters, the worklist guardian
   fixpoint, and a differential property test pitting fine-grained
   cards against a segment-granular oracle heap. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let fx = Word.of_fixnum
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

(* ------------------------------------------------------------------ *)
(* Config edge cases                                                   *)

let test_card_words_validation () =
  Alcotest.check_raises "too small" (Invalid_argument "Config.v: card_words too small")
    (fun () -> ignore (Config.v ~card_words:4 ()));
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Config.v: card_words must be a power of two")
    (fun () -> ignore (Config.v ~card_words:48 ()));
  Alcotest.check_raises "max_generation too large for a card byte"
    (Invalid_argument "Config.v: max_generation must be <= 254")
    (fun () -> ignore (Config.v ~max_generation:255 ()))

(* Exercise an edge configuration end to end: allocate into old
   segments, store young pointers, and make sure collections keep the
   edges alive. *)
let exercise_edges config =
  let h = Heap.create ~config () in
  let vc = Heap.new_cell h (Obj.make_vector h ~len:8 ~init:Word.nil) in
  ignore (Collector.collect h ~gen:1);
  ignore (Collector.collect h ~gen:1);
  let v = Heap.read_cell h vc in
  check_int "vector is old" 2 (Heap.generation_of_word h v);
  Obj.vector_set h v 3 (Obj.cons h (fx 7) Word.nil);
  Obj.vector_set h v 7 (Obj.cons h (fx 8) Word.nil);
  ignore (Collector.collect h ~gen:0);
  let v = Heap.read_cell h vc in
  check_int "edge 3 survives" 7 (Word.to_fixnum (Obj.car h (Obj.vector_ref h v 3)));
  check_int "edge 7 survives" 8 (Word.to_fixnum (Obj.car h (Obj.vector_ref h v 7)));
  h

let test_card_bigger_than_segment () =
  (* card_words >= segment_words degenerates to one card per segment:
     the pre-card segment-granular behaviour. *)
  let config = Config.v ~segment_words:64 ~max_generation:3 ~card_words:1024 () in
  let h = exercise_edges config in
  (* Every live segment is covered by a single card. *)
  Vec.Int.iter (Heap.live_segments_of_gen h 2) ~f:(fun seg ->
      check "one card per segment" true (Heap.cards_in_use h seg <= 1))

let test_minimum_card_size () =
  let config = Config.v ~segment_words:64 ~max_generation:3 ~card_words:8 () in
  let h = exercise_edges config in
  check_int "effective card size" 8 (Heap.card_words h)

(* ------------------------------------------------------------------ *)
(* Dirty-scan precision and barrier counters                           *)

let test_dirty_scan_visits_cards_not_segments () =
  let config = Config.v ~segment_words:2048 ~max_generation:3 ~card_words:64 () in
  let h = Heap.create ~config () in
  (* One vector nearly filling its segment, promoted old. *)
  let vc = Heap.new_cell h (Obj.make_vector h ~len:2000 ~init:(fx 0)) in
  ignore (Collector.collect h ~gen:1);
  ignore (Collector.collect h ~gen:1);
  let v = Heap.read_cell h vc in
  check_int "vector old" 2 (Heap.generation_of_word h v);
  let calls0 = (Heap.stats h).Stats.barrier_calls in
  let hits0 = (Heap.stats h).Stats.barrier_hits in
  (* One old-to-young store into the middle of the vector. *)
  Obj.vector_set h v 1000 (Obj.cons h (fx 42) Word.nil);
  let st = Heap.stats h in
  check "barrier called" true (st.Stats.barrier_calls > calls0);
  check_int "one old-to-young hit" (hits0 + 1) st.Stats.barrier_hits;
  (* Young noise, then the minor collection under test. *)
  for i = 0 to 99 do
    ignore (Obj.cons h (fx i) Word.nil)
  done;
  ignore (Collector.collect h ~gen:0);
  let last = (Heap.stats h).Stats.last in
  check_int "one dirty segment" 1 last.Stats.dirty_segments_scanned;
  check "at most 2 cards visited" true (last.Stats.cards_scanned <= 2);
  check "scan work bounded by cards, not segment" true
    (last.Stats.card_words_swept <= 2 * Heap.card_words h);
  check "candidate words cover the whole segment" true
    (last.Stats.dirty_candidate_words >= 2000);
  (* The edge survived the card-granular scan. *)
  let v = Heap.read_cell h vc in
  check_int "edge intact" 42 (Word.to_fixnum (Obj.car h (Obj.vector_ref h v 1000)))

let test_clean_old_segment_not_rescanned () =
  let config = Config.v ~segment_words:2048 ~max_generation:3 ~card_words:64 () in
  let h = Heap.create ~config () in
  let vc = Heap.new_cell h (Obj.make_vector h ~len:2000 ~init:(fx 0)) in
  ignore (Collector.collect h ~gen:1);
  ignore (Collector.collect h ~gen:1);
  let v = Heap.read_cell h vc in
  Obj.vector_set h v 5 (Obj.cons h (fx 1) Word.nil);
  ignore (Collector.collect h ~gen:0);
  (* The stored pair was promoted to generation 1; a second minor
     collection must find the (now gen-1-referencing) card but sweep no
     more than before, and once the referent ages out the segment drops
     off the dirty list entirely. *)
  ignore (Collector.collect h ~gen:1);
  ignore (Collector.collect h ~gen:1);
  ignore (Collector.collect h ~gen:0);
  let last = (Heap.stats h).Stats.last in
  check_int "no dirty segments left" 0 last.Stats.dirty_segments_scanned;
  check_int "no cards scanned" 0 last.Stats.cards_scanned

(* ------------------------------------------------------------------ *)
(* Worklist guardian fixpoint                                          *)

let test_chained_guardians_pend_checks () =
  (* A chain of guardians each registered with the previous one: the
     old quadratic re-scan checked O(n^2) pend entries; the worklist
     must check each entry O(1) times (once to classify, once when its
     tconc's forward wakes it). *)
  let n = 48 in
  let config = Config.v ~segment_words:256 ~max_generation:3 () in
  let h = Heap.create ~config () in
  let gs = Array.init (n + 1) (fun _ -> Handle.create h Word.nil) in
  Handle.set gs.(0) (Guardian.make h);
  for i = 1 to n do
    Handle.set gs.(i) (Guardian.make h);
    Guardian.register h (Handle.get gs.(i - 1)) (Handle.get gs.(i))
  done;
  (* Drop every guardian but the root of the chain. *)
  for i = 1 to n do
    Handle.set gs.(i) Word.nil;
    Handle.free gs.(i)
  done;
  full_collect h;
  let last = (Heap.stats h).Stats.last in
  check_int "all resurrected" n last.Stats.guardian_resurrections;
  check "pend checks O(1) amortized" true
    (last.Stats.guardian_pend_checks <= (2 * n) + 4);
  check "every entry classified" true (last.Stats.guardian_pend_checks >= n);
  (* The chain is retrievable link by link. *)
  let count = ref 0 in
  let rec walk g =
    match Guardian.retrieve h g with
    | None -> ()
    | Some g' ->
        check "link is a guardian" true (Guardian.is_guardian h g');
        incr count;
        walk g'
  in
  walk (Handle.get gs.(0));
  check_int "chain fully retrieved" n !count

(* ------------------------------------------------------------------ *)
(* Differential property test: cards vs segment-granular oracle        *)

type op =
  | Alloc of int
  | Link of int * int  (* cdr of root a's pair := root b's pair *)
  | Drop of int
  | Collect of int

let nroots = 12

let pp_op = function
  | Alloc i -> Printf.sprintf "Alloc(%d)" i
  | Link (a, b) -> Printf.sprintf "Link(%d,%d)" a b
  | Drop i -> Printf.sprintf "Drop(%d)" i
  | Collect g -> Printf.sprintf "Collect(%d)" g

let op_gen =
  let open QCheck.Gen in
  let slot = int_range 0 (nroots - 1) in
  frequency
    [
      (4, map (fun i -> Alloc i) slot);
      (4, map2 (fun a b -> Link (a, b)) slot slot);
      (2, map (fun i -> Drop i) slot);
      (3, map (fun g -> Collect g) (int_range 0 2));
    ]

(* Serialize the list hanging off a root, depth-capped so cyclic links
   terminate identically on both heaps. *)
let serialize h w =
  let buf = Buffer.create 64 in
  let rec go d w =
    if d = 0 then Buffer.add_char buf '#'
    else if Word.equal w Word.nil then Buffer.add_string buf "()"
    else begin
      Buffer.add_string buf (string_of_int (Word.to_fixnum (Obj.car h w)));
      Buffer.add_char buf ';';
      go (d - 1) (Obj.cdr h w)
    end
  in
  go 64 w;
  Buffer.contents buf

let apply_op h roots ids = function
  | Alloc i ->
      Handle.set roots.(i) (Obj.cons h (fx !ids) Word.nil);
      incr ids
  | Link (a, b) ->
      let wa = Handle.get roots.(a) in
      if not (Word.equal wa Word.nil) then Obj.set_cdr h wa (Handle.get roots.(b))
  | Drop i -> Handle.set roots.(i) Word.nil
  | Collect g -> ignore (Collector.collect h ~gen:g)

let prop_no_lost_edges =
  QCheck.Test.make ~name:"cards never lose an old-to-young edge" ~count:150
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
       QCheck.Gen.(list_size (int_range 10 80) op_gen))
    (fun ops ->
      (* Fine-grained cards vs a one-card-per-segment oracle (the
         pre-card segment-granular remembered set), driven by the same
         operation sequence.  Both must preserve the same structure. *)
      let fine =
        Heap.create ~config:(Config.v ~segment_words:64 ~max_generation:2 ~card_words:8 ())
          ()
      in
      let oracle =
        Heap.create
          ~config:(Config.v ~segment_words:64 ~max_generation:2 ~card_words:1024 ())
          ()
      in
      let roots_f = Array.init nroots (fun _ -> Handle.create fine Word.nil) in
      let roots_o = Array.init nroots (fun _ -> Handle.create oracle Word.nil) in
      let ids_f = ref 0 and ids_o = ref 0 in
      let compare_roots () =
        for i = 0 to nroots - 1 do
          let sf = serialize fine (Handle.get roots_f.(i)) in
          let so = serialize oracle (Handle.get roots_o.(i)) in
          if sf <> so then
            QCheck.Test.fail_reportf "root %d diverged: cards=%s oracle=%s" i sf so
        done
      in
      List.iter
        (fun op ->
          apply_op fine roots_f ids_f op;
          apply_op oracle roots_o ids_o op;
          match op with Collect _ -> compare_roots () | _ -> ())
        ops;
      full_collect fine;
      full_collect oracle;
      compare_roots ();
      true)

let () =
  Alcotest.run "cards"
    [
      ( "config",
        [
          Alcotest.test_case "card_words validation" `Quick test_card_words_validation;
          Alcotest.test_case "card >= segment" `Quick test_card_bigger_than_segment;
          Alcotest.test_case "minimum card size" `Quick test_minimum_card_size;
        ] );
      ( "dirty-scan",
        [
          Alcotest.test_case "cards not segments" `Quick
            test_dirty_scan_visits_cards_not_segments;
          Alcotest.test_case "clean segment skipped" `Quick
            test_clean_old_segment_not_rescanned;
        ] );
      ( "guardians",
        [
          Alcotest.test_case "worklist pend checks" `Quick
            test_chained_guardians_pend_checks;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_no_lost_edges ] );
    ]
