(* The telemetry subsystem: event-stream shape (phases nest inside the
   collection and account for its duration), histogram bucket geometry,
   ring wraparound, the zero-cost disabled path, and a round-trip of the
   Chrome trace_event JSON through a minimal parser. *)

open Gbc_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Config.v ~segment_words:128 ~max_generation:2 ()

let traced_heap () =
  let h = Heap.create ~config:cfg () in
  Telemetry.set_enabled (Heap.telemetry h) true;
  h

let fx = Word.of_fixnum
let full_collect h = ignore (Collector.collect h ~gen:(Heap.max_generation h))

(* --- event stream shape ---------------------------------------------- *)

let test_phase_events_nest () =
  let h = traced_heap () in
  let tel = Heap.telemetry h in
  let events = ref [] in
  let id = Telemetry.add_sink tel (fun e -> events := e :: !events) in
  let _keep = Handle.create h (Obj.list_of h (List.map fx [ 1; 2; 3 ])) in
  full_collect h;
  Telemetry.remove_sink tel id;
  let events = List.rev !events in
  (* Bracketing: first Collection_begin, last Collection_end. *)
  (match (List.hd events, List.hd (List.rev events)) with
  | Telemetry.Collection_begin _, Telemetry.Collection_end _ -> ()
  | _ -> Alcotest.fail "stream not bracketed by collection begin/end");
  (* Every phase appears exactly once, begin before end, no overlap. *)
  List.iter
    (fun ph ->
      let begins =
        List.filter
          (function Telemetry.Phase_begin { phase; _ } -> phase = ph | _ -> false)
          events
      and ends =
        List.filter
          (function Telemetry.Phase_end { phase; _ } -> phase = ph | _ -> false)
          events
      in
      check_int (Telemetry.phase_name ph ^ " begins once") 1 (List.length begins);
      check_int (Telemetry.phase_name ph ^ " ends once") 1 (List.length ends))
    Telemetry.collection_phases;
  let depth = ref 0 in
  List.iter
    (function
      | Telemetry.Phase_begin _ ->
          incr depth;
          check "phases do not overlap" true (!depth = 1)
      | Telemetry.Phase_end _ -> decr depth
      | _ -> ())
    events;
  (* Timestamps are monotone along the stream. *)
  let ts = function
    | Telemetry.Collection_begin { at_ns; _ }
    | Telemetry.Phase_begin { at_ns; _ }
    | Telemetry.Phase_end { at_ns; _ }
    | Telemetry.Collection_end { at_ns; _ } ->
        at_ns
  in
  ignore
    (List.fold_left
       (fun prev e ->
         check "timestamps monotone" true (ts e >= prev);
         ts e)
       neg_infinity events)

let test_phase_times_sum_to_collection () =
  let h = traced_heap () in
  let tel = Heap.telemetry h in
  let total = ref 0.0 in
  let id =
    Telemetry.add_sink tel (function
      | Telemetry.Collection_end { duration_ns; _ } -> total := duration_ns
      | _ -> ())
  in
  let _keep = Handle.create h (Obj.list_of h (List.map fx [ 1; 2; 3 ])) in
  full_collect h;
  Telemetry.remove_sink tel id;
  let phase_sum =
    List.fold_left
      (fun acc ph -> acc +. Telemetry.phase_ns_last tel ph)
      0.0 Telemetry.all_phases
  in
  check "phases measured" true (phase_sum > 0.0);
  check "phase times within collection total" true (phase_sum <= !total);
  check_int "one collection seen" 1 (Telemetry.collections_seen tel)

let test_disabled_is_silent () =
  let h = Heap.create ~config:cfg () in
  let tel = Heap.telemetry h in
  let fired = ref 0 in
  let _id = Telemetry.add_sink tel (fun _ -> incr fired) in
  full_collect h;
  full_collect h;
  check_int "no events while disabled" 0 !fired;
  check_int "no collections seen" 0 (Telemetry.collections_seen tel);
  check_int "histogram empty" 0
    (Telemetry.Histogram.count (Telemetry.pause_histogram tel))

(* --- histogram -------------------------------------------------------- *)

let test_histogram_buckets_monotone () =
  let hist = Telemetry.Histogram.create () in
  List.iter
    (Telemetry.Histogram.add hist)
    [ 0.4; 1.0; 1.9; 2.0; 1000.0; 1024.0; 1.5e6; 3.2e9 ];
  let buckets = Telemetry.Histogram.buckets hist in
  Array.iteri
    (fun i (lo, hi, _) ->
      check "lo < hi" true (lo < hi);
      if i > 0 then begin
        let _, prev_hi, _ = buckets.(i - 1) in
        check "buckets contiguous and increasing" true (prev_hi <= lo)
      end)
    buckets;
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  check_int "bucket counts sum to count" (Telemetry.Histogram.count hist) total;
  (* Each sample landed in the bucket covering it. *)
  List.iter
    (fun (lo, hi, c) ->
      check "nonempty bucket covers a sample" true
        (c > 0
        && List.exists
             (fun s -> (s >= lo && s < hi) || (s < 1.0 && lo = 0.0))
             [ 0.4; 1.0; 1.9; 2.0; 1000.0; 1024.0; 1.5e6; 3.2e9 ]))
    (Telemetry.Histogram.nonempty_buckets hist)

let test_histogram_percentiles () =
  let hist = Telemetry.Histogram.create () in
  check "empty percentile is 0" true (Telemetry.Histogram.percentile hist 50.0 = 0.0);
  for i = 1 to 100 do
    Telemetry.Histogram.add hist (float_of_int i *. 100.0)
  done;
  let p50 = Telemetry.Histogram.percentile hist 50.0
  and p95 = Telemetry.Histogram.percentile hist 95.0
  and p100 = Telemetry.Histogram.percentile hist 100.0 in
  check "p50 <= p95" true (p50 <= p95);
  check "p95 <= p100" true (p95 <= p100);
  check "p100 clamps to observed max" true (p100 = Telemetry.Histogram.max_ns hist);
  (* Upper-bound estimate: never below the true percentile. *)
  check "p50 above true median" true (p50 >= 5000.0)

(* --- ring wraparound --------------------------------------------------- *)

let test_ring_wraparound_keeps_newest () =
  let h = traced_heap () in
  let ring = Telemetry.Ring.attach ~capacity:4 (Heap.telemetry h) in
  for _ = 1 to 10 do
    ignore (Collector.collect h ~gen:0)
  done;
  let recs = Telemetry.Ring.records ring in
  check_int "bounded to capacity" 4 (List.length recs);
  check_int "all collections counted" 10 (Telemetry.Ring.total_recorded ring);
  let ords = List.map (fun r -> r.Telemetry.Ring.ordinal) recs in
  Alcotest.(check (list int)) "newest kept, oldest first" [ 7; 8; 9; 10 ] ords;
  List.iter
    (fun r ->
      check_int "phase_ns per phase" Telemetry.phase_count
        (Array.length r.Telemetry.Ring.phase_ns);
      check "record duration >= phase sum" true
        (Array.fold_left ( +. ) 0.0 r.Telemetry.Ring.phase_ns
        <= r.Telemetry.Ring.duration_ns))
    recs;
  Telemetry.Ring.detach ring

(* --- Chrome trace JSON ------------------------------------------------- *)

(* A minimal JSON parser — just enough to round-trip the trace file. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      then begin
        advance ();
        skip_ws ()
      end
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'u' ->
                (* \uXXXX: decode code points below 256, enough here. *)
                let hex = String.sub s (!pos + 1) 4 in
                pos := !pos + 4;
                Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
            | c -> Buffer.add_char b c);
            advance ();
            go ()
        | '\000' -> raise (Bad "unterminated string")
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | '}' ->
                  advance ();
                  List.rev ((key, v) :: acc)
              | _ -> raise (Bad "expected , or } in object")
            in
            Obj (members [])
          end
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  elems (v :: acc)
              | ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> raise (Bad "expected , or ] in array")
            in
            Arr (elems [])
          end
      | '"' -> Str (parse_string ())
      | 't' ->
          pos := !pos + 4;
          Bool true
      | 'f' ->
          pos := !pos + 5;
          Bool false
      | 'n' ->
          pos := !pos + 4;
          Null
      | _ ->
          let start = !pos in
          while
            !pos < n
            && match s.[!pos] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false
          do
            advance ()
          done;
          if !pos = start then raise (Bad (Printf.sprintf "bad value at %d" start));
          Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing input");
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

let test_chrome_json_round_trips () =
  let h = traced_heap () in
  let path = Filename.temp_file "gbc_trace" ".json" in
  let oc = open_out path in
  let chrome = Telemetry.Chrome.attach (Heap.telemetry h) oc in
  let g = Handle.create h (Guardian.make h) in
  Guardian.register h (Handle.get g) (Obj.cons h (fx 1) Word.nil);
  full_collect h;
  ignore (Collector.collect h ~gen:0);
  Telemetry.Chrome.close chrome;
  close_out oc;
  let ic = open_in path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let json = Json.parse src in
  let events = match json with Json.Arr l -> l | _ -> Alcotest.fail "not an array" in
  check "has events" true (List.length events > 0);
  (* Every event is a well-formed trace_event object. *)
  List.iter
    (fun e ->
      (match Json.member "ph" e with
      | Some (Json.Str ("B" | "E")) -> ()
      | _ -> Alcotest.fail "bad ph");
      (match Json.member "name" e with
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.fail "missing name");
      match Json.member "ts" e with
      | Some (Json.Num ts) -> check "ts non-negative" true (ts >= 0.0)
      | _ -> Alcotest.fail "missing ts")
    events;
  (* B and E balance per name, and every phase of both collections shows. *)
  let count name ph =
    List.length
      (List.filter
         (fun e ->
           Json.member "name" e = Some (Json.Str name)
           && Json.member "ph" e = Some (Json.Str ph))
         events)
  in
  List.iter
    (fun phname ->
      check_int (phname ^ " B twice") 2 (count phname "B");
      check_int (phname ^ " E twice") 2 (count phname "E"))
    (List.map Telemetry.phase_name Telemetry.collection_phases);
  check_int "collection B" 2 (count "collection" "B");
  check_int "collection E" 2 (count "collection" "E");
  (* The collection-end args carry the resurrection counter. *)
  let resurrections =
    List.filter_map
      (fun e ->
        if Json.member "name" e = Some (Json.Str "collection")
           && Json.member "ph" e = Some (Json.Str "E")
        then
          match Json.member "args" e with
          | Some args -> (
              match Json.member "resurrections" args with
              | Some (Json.Num x) -> Some (int_of_float x)
              | _ -> None)
          | None -> None
        else None)
      events
  in
  check_int "both collection ends carry args" 2 (List.length resurrections);
  check_int "first collection resurrected the pair" 1 (List.hd resurrections)

let () =
  Alcotest.run "telemetry"
    [
      ( "events",
        [
          Alcotest.test_case "phases nest" `Quick test_phase_events_nest;
          Alcotest.test_case "phase times sum" `Quick test_phase_times_sum_to_collection;
          Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets monotone" `Quick test_histogram_buckets_monotone;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound keeps newest" `Quick
            test_ring_wraparound_keeps_newest;
        ] );
      ( "chrome",
        [ Alcotest.test_case "JSON round-trips" `Quick test_chrome_json_round_trips ] );
    ]
