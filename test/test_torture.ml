(* The torture harness tested on itself:
   - Verify has teeth: hand-corrupted heaps are caught (the checks the
     harness trusts after every collection);
   - clean seeds stay clean, bit-for-bit deterministically;
   - the seeded forward-corruption bug is detected and shrunk small;
   - the shrinker converges on a trace with one essential op;
   - injected allocation faults are survived, not just tolerated. *)

open Gbc_runtime
module Torture = Gbc_torture.Torture

let check = Alcotest.(check bool)
let fx = Word.of_fixnum

(* ------------------------------------------------------------------ *)
(* Verify failure paths                                                *)

let has_error what errs = List.exists (fun e -> e.Verify.what = what) errs

let test_verify_catches_interior_pointer () =
  let h = Heap.create ~config:(Config.v ~max_generation:2 ()) () in
  let v = Obj.make_vector h ~len:4 ~init:Word.nil in
  let p = Obj.cons h Word.nil Word.nil in
  ignore (Heap.new_cell h v);
  ignore (Heap.new_cell h p);
  check "clean before corruption" true (Verify.verify h = []);
  (* Plant a pointer at the vector's first field — past the header, so no
     object starts there — writing raw, behind the barrier's back. *)
  Heap.store h (Word.addr p) (Word.with_addr v (Word.addr v + 1));
  check "interior pointer caught" true
    (has_error "pointer to object interior" (Verify.verify h))

let test_verify_catches_unbarriered_store () =
  let h = Heap.create ~config:(Config.v ~max_generation:2 ()) () in
  let c = Heap.new_cell h (Obj.make_vector h ~len:4 ~init:Word.nil) in
  ignore (Collector.collect h ~gen:0);
  ignore (Collector.collect h ~gen:1);
  let v = Heap.read_cell h c in
  Alcotest.(check int) "vector is old" 2 (Heap.generation_of_word h v);
  (* An old-to-young store with Heap.store skips note_mutation: the card
     stays clean, which is exactly the invariant Verify polices. *)
  let young = Obj.cons h (fx 1) Word.nil in
  Heap.store h (Word.addr v + 1) young;
  let errs = Verify.verify h in
  check "unbarriered store caught" true
    (has_error "old-to-young pointer not remembered" errs
    || has_error "old-to-young pointer's card not marked" errs)

(* ------------------------------------------------------------------ *)
(* Clean runs and determinism                                          *)

let opts ?(faults = false) ?(inject_bug = false) ops =
  { Torture.ops; faults; inject_bug }

let assert_clean seed r =
  match r.Torture.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "seed %d failed at op %d (%s): %s\nshrunk trace:\n%s" seed
        f.Torture.op_index f.Torture.profile f.Torture.reason f.Torture.shrunk_trace

let test_clean_seeds () =
  List.iter
    (fun seed -> assert_clean seed (Torture.run_seed ~seed ~opts:(opts 600)))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_deterministic () =
  let run () = Torture.run_seed ~seed:42 ~opts:(opts ~faults:true 1200) in
  let a = run () and b = run () in
  check "structurally equal reports" true (a = b);
  Alcotest.(check string)
    "identical JSON" (Torture.json_of_reports [ a ]) (Torture.json_of_reports [ b ])

(* ------------------------------------------------------------------ *)
(* The seeded bug must be detected and shrunk                          *)

let test_injected_bug_detected_and_shrunk () =
  List.iter
    (fun seed ->
      let r = Torture.run_seed ~seed ~opts:(opts ~inject_bug:true 1500) in
      match r.Torture.failure with
      | None -> Alcotest.failf "seed %d: seeded corruption not detected" seed
      | Some f ->
          check "reason points at a real check" true (String.length f.Torture.reason > 0);
          if f.Torture.shrunk_ops > 50 then
            Alcotest.failf "seed %d: shrunk to %d ops (want <= 50)" seed
              f.Torture.shrunk_ops)
    [ 0; 3; 9 ]

let test_shrink_converges () =
  (* One op kind is essential, everything else is noise: ddmin must strip
     the trace down to a single essential op. *)
  let ops = Torture.gen_ops ~seed:11 200 in
  let is_essential op = Format.asprintf "%a" Torture.pp_op op = "alloc-guardian" in
  let test arr = Array.exists is_essential arr in
  check "full trace satisfies the predicate" true (test ops);
  let minimal = Torture.shrink ~test ops in
  Alcotest.(check int) "converged to one op" 1 (Array.length minimal)

(* ------------------------------------------------------------------ *)
(* Fault injection: survived, and actually exercised                   *)

let test_fault_recovery () =
  let injected = ref 0 and recovered = ref 0 in
  List.iter
    (fun seed ->
      let r = Torture.run_seed ~seed ~opts:(opts ~faults:true 800) in
      assert_clean seed r;
      List.iter
        (fun e ->
          injected := !injected + e.Torture.faults_injected;
          recovered := !recovered + e.Torture.oom_recoveries)
        r.Torture.episodes)
    [ 0; 1; 2; 3; 4; 5 ];
  check "some fault actually fired" true (!injected > 0);
  check "every fired fault was recovered from" true (!recovered >= !injected)

let () =
  Alcotest.run "torture"
    [
      ( "verify-teeth",
        [
          Alcotest.test_case "interior pointer" `Quick test_verify_catches_interior_pointer;
          Alcotest.test_case "unbarriered store" `Quick test_verify_catches_unbarriered_store;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean seeds" `Slow test_clean_seeds;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "fault recovery" `Slow test_fault_recovery;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "seeded bug detected + shrunk" `Slow
            test_injected_bug_detected_and_shrunk;
          Alcotest.test_case "ddmin convergence" `Quick test_shrink_converges;
        ] );
    ]
