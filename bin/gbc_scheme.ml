(* The Scheme system's command-line driver.

   Usage:
     gbc_scheme                    interactive REPL
     gbc_scheme FILE...            run files (on the shared machine, in order)
     gbc_scheme -e EXPR            evaluate an expression and print it
     gbc_scheme --gc-stats ...     print collector statistics at the end
     gbc_scheme --gc-log ...       log each collection to stderr as it happens
     gbc_scheme --trace-out FILE   write a Chrome trace_event JSON of every
                                   collection phase (load in about:tracing
                                   or Perfetto)
     gbc_scheme --load-image F   start from a gbc-image/1 heap image
                                   instead of a cold boot
     gbc_scheme --dump-image F   checkpoint the final system to a heap
                                   image (suppresses the REPL when there
                                   are no inputs)

   Flags compose freely with each other and with inputs; files and -e
   expressions run in command-line order on one shared machine.  The
   (load-heap-image "f") primitive swaps the shared machine for one
   restored from f: the rest of that input is discarded, later inputs
   run on the restored system.  Corrupt, truncated or version-mismatched
   images are reported on stderr and exit with status 2. *)

open Gbc_scheme

let usage =
  "usage: gbc_scheme [--gc-stats] [--gc-log] [--trace-out FILE] \
   [--load-image FILE] [--dump-image FILE] [-e EXPR | FILE]..."

let print_stats m =
  let open Gbc_runtime in
  let h = Machine.heap m in
  let s = Heap.stats h in
  Format.printf "@.;; --- collector statistics ---@.%a@." Stats.pp_counters
    s.Stats.total;
  Format.printf ";; registrations %d, guardian polls %d, hits %d@."
    s.Stats.registrations s.Stats.guardian_polls s.Stats.guardian_hits;
  Format.printf ";; live words %d, live segments %d@." (Heap.live_words h)
    (Heap.live_segments h);
  Format.printf ";; census: %a@." Census.pp (Census.run h)

(* [swap] replaces the shared machine with one restored from an image
   (the load-heap-image primitive signals up to here).  Image problems —
   corrupt, truncated, wrong version, wrong geometry — exit 2 with the
   image's one-line diagnostic, like any other bad command-line input. *)
let repl mr ~swap =
  print_endline ";; guardians-in-a-generation-based-gc Scheme";
  print_endline ";; (make-guardian), (weak-cons a d), (collect [gen]) are built in; ^D exits";
  let rec loop () =
    print_string "> ";
    match read_line () with
    | exception End_of_file -> print_newline ()
    | line ->
        (if String.trim line <> "" then
           match Machine.eval_string !mr line with
           | v ->
               let s = Printer.to_string (Machine.heap !mr) v in
               if s <> "#<void>" then print_endline s
           | exception Machine.Error msg ->
               Printf.printf "error: %s\n" msg;
               Machine.reset !mr
           | exception Reader.Error msg ->
               Printf.printf "read error: %s\n" msg
           | exception Compile.Error msg ->
               Printf.printf "compile error: %s\n" msg
           | exception Machine.Exit_signal -> exit 0
           | exception Machine.Load_image_signal path -> swap path);
        loop ()
  in
  loop ()

let run_file mr ~swap path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  match Machine.eval_string !mr src with
  | _ -> ()
  | exception Machine.Exit_signal -> ()
  | exception Machine.Load_image_signal img -> swap img
  | exception Machine.Error msg ->
      Printf.eprintf "%s: error: %s\n" path msg;
      exit 1
  | exception Reader.Error msg ->
      Printf.eprintf "%s: read error: %s\n" path msg;
      exit 1
  | exception Compile.Error msg ->
      Printf.eprintf "%s: compile error: %s\n" path msg;
      exit 1

(* Inputs are kept in command-line order so `a.scm -e '(f)' b.scm` runs
   the file, the expression, then the second file, all on one machine. *)
type input = File of string | Expr of string

type options = {
  gc_stats : bool;
  gc_log : bool;
  trace_out : string option;
  load_image : string option;
  dump_image : string option;
  inputs : input list;  (* in command-line order *)
}

let parse_args argv =
  let rec go opts = function
    | [] -> { opts with inputs = List.rev opts.inputs }
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        print_endline "  --gc-stats        print collector statistics at the end";
        print_endline "  --gc-log          log each collection to stderr";
        print_endline "  --trace-out FILE  write a Chrome trace_event JSON of GC phases";
        print_endline "  --load-image FILE start from a gbc-image/1 heap image";
        print_endline "  --dump-image FILE checkpoint the final system to a heap image";
        print_endline "  -e EXPR           evaluate an expression and print it";
        print_endline "  With no inputs, starts the interactive REPL.";
        exit 0
    | "--gc-stats" :: rest -> go { opts with gc_stats = true } rest
    | "--gc-log" :: rest -> go { opts with gc_log = true } rest
    | "--trace-out" :: path :: rest when String.length path > 0 ->
        go { opts with trace_out = Some path } rest
    | [ "--trace-out" ] ->
        prerr_endline "gbc_scheme: --trace-out requires a file argument";
        prerr_endline usage;
        exit 2
    | "--load-image" :: path :: rest when String.length path > 0 ->
        go { opts with load_image = Some path } rest
    | [ "--load-image" ] ->
        prerr_endline "gbc_scheme: --load-image requires a file argument";
        prerr_endline usage;
        exit 2
    | "--dump-image" :: path :: rest when String.length path > 0 ->
        go { opts with dump_image = Some path } rest
    | [ "--dump-image" ] ->
        prerr_endline "gbc_scheme: --dump-image requires a file argument";
        prerr_endline usage;
        exit 2
    | "-e" :: expr :: rest -> go { opts with inputs = Expr expr :: opts.inputs } rest
    | [ "-e" ] ->
        prerr_endline "gbc_scheme: -e requires an expression argument";
        prerr_endline usage;
        exit 2
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "gbc_scheme: unknown option %s\n" arg;
        prerr_endline usage;
        exit 2
    | path :: rest -> go { opts with inputs = File path :: opts.inputs } rest
  in
  go
    { gc_stats = false; gc_log = false; trace_out = None; load_image = None;
      dump_image = None; inputs = [] }
    argv

let image_failure msg =
  Printf.eprintf "gbc_scheme: %s\n" msg;
  exit 2

let () =
  let open Gbc_runtime in
  let opts = parse_args (List.tl (Array.to_list Sys.argv)) in
  let load_machine path =
    try Scheme.load_image path with
    | Gbc_image.Image.Error msg -> image_failure msg
    | Sys_error msg -> image_failure msg
  in
  let mr =
    ref
      (match opts.load_image with
      | None -> Scheme.create ()
      | Some path -> load_machine path)
  in
  let attach_log m =
    if opts.gc_log then
      ignore
        (Telemetry.Log.attach (Heap.telemetry (Machine.heap m))
           Format.err_formatter)
  in
  Machine.set_echo !mr true;
  attach_log !mr;
  (* The Chrome trace stays attached to the machine it was opened on: a
     trace file is a single JSON array and cannot span a machine swap. *)
  let chrome =
    Option.map
      (fun path ->
        let oc =
          try open_out path
          with Sys_error msg ->
            Printf.eprintf "gbc_scheme: cannot open trace file: %s\n" msg;
            exit 2
        in
        let c = Telemetry.Chrome.attach (Heap.telemetry (Machine.heap !mr)) oc in
        at_exit (fun () ->
            Telemetry.Chrome.close c;
            close_out oc);
        c)
      opts.trace_out
  in
  ignore chrome;
  let swap path =
    let m2 = load_machine path in
    Machine.dispose !mr;
    mr := m2;
    Machine.set_echo !mr true;
    attach_log !mr
  in
  let run_expr expr =
    match Machine.eval_string !mr expr with
    | v -> print_endline (Printer.to_string (Machine.heap !mr) v)
    | exception Machine.Exit_signal -> ()
    | exception Machine.Load_image_signal img -> swap img
    | exception Machine.Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | exception Reader.Error msg ->
        Printf.eprintf "read error: %s\n" msg;
        exit 1
    | exception Compile.Error msg ->
        Printf.eprintf "compile error: %s\n" msg;
        exit 1
  in
  (match opts.inputs with
  | [] ->
      (* Batch image work (the CI save->load->save identity check among
         it) must not fall into the REPL. *)
      if opts.dump_image = None then repl mr ~swap
  | inputs ->
      List.iter
        (function File path -> run_file mr ~swap path | Expr e -> run_expr e)
        inputs);
  (match opts.dump_image with
  | None -> ()
  | Some path -> (
      try Scheme.save_image !mr path with
      | Gbc_image.Image.Error msg -> image_failure msg
      | Sys_error msg -> image_failure msg));
  if opts.gc_stats then print_stats !mr
