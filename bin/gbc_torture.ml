(* Deterministic GC torture harness driver.

   Usage:
     gbc_torture                         one seed (0), 5000 ops
     gbc_torture --seed 7 --seed 8       several seeds, in order
     gbc_torture --seeds 0..99           a seed range (inclusive)
     gbc_torture --ops 20000             op budget per seed
     gbc_torture --faults                arm segment-allocation faults
     gbc_torture --inject-bug            seeded forward-corruption bug;
                                         exit 0 iff it is DETECTED
     gbc_torture --json-out FILE         write the gbc-torture/1 report
     gbc_torture --quiet                 per-seed lines only on failure

   Same seed + same flags => bit-for-bit identical output and report. *)

open Gbc_torture

let usage =
  "usage: gbc_torture [--seed N]... [--seeds A..B] [--ops N] [--faults] \
   [--inject-bug] [--json-out FILE] [--quiet]"

let parse_range s =
  match String.index_opt s '.' with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '.'
         && i > 0 ->
      let a = int_of_string_opt (String.sub s 0 i) in
      let b = int_of_string_opt (String.sub s (i + 2) (String.length s - i - 2)) in
      (match (a, b) with Some a, Some b when a <= b -> Some (a, b) | _ -> None)
  | _ -> None

let () =
  let seeds = ref [] in
  let ops = ref Torture.default_opts.Torture.ops in
  let faults = ref false in
  let inject_bug = ref false in
  let json_out = ref None in
  let quiet = ref false in
  let bad fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "gbc_torture: %s\n" msg;
        prerr_endline usage;
        exit 2)
      fmt
  in
  let int_arg name v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> bad "%s expects a non-negative integer, got %s" name v
  in
  let rec parse = function
    | [] -> ()
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        print_endline "";
        print_endline
          "Runs seeded random programs against the runtime, checking Verify\n\
           invariants and differentially comparing against the semispace\n\
           oracle after every collection.  Exit 0 when every seed is clean\n\
           (with --inject-bug: when every seed detects the seeded bug);\n\
           exit 1 on a failure, after shrinking the failing trace.";
        exit 0
    | "--seed" :: v :: rest ->
        seeds := int_arg "--seed" v :: !seeds;
        parse rest
    | [ "--seed" ] -> bad "--seed requires an argument"
    | "--seeds" :: v :: rest -> (
        match parse_range v with
        | Some (a, b) ->
            for s = b downto a do
              seeds := s :: !seeds
            done;
            parse rest
        | None -> bad "--seeds expects a range A..B, got %s" v)
    | [ "--seeds" ] -> bad "--seeds requires an argument"
    | "--ops" :: v :: rest ->
        ops := int_arg "--ops" v;
        parse rest
    | [ "--ops" ] -> bad "--ops requires an argument"
    | "--faults" :: rest ->
        faults := true;
        parse rest
    | "--inject-bug" :: rest ->
        inject_bug := true;
        parse rest
    | "--json-out" :: path :: rest when String.length path > 0 ->
        json_out := Some path;
        parse rest
    | [ "--json-out" ] -> bad "--json-out requires a path argument"
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | arg :: _ -> bad "unknown option %s" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seeds = match List.rev !seeds with [] -> [ 0 ] | l -> l in
  let opts =
    { Torture.ops = !ops; faults = !faults; inject_bug = !inject_bug }
  in
  let reports = List.map (fun seed -> Torture.run_seed ~seed ~opts) seeds in
  (match !json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Torture.json_of_reports reports);
      close_out oc);
  (* With the seeded bug, detection is the passing outcome. *)
  let ok r = if !inject_bug then r.Torture.failure <> None else r.Torture.failure = None in
  let failed = List.filter (fun r -> not (ok r)) reports in
  List.iter
    (fun r ->
      match r.Torture.failure with
      | None ->
          if not !quiet then
            Printf.printf
              "seed %d: ok (%d ops, %d collections, %d comparisons, %d checkpoints)\n"
              r.Torture.seed
              (List.fold_left (fun a e -> a + e.Torture.ops_run) 0 r.Torture.episodes)
              (List.fold_left (fun a e -> a + e.Torture.collections) 0 r.Torture.episodes)
              (List.fold_left (fun a e -> a + e.Torture.comparisons) 0 r.Torture.episodes)
              (List.fold_left (fun a e -> a + e.Torture.checkpoints) 0 r.Torture.episodes)
      | Some f ->
          Printf.printf "seed %d: FAIL at op %d (episode %d, profile %s)\n"
            r.Torture.seed f.Torture.op_index f.Torture.episode f.Torture.profile;
          Printf.printf "  reason: %s\n" f.Torture.reason;
          Printf.printf "  shrunk to %d ops:\n" f.Torture.shrunk_ops;
          String.split_on_char '\n' f.Torture.shrunk_trace
          |> List.iter (fun l -> if l <> "" then Printf.printf "    %s\n" l))
    reports;
  if !inject_bug then
    List.iter
      (fun r ->
        if r.Torture.failure = None then
          Printf.printf "seed %d: BUG NOT DETECTED (expected a failure)\n"
            r.Torture.seed)
      reports;
  if failed <> [] then exit 1
