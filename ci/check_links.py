#!/usr/bin/env python3
"""Markdown link check, no network and no dependencies.

Two kinds of reference are verified against the working tree:

1. markdown links ``[text](target)`` — http(s)/mailto targets are
   skipped, ``#anchors`` are stripped, and relative targets resolve
   from the referencing file's directory;
2. backtick-quoted repository paths like ``lib/runtime/verify.ml`` or
   ``doc/TUNING.md`` — the references most prone to drifting when
   modules are renamed.  Only tokens rooted at a known source
   directory and carrying a source extension are checked, so command
   lines, build artifacts and JSON output paths are not false
   positives.

Usage: check_links.py FILE.md...    (run from the repository root)
"""
import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_PATH = re.compile(
    r"`((?:lib|bin|test|bench|doc|examples|ci)/[A-Za-z0-9_./-]+\.(?:ml|mli|md|scm|py))`"
)

def main(files):
    bad = []
    for name in files:
        f = Path(name)
        text = f.read_text()
        for m in LINK.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            if not (f.parent / path).exists():
                bad.append(f"{name}: broken link ({target})")
        for m in CODE_PATH.finditer(text):
            if not Path(m.group(1)).exists():
                bad.append(f"{name}: stale path reference `{m.group(1)}`")
    if bad:
        print("\n".join(bad))
        sys.exit(1)
    print(f"{len(files)} files checked, all links resolve")

if __name__ == "__main__":
    main(sys.argv[1:])
